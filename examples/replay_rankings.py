#!/usr/bin/env python3
"""Release a dataset, then recompute the rankings from the released
files alone — the reproducibility loop the paper promises (§1,
contribution 5).

Hegemony metrics replay exactly (they need only the released paths);
cone metrics replay approximately, because a third party must infer
the AS relationships from the released paths instead of using the
simulator's ground truth.

    python examples/replay_rankings.py
"""

import tempfile
from pathlib import Path

from repro import run_pipeline
from repro.core.ndcg import ndcg
from repro.io.export import release_dataset
from repro.io.replay import ReplaySession
from repro.topology.paper_world import build_paper_world, paper_as_names


def main() -> None:
    names = paper_as_names()
    original = run_pipeline(build_paper_world())

    with tempfile.TemporaryDirectory() as tmp:
        written = release_dataset(original, tmp, countries=("AU", "RU"))
        print("released:", ", ".join(p.name for p in written.values()))

        session = ReplaySession.from_file(Path(tmp) / "paths.jsonl")

        print("\nreplayed from the released paths alone:")
        for metric, country in (("AHI", "AU"), ("AHN", "RU"), ("CCI", "AU")):
            ours = original.ranking(metric, country)
            theirs = session.ranking(metric, country)
            exact = ours.top_asns(10) == theirs.top_asns(10)
            print(
                f"  {metric}:{country}  NDCG {ndcg(ours, theirs):.3f}"
                f"  top-10 {'identical' if exact else 'approximate'}"
            )
            tops = ", ".join(
                names.get(asn, f"AS{asn}") for asn in theirs.top_asns(3)
            )
            print(f"    replayed top-3: {tops}")


if __name__ == "__main__":
    main()
