#!/usr/bin/env python3
"""Reproduce the paper's §4 stability methodology (Figures 4–5).

Downsamples vantage points and measures how quickly the top-10 ranking
(the TRA) converges to the full-VP ranking, via NDCG. Prints ASCII
curves plus the minimum VP counts for the paper's 0.8/0.9 thresholds.

    python examples/stability_study.py
"""

from repro import generate_world, run_pipeline
from repro.analysis.stability import international_stability, national_stability


def ascii_curve(rows: list[tuple[int, float, float]], width: int = 40) -> str:
    lines = []
    for size, mean, std in rows:
        bar = "#" * int(mean * width)
        lines.append(f"  {size:>4} VPs |{bar:<{width}}| {mean:.2f} ±{std:.2f}")
    return "\n".join(lines)


def main() -> None:
    print("building the default world (~1000 ASes)…")
    result = run_pipeline(generate_world(seed=42, name="default"))

    print("\nNational stability (Figure 4): the five best-covered countries")
    for country in ("NL", "GB", "US", "DE", "BR"):
        for metric in ("AHN", "CCN"):
            curve = national_stability(
                result, country, metric,
                sizes=[2, 4, 6, 9, 12, 16, 20, 30], trials=8,
            )
            print(f"\n{metric} {country} ({curve.total_vps} VPs total)")
            print(ascii_curve(curve.as_rows()))
            print(f"  NDCG>=0.8 from {curve.min_vps_for(0.8)} VPs, "
                  f">=0.9 from {curve.min_vps_for(0.9)} VPs")

    print("\nInternational stability (Figure 5): every country qualifies")
    for country in ("AU", "JP"):
        curve = international_stability(
            result, country, "AHI",
            sizes=[5, 10, 20, 40, 80, 160, 240], trials=6,
        )
        print(f"\nAHI {country} ({curve.total_vps} external VPs)")
        print(ascii_curve(curve.as_rows()))


if __name__ == "__main__":
    main()
