#!/usr/bin/env python3
"""Validate the Luckie-style relationship inference against ground truth.

The paper consumes CAIDA's inferred AS relationships; this repository
re-implements the inference (transit degrees → clique → peak-and-witness
link labelling) and — because the simulated world knows every true
relationship — can measure exactly how well it does, and how much the
inference error perturbs the cone rankings.

    python examples/relationship_inference.py
"""

from repro import generate_world, run_pipeline, PipelineConfig
from repro.core.cone import cone_ranking
from repro.core.ndcg import ndcg
from repro.net.aspath import ASPath
from repro.relationships import (
    infer_relationships,
    transit_degrees,
    validate_inference,
)


def main() -> None:
    world = generate_world(seed=42, name="default")
    result = run_pipeline(world, PipelineConfig())
    paths = [record.path for record in result.paths.records]

    degrees = transit_degrees([ASPath(p.asns) for p in paths])
    top = sorted(degrees.items(), key=lambda kv: -kv[1])[:8]
    print("highest transit degrees:")
    for asn, degree in top:
        print(f"  AS{asn:<7} {result.as_name(asn):<22} {degree}")

    inferred = infer_relationships(paths)
    validation = validate_inference(inferred, world.graph)
    print(f"\nlabelled links:     {validation.total_links}")
    print(f"accuracy:           {validation.accuracy:.3f}")
    print(f"p2p called p2c:     {validation.p2p_as_p2c}")
    print(f"p2c called p2p:     {validation.p2c_as_p2p}")
    print(f"flipped direction:  {validation.flipped_p2c}")
    print(f"clique precision:   {validation.clique_precision:.2f}")
    print(f"clique recall:      {validation.clique_recall:.2f}")
    print("inferred clique:   ", sorted(
        f"{result.as_name(asn)}" for asn in inferred.clique
    ))

    # How much does the inference error move a country ranking?
    view = result.view("international", "AU")
    truth = cone_ranking(view, world.graph, "CCI:AU(truth)")
    approx = cone_ranking(view, inferred, "CCI:AU(inferred)")
    print(f"\nCCI:AU agreement (NDCG@10) with ground truth: "
          f"{ndcg(truth, approx):.3f}")
    print("truth    top-5:", [result.as_name(a) for a in truth.top_asns(5)])
    print("inferred top-5:", [result.as_name(a) for a in approx.top_asns(5)])


if __name__ == "__main__":
    main()
