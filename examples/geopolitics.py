#!/usr/bin/env python3
"""The paper's §6 geopolitical analyses on the curated world:

* Russia 2021 vs 2023 (Table 10): did sanctions move the rankings?
* Taiwan 2021 vs 2023 (Table 11): independence from Chinese transit.
* Russian hegemony over former-Soviet countries (Figure 7).
* Continental dominance of national carriers (Table 12).

    python examples/geopolitics.py
"""

from repro import run_pipeline
from repro.analysis.resilience import ases_registered_in, disconnection_impact
from repro.analysis.regions import (
    continental_dominance,
    country_hegemony_over,
    render_dominance_table,
)
from repro.analysis.temporal import compare_snapshots
from repro.topology.paper_world import (
    SNAPSHOT_2021,
    SNAPSHOT_2023,
    build_paper_world,
    paper_as_names,
)


def main() -> None:
    names = paper_as_names()
    before = run_pipeline(build_paper_world(SNAPSHOT_2021))
    after = run_pipeline(build_paper_world(SNAPSHOT_2023))

    def name_of(asn: int) -> str:
        return names.get(asn) or before.as_name(asn)

    for country, metric in (("RU", "CCI"), ("RU", "AHI"), ("TW", "CCI")):
        comparison = compare_snapshots(
            before, after, country, metric,
            before_label="20210401", after_label="20230301",
        )
        print(comparison.render(name_of))
        if comparison.entered():
            print("  entered:", [name_of(a) for a in comparison.entered()])
        if comparison.departed():
            print("  departed:", [name_of(a) for a in comparison.departed()])
        print()

    print("Russian AHI over other countries (Figure 7):")
    hegemony = country_hegemony_over(before, "RU")
    soviet = {c.code for c in before.world.countries.former_soviet()}
    for code, value in sorted(hegemony.items(), key=lambda kv: -kv[1]):
        if value > 0.05:
            tag = " (former Soviet)" if code in soviet else ""
            print(f"  {code}: {100 * value:5.1f}%{tag}")
    print()

    print(render_dominance_table(continental_dominance(before), before))
    print()

    print("What-if: disconnect every Russian-registered AS (§7 says BGP")
    print("data cannot assess this; the simulator can):")
    impact = disconnection_impact(
        before.world, ases_registered_in(before.world, "RU")
    )
    print(impact.render(8))
    print("stranded:", ", ".join(impact.stranded_countries()) or "nobody")


if __name__ == "__main__":
    main()
