#!/usr/bin/env python3
"""Quickstart: build a small simulated Internet, run the full pipeline,
and print the four country-level rankings for Australia.

Runs in a few seconds. The pipeline mirrors the paper's Figure 6:
propagate BGP routes over the topology, dump five daily RIBs at the
collectors, sanitize the paths (Table 1), geolocate prefixes and VPs,
split national/international views, and rank.

    python examples/quickstart.py
"""

from repro import GeneratorConfig, generate_world, run_pipeline, small_profiles


def main() -> None:
    config = GeneratorConfig(
        profiles=small_profiles(),
        clique_homes=("US", "US", "SE", "JP"),
    )
    world = generate_world(config, seed=1, name="quickstart")
    print("world:", world.summary())

    result = run_pipeline(world)
    print("\nSanitization (paper Table 1):")
    print(result.paths.report.render())

    print("\nCountry metrics for AU (paper Tables 5-8 layout):")
    for metric in ("CCI", "AHI", "CCN", "AHN"):
        print()
        print(result.ranking(metric, "AU").render(5, result.as_name))

    print("\nGlobal baselines:")
    print(result.ranking("CCG").render(5, result.as_name))

    # The headline qualitative result: the incumbent's domestic AS tops
    # the national hegemony ranking, multinationals top the cone.
    ahn_top = result.ranking("AHN", "AU").top_asns(1)[0]
    print(f"\nAHN #1 for AU: {result.as_name(ahn_top)} (AS{ahn_top})")


if __name__ == "__main__":
    main()
