#!/usr/bin/env python3
"""Rank IPv4 and IPv6 as separate universes, as IHR does.

Builds a dual-stack world (every IPv4 origination gets a 6to4-style
IPv6 twin) and runs the pipeline once per family. Because the v6 plan
mirrors v4, the rankings should nearly coincide — the residual
difference is family-specific measurement noise, a miniature of how
the real v4/v6 rankings differ through deployment gaps.

    python examples/dual_stack.py
"""

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline, small_profiles
from repro.core.ndcg import ndcg


def main() -> None:
    config = GeneratorConfig(
        profiles=small_profiles(),
        clique_homes=("US", "US", "SE", "JP"),
        ipv6=True,
    )
    world = generate_world(config, seed=4, name="dual-stack")
    v4 = run_pipeline(world, PipelineConfig(family=4))
    v6 = run_pipeline(world, PipelineConfig(family=6))

    print(f"prefixes: {len(v4.prefix_geo.country_of)} v4, "
          f"{len(v6.prefix_geo.country_of)} v6")
    au4 = v4.country_addresses().get('AU', 0)
    au6 = v6.country_addresses().get('AU', 0)
    print(f"AU address space: {au4:,} v4 vs {au6:,} v6")

    for metric, country in (("AHN", "AU"), ("CCI", "AU"), ("AHI", "US")):
        r4 = v4.ranking(metric, country)
        r6 = v6.ranking(metric, country)
        print(f"\n{metric}:{country}  v4-vs-v6 NDCG {ndcg(r4, r6):.3f}")
        for family, ranking in (("v4", r4), ("v6", r6)):
            tops = ", ".join(
                f"{v4.as_name(e.asn)}({e.share_pct():.0f}%)"
                for e in ranking.top(3)
            )
            print(f"  {family}: {tops}")


if __name__ == "__main__":
    main()
