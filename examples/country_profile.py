#!/usr/bin/env python3
"""Deep-dive one country on the curated paper world.

Prints the country's Table-5-style case study, the Table-9 comparison
against global rankings and IHR's AHC, the CTI baseline, and the VP
census behind the national view.

    python examples/country_profile.py [COUNTRY]    # default AU
"""

import sys

from repro import run_pipeline
from repro.analysis.case_studies import (
    case_study_table,
    global_comparison_table,
    render_case_study,
    render_global_comparison,
)
from repro.analysis.vp_distribution import render_census, vp_census
from repro.topology.paper_world import build_paper_world, paper_as_names


def main() -> None:
    country = sys.argv[1] if len(sys.argv) > 1 else "AU"
    names = paper_as_names()

    result = run_pipeline(build_paper_world())

    def name_of(asn: int) -> str:
        return names.get(asn) or result.as_name(asn)

    print(render_case_study(case_study_table(result, country), country))
    print()
    print(render_global_comparison(global_comparison_table(result, country), country))
    print()
    print(result.ranking("CTI", country).render(5, name_of))
    print()
    census = [row for row in vp_census(result) if row.country == country]
    print(render_census(census))

    # How much of the country's space does each metric's leader hold?
    print()
    for metric in ("CCI", "CCN", "AHI", "AHN"):
        ranking = result.ranking(metric, country)
        leader = ranking.entries[0]
        print(
            f"{metric}: {name_of(leader.asn):<24} "
            f"{leader.share_pct():5.1f}% of {country}'s"
            f" {'address space' if metric.startswith('CC') else 'observed paths'}"
        )


if __name__ == "__main__":
    main()
