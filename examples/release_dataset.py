#!/usr/bin/env python3
"""Export the reproducibility dataset the paper promises (§1,
contribution 5): country rankings, the sanitized AS-path input, VP
geolocations, and the filtering report.

    python examples/release_dataset.py [OUTPUT_DIR]   # default ./release
"""

import sys

from repro import run_pipeline
from repro.io.export import release_dataset
from repro.topology.paper_world import CASE_STUDY_COUNTRIES, build_paper_world


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else "release"
    result = run_pipeline(build_paper_world())
    written = release_dataset(
        result, directory,
        countries=CASE_STUDY_COUNTRIES + ("TW",),
    )
    print(f"dataset written to {directory}/:")
    for key, path in sorted(written.items()):
        size = path.stat().st_size
        print(f"  {key:<14} {path.name:<22} {size:>10} bytes")


if __name__ == "__main__":
    main()
