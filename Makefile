PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint faults bench bench-smoke watch-smoke profile

## Default verification: static analysis first, then the test suite
## (which includes the fault-injection suite), then the fault suite
## once more on its own so a recovery regression is named explicitly,
## then the watch smoke (monitoring engine end-to-end + event schema).
test: lint
	$(PYTHON) -m pytest -x -q
	$(MAKE) faults
	$(MAKE) watch-smoke

## Fault-injection suite: deterministic worker kills, hung chunks,
## mid-sweep crashes, and corrupted dump lines, each required to
## recover to byte-identical output (DESIGN.md section 6).
faults:
	$(PYTHON) -m pytest tests/resilience -q

## Static analysis gate: the repro-lint AST invariant checker over the
## whole source + test tree (rules R001-R008, findings vs the checked-in
## lint-baseline.json, runtime guard of 5s so it stays cheap enough to
## run always), then mypy when available (lenient globally, strict for
## repro.perf and repro.core -- see [tool.mypy] in pyproject.toml).
lint:
	$(PYTHON) -m repro.lint src tests --stats --max-seconds 5
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "mypy not installed -- type check skipped"; \
	fi

## Full scaling benchmark (small + medium worlds); writes
## BENCH_pipeline.json at the repo root and fails below the 3x
## indexed-vs-naive floor on the medium world.
bench:
	$(PYTHON) benchmarks/bench_pipeline_scaling.py --min-speedup 2.5

## Quick perf gate: small world under a time ceiling, plus the
## parallel >= serial floor at workers=2 (auto-skipped on hosts with
## fewer than 2 usable CPUs — see benchmarks/smoke.sh); writes
## benchmarks/output/BENCH_smoke.json.
bench-smoke:
	sh benchmarks/smoke.sh

## Hotspot profile: cProfile over the pipeline + ranking sweep, printed
## as the obs stage report followed by the pstats top-N tables; writes
## benchmarks/output/profile.txt.
profile:
	$(PYTHON) benchmarks/profile_pipeline.py

## Monitoring gate: 3-snapshot small-world watch run under a time
## ceiling + schema check of the emitted event stream (see
## benchmarks/watch_smoke.sh); writes benchmarks/output/watch_smoke.jsonl.
watch-smoke:
	sh benchmarks/watch_smoke.sh
