PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-wp lint-sarif faults bench bench-smoke bench-serve bench-large bench-large-smoke watch-smoke serve-smoke profile

## Default verification: static analysis first (per-file and
## whole-program tiers, then the R009-R012 self-check and the SARIF
## artifact), then the test suite (which includes the fault-injection
## suite), then the fault suite once more on its own so a recovery
## regression is named explicitly, then the watch smoke (monitoring
## engine end-to-end + event schema), then the serve smoke (daemon
## end-to-end over a real socket + warm-hit floor), then the
## out-of-core smoke (spill-backed pipeline + RSS gate at reduced
## scale).
test: lint lint-wp lint-sarif
	$(PYTHON) -m pytest -x -q
	$(MAKE) faults
	$(MAKE) watch-smoke
	$(MAKE) serve-smoke
	$(MAKE) bench-large-smoke

## Fault-injection suite: deterministic worker kills, hung chunks,
## mid-sweep crashes, and corrupted dump lines, each required to
## recover to byte-identical output (DESIGN.md section 6).
faults:
	$(PYTHON) -m pytest tests/resilience -q

## Static analysis gate: the repro-lint invariant checker over the
## whole source + test tree (per-file rules R001-R008 plus the
## whole-program tier R009-R012, findings vs the checked-in
## lint-baseline.json, runtime guard of 5s so it stays cheap enough to
## run always), then mypy when available (lenient globally, strict for
## repro.perf and repro.core -- see [tool.mypy] in pyproject.toml).
lint:
	$(PYTHON) -m repro.lint src tests --stats --max-seconds 5
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "mypy not installed -- type check skipped"; \
	fi

## Whole-program self-check: just the call-graph rules (R009 fork
## safety, R010 broadcast discipline, R011 memo coherence, R012 spec
## purity) over the library source, with no baseline — asserts the
## tree carries zero unbaselined whole-program findings.
lint-wp:
	$(PYTHON) -m repro.lint src/repro --no-baseline \
		--select R009,R010,R011,R012 --stats --max-seconds 5

## SARIF artifact for CI annotation tooling: the full rule set over
## src + tests as a SARIF 2.1.0 log at benchmarks/output/lint.sarif.
## Exit status is the lint verdict, same as `make lint`.
lint-sarif:
	mkdir -p benchmarks/output
	$(PYTHON) -m repro.lint src tests --format sarif \
		--max-seconds 5 > benchmarks/output/lint.sarif

## Full scaling benchmark (small + medium worlds); writes
## BENCH_pipeline.json at the repo root and fails below the 3x
## indexed-vs-naive floor on the medium world. The parallel floor is
## enforced on hosts with >= 2 usable CPUs and recorded as an explicit
## `parallel_gate: skipped / insufficient_cpus` entry otherwise.
bench:
	$(PYTHON) benchmarks/bench_pipeline_scaling.py --min-speedup 2.5 \
		--parallel-floor 1.0

## Serving benchmark (medium world): cold-vs-warm /rank latency, QPS,
## and the store hit rate through a real daemon on an ephemeral port;
## writes BENCH_serve.json at the repo root and fails when a warm hit
## is not >= 100x faster than a cold compute.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py --warm-floor 100

## Out-of-core gate, full scale: the catalog's `large` tier (5M+ RIB
## records) through the mmap spill backend, ranked under a peak-RSS
## ceiling and a record-count floor; merges a `large_tier` entry into
## BENCH_pipeline.json. Takes minutes — the smoke variant below is the
## per-change gate.
bench-large:
	$(PYTHON) benchmarks/bench_large_tier.py

## Out-of-core gate, smoke scale: default-world volume through the
## same spill path and gates (reduced floors), fast enough for `make
## test`. Writes its entry to benchmarks/output/BENCH_large_smoke.json
## so the checked-in BENCH_pipeline.json stays the full-tier record.
bench-large-smoke:
	mkdir -p benchmarks/output
	$(PYTHON) benchmarks/bench_large_tier.py --smoke \
		--output benchmarks/output/BENCH_large_smoke.json

## Quick perf gate: small world under a time ceiling, plus the
## parallel >= serial floor at workers=2 (auto-skipped on hosts with
## fewer than 2 usable CPUs — see benchmarks/smoke.sh); writes
## benchmarks/output/BENCH_smoke.json.
bench-smoke:
	sh benchmarks/smoke.sh

## Hotspot profile: cProfile over the pipeline + ranking sweep, printed
## as the obs stage report followed by the pstats top-N tables; writes
## benchmarks/output/profile.txt.
profile:
	$(PYTHON) benchmarks/profile_pipeline.py

## Monitoring gate: 3-snapshot small-world watch run under a time
## ceiling + schema check of the emitted event stream (see
## benchmarks/watch_smoke.sh); writes benchmarks/output/watch_smoke.jsonl.
watch-smoke:
	sh benchmarks/watch_smoke.sh

## Serving gate: a real repro-serve daemon on the small world under a
## time ceiling, driven cold then warm; every response's `source` is
## verified and warm hits must not lose to cold computes (see
## benchmarks/serve_smoke.sh); writes benchmarks/output/BENCH_serve_smoke.json.
serve-smoke:
	sh benchmarks/serve_smoke.sh
