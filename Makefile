PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke

test:
	$(PYTHON) -m pytest -x -q

## Full scaling benchmark (small + medium worlds); writes
## BENCH_pipeline.json at the repo root and fails below the 3x
## indexed-vs-naive floor on the medium world.
bench:
	$(PYTHON) benchmarks/bench_pipeline_scaling.py --min-speedup 3.0

## Quick perf gate: small world under a time ceiling (see
## benchmarks/smoke.sh); writes benchmarks/output/BENCH_smoke.json.
bench-smoke:
	sh benchmarks/smoke.sh
