"""Unit tests for anomaly injection."""

import random

import pytest

from repro.bgp.anomalies import (
    AnomalyConfig,
    AnomalyInjectionError,
    inject_anomalies,
    make_loop,
    make_poisoned,
    make_prepended,
    make_route_server,
    make_unallocated,
)
from repro.net.aspath import ASPath


@pytest.fixture
def rng():
    return random.Random(42)


class TestMakers:
    def test_loop(self, rng):
        path = ASPath.of(1, 2, 3, 4)
        assert not path.has_loop()
        for _ in range(20):
            assert make_loop(path, rng).has_loop()

    def test_loop_needs_two_ases(self, rng):
        with pytest.raises(AnomalyInjectionError):
            make_loop(ASPath.of(1), rng)

    def test_poisoned(self, rng):
        clique = frozenset({10, 11})
        path = ASPath.of(1, 10, 11, 2)
        poisoned = make_poisoned(path, clique, rng, filler=99)
        asns = poisoned.asns
        index = asns.index(99)
        assert asns[index - 1] in clique and asns[index + 1] in clique

    def test_poisoned_needs_clique_pair(self, rng):
        with pytest.raises(AnomalyInjectionError):
            make_poisoned(ASPath.of(1, 2, 3), frozenset({10}), rng, filler=99)

    def test_poisoned_filler_must_be_outside_clique(self, rng):
        clique = frozenset({10, 11})
        with pytest.raises(AnomalyInjectionError):
            make_poisoned(ASPath.of(10, 11), clique, rng, filler=10)

    def test_unallocated(self, rng):
        modified = make_unallocated(ASPath.of(1, 2, 3), 500000, rng)
        assert 500000 in modified

    def test_prepended(self, rng):
        path = ASPath.of(1, 2, 3)
        modified = make_prepended(path, rng)
        assert len(modified) > len(path)
        assert modified.collapse_prepending() == path

    def test_route_server(self):
        modified = make_route_server(ASPath.of(1, 2, 3), 777)
        assert modified.asns[1] == 777
        assert modified.without({777}) == ASPath.of(1, 2, 3)

    def test_route_server_needs_length(self):
        with pytest.raises(AnomalyInjectionError):
            make_route_server(ASPath.of(1), 777)


class TestConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            AnomalyConfig(loop_rate=1.5)

    def test_none(self):
        config = AnomalyConfig.none()
        assert config.loop_rate == 0.0 and config.route_server_rate == 0.0


class TestInjection:
    def _records(self, count=2000):
        return [((0, i), ASPath.of(1, 10, 11, 2 + (i % 5))) for i in range(count)]

    def test_rates_produce_each_category(self, rng):
        config = AnomalyConfig(
            loop_rate=0.05, poison_rate=0.05, unallocated_rate=0.05,
            prepend_rate=0.05, route_server_rate=0.05,
        )
        overrides, summary = inject_anomalies(
            self._records(), config, clique=frozenset({10, 11}),
            unallocated_pool=[500000], route_servers=frozenset({777}),
            rng=rng, filler_pool=[1, 2, 3, 4, 5, 6],
        )
        assert summary.loops > 0
        assert summary.poisoned > 0
        assert summary.unallocated > 0
        assert summary.prepended > 0
        assert summary.route_server > 0
        assert len(overrides) == summary.total()

    def test_zero_config_injects_nothing(self, rng):
        overrides, summary = inject_anomalies(
            self._records(100), AnomalyConfig.none(), frozenset(), [1_000_000],
            frozenset(), rng,
        )
        assert not overrides and summary.total() == 0

    def test_unallocated_requires_pool(self, rng):
        with pytest.raises(ValueError):
            inject_anomalies(
                self._records(10), AnomalyConfig(unallocated_rate=0.5),
                frozenset(), [], frozenset(), rng,
            )
