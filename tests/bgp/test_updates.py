"""Tests for RIB diffing into BGP UPDATE streams."""

import pytest

from repro.bgp.announcement import Announcement
from repro.bgp.collectors import VantagePoint
from repro.bgp.propagation import propagate_all
from repro.bgp.rib import generate_rib_days
from repro.bgp.updates import (
    ChurnSummary,
    Update,
    UpdateKind,
    churn_profile,
    daily_updates,
    diff_ribs,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology import GeneratorConfig, generate_world, small_profiles


def ann(vp_ip, prefix, *path):
    return Announcement(
        vp=VantagePoint(vp_ip, path[0], "c"),
        prefix=Prefix.parse(prefix),
        path=ASPath.of(*path),
    )


class TestUpdateType:
    def test_announce_requires_path(self):
        vp = VantagePoint("10.0.0.1", 1, "c")
        with pytest.raises(ValueError):
            Update(UpdateKind.ANNOUNCE, vp, Prefix.parse("10.0.0.0/24"))

    def test_withdraw_rejects_path(self):
        vp = VantagePoint("10.0.0.1", 1, "c")
        with pytest.raises(ValueError):
            Update(UpdateKind.WITHDRAW, vp, Prefix.parse("10.0.0.0/24"),
                   ASPath.of(1, 2))

    def test_str(self):
        vp = VantagePoint("10.0.0.1", 1, "c")
        a = Update(UpdateKind.ANNOUNCE, vp, Prefix.parse("10.0.0.0/24"), ASPath.of(1, 2))
        w = Update(UpdateKind.WITHDRAW, vp, Prefix.parse("10.0.0.0/24"))
        assert str(a).startswith("A ") and str(w).startswith("W ")


class TestDiff:
    def test_no_change_no_updates(self):
        rib = [ann("10.0.0.1", "10.0.0.0/24", 1, 2, 3)]
        assert list(diff_ribs(rib, rib)) == []

    def test_new_route_announced(self):
        updates = list(diff_ribs([], [ann("10.0.0.1", "10.0.0.0/24", 1, 2)]))
        assert len(updates) == 1
        assert updates[0].kind is UpdateKind.ANNOUNCE
        assert updates[0].path == ASPath.of(1, 2)

    def test_lost_route_withdrawn(self):
        updates = list(diff_ribs([ann("10.0.0.1", "10.0.0.0/24", 1, 2)], []))
        assert len(updates) == 1
        assert updates[0].kind is UpdateKind.WITHDRAW
        assert updates[0].path is None

    def test_changed_path_reannounced(self):
        before = [ann("10.0.0.1", "10.0.0.0/24", 1, 2, 3)]
        after = [ann("10.0.0.1", "10.0.0.0/24", 1, 4, 3)]
        updates = list(diff_ribs(before, after))
        assert len(updates) == 1
        assert updates[0].kind is UpdateKind.ANNOUNCE
        assert updates[0].path == ASPath.of(1, 4, 3)

    def test_keyed_per_vp(self):
        before = [ann("10.0.0.1", "10.0.0.0/24", 1, 3)]
        after = [ann("10.0.0.2", "10.0.0.0/24", 2, 3)]
        updates = list(diff_ribs(before, after))
        kinds = {u.vp.ip: u.kind for u in updates}
        assert kinds["10.0.0.1"] is UpdateKind.WITHDRAW
        assert kinds["10.0.0.2"] is UpdateKind.ANNOUNCE

    def test_deterministic_order(self):
        after = [
            ann("10.0.0.2", "10.1.0.0/24", 2, 3),
            ann("10.0.0.1", "10.0.0.0/24", 1, 3),
        ]
        updates = list(diff_ribs([], after))
        assert [u.vp.ip for u in updates] == ["10.0.0.1", "10.0.0.2"]


class TestSeriesChurn:
    @pytest.fixture(scope="class")
    def series(self):
        world = generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
            seed=2,
        )
        outcome = propagate_all(world.graph, keep=world.vp_asns())
        return generate_rib_days(world, outcome, seed=1)

    def test_daily_updates_apply(self, series):
        """Applying day-1→day-2 updates to day 1 yields day 2 exactly."""
        table = {(a.vp.ip, a.prefix): a for a in series.announcements(0)}
        for update in daily_updates(series, 1):
            key = (update.vp.ip, update.prefix)
            if update.kind is UpdateKind.WITHDRAW:
                del table[key]
            else:
                table[key] = Announcement(update.vp, update.prefix, update.path)
        expected = {(a.vp.ip, a.prefix): a for a in series.announcements(1)}
        assert table == expected

    def test_day_bounds(self, series):
        with pytest.raises(ValueError):
            list(daily_updates(series, 0))
        with pytest.raises(ValueError):
            list(daily_updates(series, series.config.days))

    def test_churn_profile(self, series):
        profile = churn_profile(series)
        assert len(profile) == series.config.days - 1
        for summary in profile:
            assert isinstance(summary, ChurnSummary)
            # Update volume is a small fraction of the table (healthy).
            assert summary.churn_ratio < 0.5
            assert summary.table_size > 0

    def test_zero_table_ratio(self):
        assert ChurnSummary(1, 0, 0, 0).churn_ratio == 0.0
