"""Tests for valley-free propagation, including Gao–Rexford properties."""

import pytest

from repro.bgp.policy import RouteClass
from repro.bgp.propagation import propagate, propagate_all
from repro.topology import GeneratorConfig, generate_world, small_profiles
from repro.topology.model import ASGraph


def build(edges_p2c=(), edges_p2p=(), asns=None):
    graph = ASGraph()
    seen = set()
    for pair in list(edges_p2c) + list(edges_p2p):
        seen.update(pair)
    for asn in sorted(seen | set(asns or ())):
        graph.add_as(asn)
    for provider, customer in edges_p2c:
        graph.add_p2c(provider, customer)
    for left, right in edges_p2p:
        graph.add_p2p(left, right)
    return graph


class TestChain:
    def test_customer_routes_climb(self):
        # 1 -> 2 -> 3 (providers on the left); origin 3.
        graph = build(edges_p2c=[(1, 2), (2, 3)])
        routes = propagate(graph, 3)
        assert routes[3].route_class is RouteClass.ORIGIN
        assert routes[2].path == (2, 3)
        assert routes[2].route_class is RouteClass.CUSTOMER
        assert routes[1].path == (1, 2, 3)
        assert routes[1].route_class is RouteClass.CUSTOMER

    def test_provider_routes_descend(self):
        graph = build(edges_p2c=[(1, 2), (2, 3)])
        routes = propagate(graph, 1)
        assert routes[2].path == (2, 1)
        assert routes[2].route_class is RouteClass.PROVIDER
        assert routes[3].path == (3, 2, 1)


class TestValleyFree:
    def test_peer_route_crosses_once(self):
        # origin 3 under 2; 2 peers with 4; 4 has customer 5.
        graph = build(edges_p2c=[(2, 3), (4, 5)], edges_p2p=[(2, 4)])
        routes = propagate(graph, 3)
        assert routes[4].path == (4, 2, 3)
        assert routes[4].route_class is RouteClass.PEER
        # 5 hears it from its provider 4 (peer route exported down).
        assert routes[5].path == (5, 4, 2, 3)
        assert routes[5].route_class is RouteClass.PROVIDER

    def test_no_transit_across_two_peers(self):
        # 2 -- 4 -- 6 peer chain; origin under 2; 6 must NOT reach it
        # via 4 (peer routes are not exported to peers).
        graph = build(edges_p2c=[(2, 3)], edges_p2p=[(2, 4), (4, 6)])
        routes = propagate(graph, 3)
        assert 6 not in routes

    def test_customer_preferred_over_peer(self):
        # AS 1 can reach origin 9 via customer 2 (longer) or peer 3 (shorter).
        graph = build(
            edges_p2c=[(1, 2), (2, 8), (8, 9), (3, 9)],
            edges_p2p=[(1, 3)],
        )
        routes = propagate(graph, 9)
        assert routes[1].route_class is RouteClass.CUSTOMER
        assert routes[1].path == (1, 2, 8, 9)

    def test_peer_preferred_over_provider(self):
        # AS 5's options: provider 1 (which has a customer route) or peer 4.
        graph = build(
            edges_p2c=[(1, 5), (1, 2), (2, 9), (4, 9)],
            edges_p2p=[(5, 4)],
        )
        routes = propagate(graph, 9)
        assert routes[5].route_class is RouteClass.PEER
        assert routes[5].path == (5, 4, 9)


class TestTieBreaks:
    def test_shortest_path_wins(self):
        graph = build(edges_p2c=[(1, 2), (2, 9), (1, 3), (3, 4), (4, 9)])
        routes = propagate(graph, 9)
        assert routes[1].path == (1, 2, 9)

    def test_lowest_next_hop_on_equal_length(self):
        graph = build(edges_p2c=[(1, 2), (2, 9), (1, 3), (3, 9)])
        routes = propagate(graph, 9)
        assert routes[1].path == (1, 2, 9)

    def test_down_phase_tiebreak(self):
        # 9's route descends to 5 via providers 2 and 3 at equal length.
        graph = build(edges_p2c=[(9, 2), (9, 3), (2, 5), (3, 5)])
        routes = propagate(graph, 9)
        assert routes[5].path == (5, 2, 9)


class TestPropagateAll:
    def test_keep_filters(self):
        graph = build(edges_p2c=[(1, 2), (2, 3)])
        graph.node(3).originate("10.0.0.0/24", "US")
        outcome = propagate_all(graph, keep=[1])
        assert set(outcome.routes) == {3}
        assert set(outcome.routes[3]) == {1}
        assert outcome.path(3, 1) == (1, 2, 3)
        assert outcome.path(3, 2) is None

    def test_unknown_origin_rejected(self):
        graph = build(edges_p2c=[(1, 2)])
        with pytest.raises(KeyError):
            propagate_all(graph, origins=[99])

    def test_default_origins_are_prefix_owners(self):
        graph = build(edges_p2c=[(1, 2), (2, 3)])
        graph.node(2).originate("10.0.0.0/24", "US")
        outcome = propagate_all(graph)
        assert outcome.origins() == [2]


def _label_sequence(graph, path):
    return [graph.relationship(a, b) for a, b in zip(path, path[1:])]


class TestValleyFreeProperty:
    """Every path a generated world produces must match c2p* p2p? p2c*."""

    def test_generated_world_paths_valley_free(self):
        world = generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
            seed=11,
        )
        outcome = propagate_all(world.graph, keep=world.vp_asns())
        checked = 0
        for origin, routes in outcome.routes.items():
            for asn, route in routes.items():
                labels = _label_sequence(world.graph, route.path)
                assert None not in labels, route.path
                # Climb, at most one peer crossing, then descend.
                phase = 0  # 0 = climbing, 1 = crossed peer, 2 = descending
                for label in labels:
                    if label == "c2p":
                        assert phase == 0, route.path
                    elif label == "p2p":
                        assert phase == 0, route.path
                        phase = 1
                    else:  # p2c
                        phase = 2
                checked += 1
        assert checked > 100
