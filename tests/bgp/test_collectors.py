"""Unit tests for collectors and vantage points."""

import pytest

from repro.bgp.collectors import Collector, CollectorProject, CollectorSet


def make_set():
    collectors = CollectorSet()
    ams = collectors.add(Collector("ams-ix", CollectorProject.RIS, "NL"))
    mh = collectors.add(
        Collector("route-views-mh", CollectorProject.ROUTEVIEWS, "US", multihop=True)
    )
    ams.add_vp("10.0.0.1", 100)
    ams.add_vp("10.0.0.2", 100)
    ams.add_vp("10.0.1.1", 200)
    mh.add_vp("10.9.0.1", 300)
    return collectors


class TestCollector:
    def test_add_vp(self):
        collector = Collector("c1", CollectorProject.RIS, "NL")
        vp = collector.add_vp("10.0.0.1", 64500 + 1)
        assert vp.collector == "c1"

    def test_duplicate_ip_rejected(self):
        collector = Collector("c1", CollectorProject.RIS, "NL")
        collector.add_vp("10.0.0.1", 1)
        with pytest.raises(ValueError):
            collector.add_vp("10.0.0.1", 2)

    def test_vp_asns(self):
        collector = Collector("c1", CollectorProject.RIS, "NL")
        collector.add_vp("10.0.0.1", 1)
        collector.add_vp("10.0.0.2", 1)
        assert collector.vp_asns() == frozenset({1})


class TestCollectorSet:
    def test_duplicate_name_rejected(self):
        collectors = make_set()
        with pytest.raises(ValueError):
            collectors.add(Collector("ams-ix", CollectorProject.RIS, "NL"))

    def test_lookup(self):
        collectors = make_set()
        assert collectors.get("ams-ix").country == "NL"
        assert "ams-ix" in collectors
        assert len(collectors) == 2

    def test_vp_partitions(self):
        collectors = make_set()
        assert len(collectors.all_vps()) == 4
        assert len(collectors.geolocatable_vps()) == 3
        assert len(collectors.multihop_vps()) == 1

    def test_vp_country(self):
        collectors = make_set()
        located = collectors.geolocatable_vps()[0]
        unlocated = collectors.multihop_vps()[0]
        assert collectors.vp_country(located) == "NL"
        assert collectors.vp_country(unlocated) is None

    def test_vp_asns(self):
        collectors = make_set()
        assert collectors.vp_asns() == frozenset({100, 200, 300})
