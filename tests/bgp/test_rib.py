"""Tests for the lazy RIB series."""

import pytest

from repro.bgp.anomalies import AnomalyConfig
from repro.bgp.propagation import propagate_all
from repro.bgp.rib import RibGenerationConfig, RibSeries, generate_rib_days
from repro.topology import GeneratorConfig, generate_world, small_profiles


@pytest.fixture(scope="module")
def world():
    return generate_world(
        GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
        seed=5,
    )


@pytest.fixture(scope="module")
def outcome(world):
    return propagate_all(world.graph, keep=world.vp_asns())


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RibGenerationConfig(days=0)
        with pytest.raises(ValueError):
            RibGenerationConfig(churn_rate=1.5)
        with pytest.raises(ValueError):
            RibGenerationConfig(vp_visibility=0.0)


class TestSeries:
    def test_deterministic(self, world, outcome):
        a = generate_rib_days(world, outcome, seed=9)
        b = generate_rib_days(world, outcome, seed=9)
        assert a.num_records() == b.num_records()
        assert a.unstable_days == b.unstable_days
        assert a.overrides.keys() == b.overrides.keys()

    def test_seed_changes_noise(self, world, outcome):
        a = generate_rib_days(world, outcome, seed=9)
        b = generate_rib_days(world, outcome, seed=10)
        assert a.unstable_days != b.unstable_days

    def test_records_match_day_sum(self, world, outcome):
        series = generate_rib_days(world, outcome, seed=9)
        per_day = sum(
            sum(1 for _ in series.announcements(day))
            for day in range(series.config.days)
        )
        assert per_day == series.total_announcements()

    def test_record_day_counts(self, world, outcome):
        series = generate_rib_days(world, outcome, seed=9)
        days = series.config.days
        for record in series.records():
            assert 1 <= record.days_present <= days
            assert record.total_days == days

    def test_unstable_records_flagged(self, world, outcome):
        series = generate_rib_days(world, outcome, seed=9)
        unstable_prefixes = {
            series.prefix_table[index][0] for index in series.unstable_days
        }
        assert unstable_prefixes  # default churn produces some
        for record in series.records():
            assert record.stable == (record.prefix not in unstable_prefixes)

    def test_bad_day_rejected(self, world, outcome):
        series = generate_rib_days(world, outcome, seed=9)
        with pytest.raises(ValueError):
            list(series.announcements(99))

    def test_paths_end_at_prefix_origin(self, world, outcome):
        series = generate_rib_days(
            world, outcome,
            RibGenerationConfig(anomalies=AnomalyConfig.none()),
            seed=9,
        )
        origin_of = {prefix: origin for prefix, origin in series.prefix_table}
        for record in series.records():
            assert record.path.origin == origin_of[record.prefix]

    def test_paths_start_at_vp_asn(self, world, outcome):
        series = generate_rib_days(
            world, outcome,
            RibGenerationConfig(anomalies=AnomalyConfig.none()),
            seed=9,
        )
        for record in series.records():
            assert record.path.collector_side == record.vp.asn

    def test_clean_config_has_no_overrides(self, world, outcome):
        series = generate_rib_days(
            world, outcome,
            RibGenerationConfig(anomalies=AnomalyConfig.none()),
            seed=9,
        )
        assert not series.overrides
        assert series.injection_summary.total() == 0

    def test_full_visibility_no_missing(self, world, outcome):
        series = generate_rib_days(
            world, outcome,
            RibGenerationConfig(vp_visibility=1.0, anomalies=AnomalyConfig.none()),
            seed=9,
        )
        # Every VP sees every reachable origin's prefixes.
        reachable = 0
        vps = series.vps
        for vp in vps:
            for prefix, origin in series.prefix_table:
                if outcome.path(origin, vp.asn) is not None:
                    reachable += 1
        assert series.num_records() == reachable


class TestLazyDays:
    def test_days_cover_the_series_in_order(self, world, outcome):
        series = generate_rib_days(world, outcome, seed=2)
        dumps = list(series.days())
        assert [dump.day for dump in dumps] == list(range(series.config.days))
        for dump in dumps:
            assert list(dump) == list(series.announcements(dump.day))

    def test_days_is_a_generator(self, world, outcome):
        series = generate_rib_days(world, outcome, seed=2)
        stream = series.days()
        first = next(stream)
        assert first.day == 0
        assert list(first) == list(series.announcements(0))
