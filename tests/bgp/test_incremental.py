"""Incremental re-propagation must be invisible: feeding a basis from
the previous snapshot can only change *how much* work the sweep does,
never its routes. Every test here compares an incremental outcome
against a cold full recompute of the same (mutated) graph."""

import pytest

from repro import GeneratorConfig, generate_world, small_profiles
from repro.bgp.propagation import (
    _adjacency_of,
    adjacency_delta,
    keep_closure,
    propagate_all,
)
from repro.topology.model import ASGraph

SMALL = GeneratorConfig(
    profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
)


def _world():
    # function-scoped worlds: these tests mutate the graph in place
    return generate_world(SMALL, seed=7, name="small")


def _origins(graph):
    return [asn for asn in graph.asns() if graph.node(asn).prefixes][:12]


@pytest.fixture
def world():
    return _world()


def _customer_link(graph, origins):
    """A (provider, origin) edge to script a topology change with."""
    for asn in origins:
        providers = graph.providers_of(asn)
        if providers:
            return next(iter(providers)), asn
    raise AssertionError("generated world has no origin with a provider")


class TestBasisCapture:
    def test_capture_populates_holders_and_routes(self, world):
        origins = _origins(world.graph)
        outcome = propagate_all(
            world.graph, origins=origins, capture_basis=True
        )
        basis = outcome.basis
        assert basis is not None
        assert set(basis.routes) == set(origins)
        assert set(basis.holders) == set(origins)
        for origin in origins:
            # every AS holding a route is a holder the BFS visited
            assert set(outcome.routes[origin]) <= basis.holders[origin]

    def test_no_capture_by_default(self, world):
        outcome = propagate_all(world.graph, origins=_origins(world.graph))
        assert outcome.basis is None

    def test_compatible(self, world):
        origins = _origins(world.graph)
        basis = propagate_all(
            world.graph, origins=origins, capture_basis=True, salt=3
        ).basis
        assert basis.compatible("asn", 3, None)
        assert not basis.compatible("asn", 4, None)
        assert not basis.compatible("random", 3, None)
        assert not basis.compatible("asn", 3, frozenset({1}))


class TestIncrementalEquivalence:
    def test_unchanged_graph_reuses_everything(self, world):
        origins = _origins(world.graph)
        first = propagate_all(
            world.graph, origins=origins, capture_basis=True
        )
        second = propagate_all(
            world.graph, origins=origins, basis=first.basis
        )
        assert second.routes == first.routes

    def test_edge_removal_matches_full_recompute(self, world):
        origins = _origins(world.graph)
        basis = propagate_all(
            world.graph, origins=origins, capture_basis=True
        ).basis
        provider, victim = _customer_link(world.graph, origins)
        world.graph.remove_edge(provider, victim)
        incremental = propagate_all(
            world.graph, origins=origins, basis=basis
        )
        full = propagate_all(world.graph, origins=origins)
        assert incremental.routes == full.routes

    def test_added_peering_matches_full_recompute(self, world):
        origins = _origins(world.graph)
        basis = propagate_all(
            world.graph, origins=origins, capture_basis=True
        ).basis
        asns = list(world.graph.asns())
        left, right = asns[0], asns[-1]
        if world.graph.relationship(left, right) is not None:
            pytest.skip("seed already links the chosen pair")
        world.graph.add_p2p(left, right)
        incremental = propagate_all(
            world.graph, origins=origins, basis=basis
        )
        full = propagate_all(world.graph, origins=origins)
        assert incremental.routes == full.routes

    def test_keep_pruned_sweep_matches_full(self, world):
        origins = _origins(world.graph)
        keep = frozenset(list(world.graph.asns())[:6])
        basis = propagate_all(
            world.graph, origins=origins, keep=keep, capture_basis=True
        ).basis
        provider, victim = _customer_link(world.graph, list(reversed(origins)))
        world.graph.remove_edge(provider, victim)
        incremental = propagate_all(
            world.graph, origins=origins, keep=keep, basis=basis
        )
        full = propagate_all(world.graph, origins=origins, keep=keep)
        assert incremental.routes == full.routes

    def test_threshold_zero_forces_full_recompute(self, world):
        origins = _origins(world.graph)
        basis = propagate_all(
            world.graph, origins=origins, capture_basis=True
        ).basis
        provider, victim = _customer_link(world.graph, origins)
        world.graph.remove_edge(provider, victim)
        forced = propagate_all(
            world.graph, origins=origins, basis=basis, delta_threshold=0.0
        )
        full = propagate_all(world.graph, origins=origins)
        assert forced.routes == full.routes

    def test_incompatible_basis_is_ignored(self, world):
        origins = _origins(world.graph)
        basis = propagate_all(
            world.graph, origins=origins, capture_basis=True, salt=1
        ).basis
        mismatched = propagate_all(
            world.graph, origins=origins, basis=basis, salt=2
        )
        fresh = propagate_all(world.graph, origins=origins, salt=2)
        assert mismatched.routes == fresh.routes


class TestAdjacencyDelta:
    def test_same_version_snapshot_is_cached(self, world):
        assert _adjacency_of(world.graph) is _adjacency_of(world.graph)

    def test_mutation_invalidates_snapshot(self, world):
        before = _adjacency_of(world.graph)
        asns = list(world.graph.asns())
        world.graph.add_p2p(asns[0], asns[-1])
        after = _adjacency_of(world.graph)
        assert after is not before
        delta = adjacency_delta(before, after)
        assert {asns[0], asns[-1]} <= delta

    def test_identical_snapshots_have_empty_delta(self, world):
        snapshot = _adjacency_of(world.graph)
        assert adjacency_delta(snapshot, snapshot) == frozenset()

    def test_removed_as_is_marked(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        before = _adjacency_of(graph)
        graph.remove_as(3)
        delta = adjacency_delta(before, _adjacency_of(graph))
        assert 3 in delta
        assert 2 in delta  # its provider's row changed too


class TestKeepClosure:
    def test_closure_climbs_provider_chains(self):
        graph = ASGraph()
        for asn in (1, 2, 3, 4):
            graph.add_as(asn)
        graph.add_p2c(1, 2)  # 1 provides 2
        graph.add_p2c(2, 3)  # 2 provides 3
        graph.add_p2c(1, 4)
        closure = keep_closure(_adjacency_of(graph), {3})
        assert closure == frozenset({3, 2, 1})

    def test_peers_are_not_pulled_in(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_p2c(1, 2)
        graph.add_p2p(2, 3)
        assert keep_closure(_adjacency_of(graph), {2}) == frozenset({2, 1})
