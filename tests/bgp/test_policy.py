"""Unit tests for routing policy primitives."""

import pytest

from repro.bgp.policy import Route, RouteClass, better


class TestRoute:
    def test_accessors(self):
        route = Route((1, 2, 3), RouteClass.CUSTOMER)
        assert route.holder == 1
        assert route.origin == 3
        assert route.next_hop == 2

    def test_origin_route(self):
        route = Route((5,), RouteClass.ORIGIN)
        assert route.next_hop == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Route((), RouteClass.CUSTOMER)

    def test_origin_must_be_single_hop(self):
        with pytest.raises(ValueError):
            Route((1, 2), RouteClass.ORIGIN)


class TestPreference:
    def test_class_dominates_length(self):
        customer = Route((1, 2, 3, 4, 5), RouteClass.CUSTOMER)
        peer = Route((1, 9), RouteClass.PEER)
        assert better(peer, customer) is customer
        assert better(customer, peer) is customer

    def test_shorter_wins_within_class(self):
        short = Route((1, 2), RouteClass.PEER)
        long = Route((1, 3, 4), RouteClass.PEER)
        assert better(long, short) is short

    def test_lower_next_hop_breaks_ties(self):
        low = Route((1, 2, 9), RouteClass.PROVIDER)
        high = Route((1, 3, 9), RouteClass.PROVIDER)
        assert better(high, low) is low
        assert better(low, high) is low

    def test_none_incumbent(self):
        candidate = Route((1, 2), RouteClass.PROVIDER)
        assert better(None, candidate) is candidate


class TestExportRules:
    def test_customer_and_origin_export_up(self):
        assert Route((1,), RouteClass.ORIGIN).exports_to_peers_and_providers()
        assert Route((1, 2), RouteClass.CUSTOMER).exports_to_peers_and_providers()

    def test_peer_provider_do_not_export_up(self):
        assert not Route((1, 2), RouteClass.PEER).exports_to_peers_and_providers()
        assert not Route((1, 2), RouteClass.PROVIDER).exports_to_peers_and_providers()
