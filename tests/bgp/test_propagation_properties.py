"""Property-based tests for route propagation over random economies.

Hypothesis builds random tiered AS graphs (provider edges always point
from a lower-numbered tier downward, so they are acyclic by
construction; peering is arbitrary within adjacency constraints) and
checks the Gao–Rexford invariants on every propagated route.
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.policy import RouteClass
from repro.bgp.propagation import propagate
from repro.topology.model import ASGraph


@st.composite
def economies(draw):
    """A random acyclic transit economy with 4–16 ASes."""
    n = draw(st.integers(min_value=4, max_value=16))
    graph = ASGraph()
    for asn in range(1, n + 1):
        graph.add_as(asn)
    # Provider edges always point low ASN -> high ASN: acyclic.
    for customer in range(2, n + 1):
        provider_count = draw(st.integers(min_value=0, max_value=min(3, customer - 1)))
        providers = draw(
            st.lists(
                st.integers(min_value=1, max_value=customer - 1),
                min_size=provider_count, max_size=provider_count, unique=True,
            )
        )
        for provider in providers:
            graph.add_p2c(provider, customer)
    # Random peering among unrelated pairs.
    peer_pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n),
                st.integers(min_value=1, max_value=n),
            ),
            max_size=2 * n,
        )
    )
    for left, right in peer_pairs:
        if left != right and graph.relationship(left, right) is None:
            graph.add_p2p(left, right)
    origin = draw(st.integers(min_value=1, max_value=n))
    tiebreak = draw(st.sampled_from(["asn", "hash"]))
    return graph, origin, tiebreak


def label_sequence(graph, path):
    return [graph.relationship(a, b) for a, b in zip(path, path[1:])]


class TestGaoRexfordInvariants:
    @settings(max_examples=150, deadline=None)
    @given(economies())
    def test_all_routes_valley_free(self, economy):
        graph, origin, tiebreak = economy
        routes = propagate(graph, origin, tiebreak)
        for asn, route in routes.items():
            labels = label_sequence(graph, route.path)
            assert None not in labels
            phase = 0  # 0 climbing, 1 crossed peer, 2 descending
            for label in labels:
                if label == "c2p":
                    assert phase == 0
                elif label == "p2p":
                    assert phase == 0
                    phase = 1
                else:
                    phase = 2

    @settings(max_examples=150, deadline=None)
    @given(economies())
    def test_route_structure(self, economy):
        graph, origin, tiebreak = economy
        routes = propagate(graph, origin, tiebreak)
        assert routes[origin].route_class is RouteClass.ORIGIN
        for asn, route in routes.items():
            assert route.path[0] == asn
            assert route.path[-1] == origin
            # Loop-free.
            assert len(set(route.path)) == len(route.path)

    @settings(max_examples=150, deadline=None)
    @given(economies())
    def test_class_matches_first_hop(self, economy):
        graph, origin, tiebreak = economy
        routes = propagate(graph, origin, tiebreak)
        for asn, route in routes.items():
            if asn == origin:
                continue
            relationship = graph.relationship(asn, route.next_hop)
            if relationship == "p2c":
                assert route.route_class is RouteClass.CUSTOMER
            elif relationship == "p2p":
                assert route.route_class is RouteClass.PEER
            else:
                assert route.route_class is RouteClass.PROVIDER

    @settings(max_examples=100, deadline=None)
    @given(economies())
    def test_customers_of_routed_providers_reachable(self, economy):
        """If an AS has a route, every customer below it has one too
        (providers export everything downward)."""
        graph, origin, tiebreak = economy
        routes = propagate(graph, origin, tiebreak)
        for asn in routes:
            stack = [asn]
            seen = set()
            while stack:
                here = stack.pop()
                if here in seen:
                    continue
                seen.add(here)
                assert here in routes
                stack.extend(graph.customers_of(here))

    @settings(max_examples=100, deadline=None)
    @given(economies())
    def test_customer_route_preferred_when_available(self, economy):
        """An AS with any customer-learned path to the origin never
        selects a peer or provider route."""
        graph, origin, tiebreak = economy
        routes = propagate(graph, origin, tiebreak)
        for asn, route in routes.items():
            if asn == origin:
                continue
            has_customer_path = any(
                customer in routes
                and routes[customer].route_class in (
                    RouteClass.ORIGIN, RouteClass.CUSTOMER,
                )
                for customer in graph.customers_of(asn)
            )
            if has_customer_path:
                assert route.route_class is RouteClass.CUSTOMER
