"""Tests for the watch event model: ids, serialization, validation."""

import json

from repro.core.ranking import Ranking
from repro.monitor.drift import measure_drift
from repro.monitor.events import (
    alert_event,
    drift_event,
    event_id,
    events_to_jsonl,
    ranking_event,
    snapshot_event,
    validate_watch_events,
    validate_watch_jsonl,
)


def ranking(metric="AHN", scores=None, country="AU"):
    scores = scores if scores is not None else {10: 3.0, 20: 2.0, 30: 1.0}
    return Ranking.from_scores(metric, scores, shares=scores, country=country)


def sample_stream():
    before = ranking(scores={10: 3.0, 20: 2.0, 30: 1.0})
    after = ranking(scores={10: 3.0, 30: 2.0, 40: 1.0})
    report = measure_drift(before, after, "day0", "day1", k=3)
    events = [
        snapshot_event(0, 0, "day0", "world", records=100, pairs=1),
        ranking_event(1, "day0", before, "AHN", "AU", top=3),
        snapshot_event(2, 1, "day1", "world", records=100, pairs=1),
        ranking_event(3, "day1", after, "AHN", "AU", top=3),
        drift_event(4, report),
        alert_event(5, report, "notice", ("top-3 churn: 1 entered, 1 exited",)),
    ]
    return events


class TestEventId:
    def test_deterministic(self):
        assert event_id(3, "drift", "CCI", "RU") == event_id(3, "drift", "CCI", "RU")

    def test_twelve_hex_chars(self):
        eid = event_id(0, "snapshot", "day0")
        assert len(eid) == 12
        assert all(c in "0123456789abcdef" for c in eid)

    def test_position_and_content_sensitive(self):
        base = event_id(1, "ranking", "day0", "AHN", "AU")
        assert event_id(2, "ranking", "day0", "AHN", "AU") != base
        assert event_id(1, "ranking", "day0", "CCI", "AU") != base


class TestSerialization:
    def test_jsonl_round_trips(self):
        events = sample_stream()
        text = events_to_jsonl(events)
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed == events

    def test_jsonl_keys_sorted(self):
        for line in events_to_jsonl(sample_stream()).splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_shares_rounded(self):
        event = ranking_event(
            0, "day0", ranking(scores={1: 0.123456789}), "AHN", "AU", top=1,
        )
        assert event["top"][0][2] == 0.123457


class TestValidation:
    def test_valid_stream(self):
        assert validate_watch_events(sample_stream()) == []
        assert validate_watch_jsonl(events_to_jsonl(sample_stream())) == []

    def test_unknown_type(self):
        problems = validate_watch_events([{"type": "mystery"}])
        assert any("unknown type" in p for p in problems)

    def test_duplicate_id(self):
        events = sample_stream()
        events[1]["id"] = events[0]["id"]
        assert any("duplicate id" in p for p in validate_watch_events(events))

    def test_seq_gap(self):
        events = sample_stream()
        events[3]["seq"] = 7
        assert any("seq" in p for p in validate_watch_events(events))

    def test_forward_snapshot_reference(self):
        events = sample_stream()
        events[1]["snapshot"] = "day9"
        problems = validate_watch_events(events)
        assert any("before its snapshot event" in p for p in problems)

    def test_tau_out_of_range(self):
        events = sample_stream()
        events[4]["tau"] = 1.5
        assert any("tau" in p for p in validate_watch_events(events))

    def test_alert_without_reasons(self):
        events = sample_stream()
        events[5]["reasons"] = []
        assert any("without reasons" in p for p in validate_watch_events(events))

    def test_unknown_severity(self):
        events = sample_stream()
        events[5]["severity"] = "panic"
        assert any("severity" in p for p in validate_watch_events(events))

    def test_negative_records(self):
        events = sample_stream()
        events[0]["records"] = -1
        assert any("records" in p for p in validate_watch_events(events))

    def test_unsorted_top_ranks(self):
        events = sample_stream()
        events[1]["top"] = [[2, 20, 0.5], [1, 10, 0.9]]
        assert any("not ascending" in p for p in validate_watch_events(events))

    def test_jsonl_parse_error(self):
        assert validate_watch_jsonl("{not json") != []
