"""Tests for drift measurement: churn, tau, NDCG, alert policy."""

import pytest

from repro.core.ranking import Ranking
from repro.monitor.drift import (
    alert_reasons,
    full_tau,
    measure_drift,
    top_churn,
)


def ranking(scores, metric="CCI", country="RU"):
    return Ranking.from_scores(metric, scores, shares=scores, country=country)


class TestTopChurn:
    def test_identical_rankings_are_quiet(self):
        r = ranking({1: 3.0, 2: 2.0, 3: 1.0})
        churn = top_churn(r, r, k=3)
        assert churn.quiet()
        assert churn.shifts == ()

    def test_entered_and_exited(self):
        before = ranking({10: 3.0, 20: 2.0, 30: 1.0})
        after = ranking({10: 3.0, 40: 2.0, 50: 1.0})
        churn = top_churn(before, after, k=3)
        assert churn.entered == (40, 50)  # later ranking's order
        assert churn.exited == (20, 30)  # earlier ranking's order
        assert not churn.quiet()

    def test_shifts_track_survivors_only(self):
        before = ranking({10: 3.0, 20: 2.0, 30: 1.0})
        after = ranking({20: 3.0, 10: 2.0, 30: 1.0})
        churn = top_churn(before, after, k=3)
        assert churn.entered == () and churn.exited == ()
        moved = {s.asn: (s.before_rank, s.after_rank) for s in churn.shifts}
        assert moved == {10: (1, 2), 20: (2, 1)}
        assert {s.asn: s.delta for s in churn.shifts} == {10: -1, 20: 1}

    def test_k_windows_the_comparison(self):
        before = ranking({10: 3.0, 20: 2.0, 30: 1.0})
        after = ranking({10: 3.0, 30: 2.0, 20: 1.0})
        churn = top_churn(before, after, k=2)
        assert churn.entered == (30,)
        assert churn.exited == (20,)


class TestFullTau:
    def test_identical_is_one(self):
        r = ranking({1: 3.0, 2: 2.0, 3: 1.0})
        assert full_tau(r, r) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        before = ranking({1: 3.0, 2: 2.0, 3: 1.0})
        after = ranking({1: 1.0, 2: 2.0, 3: 3.0})
        assert full_tau(before, after) == pytest.approx(-1.0)

    def test_only_shared_ases_count(self):
        before = ranking({1: 3.0, 2: 2.0, 9: 1.0})
        after = ranking({1: 3.0, 2: 2.0, 7: 1.0})  # 9 gone, 7 new
        assert full_tau(before, after) == pytest.approx(1.0)


class TestMeasureDrift:
    def test_report_fields(self):
        before = ranking({10: 3.0, 20: 2.0})
        after = ranking({10: 3.0, 30: 2.0})
        report = measure_drift(
            before, after, "d0", "d1", k=2, metric="CCI", country="RU",
        )
        assert report.metric == "CCI" and report.country == "RU"
        assert report.before_label == "d0" and report.after_label == "d1"
        assert report.churn.entered == (30,)
        assert 0.0 <= report.ndcg <= 1.0 + 1e-9

    def test_identical_snapshot_scores_perfectly(self):
        r = ranking({10: 3.0, 20: 2.0, 30: 1.0})
        report = measure_drift(r, r, "d0", "d1", k=3)
        assert report.tau == pytest.approx(1.0)
        assert report.ndcg == pytest.approx(1.0)
        assert report.churn.quiet()


class TestAlertReasons:
    def test_quiet_stable_ranking_no_alert(self):
        r = ranking({10: 3.0, 20: 2.0})
        report = measure_drift(r, r, "d0", "d1", k=2)
        severity, reasons = alert_reasons(report, 0.8, 0.9)
        assert reasons == ()
        assert severity == "notice"

    def test_tau_breach_pages(self):
        before = ranking({1: 3.0, 2: 2.0, 3: 1.0})
        after = ranking({1: 1.0, 2: 2.0, 3: 3.0})
        report = measure_drift(before, after, "d0", "d1", k=3)
        severity, reasons = alert_reasons(report, 0.8, 0.0)
        assert severity == "page"
        assert any("kendall-tau" in reason for reason in reasons)

    def test_churn_alone_is_notice(self):
        # same relative order among survivors, one AS swapped at the tail
        before = ranking({10: 3.0, 20: 2.0, 30: 1.0})
        after = ranking({10: 3.0, 20: 2.0, 40: 1.0})
        report = measure_drift(before, after, "d0", "d1", k=3)
        severity, reasons = alert_reasons(report, 0.0, 0.0)
        assert severity == "notice"
        assert reasons and "churn" in reasons[0]
