"""Tests for the snapshot-spec resolver grammar."""

import pytest

from repro.monitor.snapshots import SnapshotRef, WatchError, resolve_snapshots


def touch(directory, name):
    path = directory / name
    path.write_text("")
    return path


class TestWorldSpecs:
    def test_named_worlds(self):
        refs = resolve_snapshots(["small", "paper2021"])
        assert [r.label for r in refs] == ["small", "paper2021"]
        assert all(r.kind == "world" for r in refs)
        assert refs[0].seed is None  # run seed applies

    def test_seeded_worlds(self):
        refs = resolve_snapshots(["small@0", "small@7"])
        assert [r.label for r in refs] == ["small@0", "small@7"]
        assert [r.seed for r in refs] == [0, 7]

    def test_bad_seed(self):
        with pytest.raises(WatchError, match="not an integer"):
            resolve_snapshots(["small@x", "small@1"])

    def test_negative_seed(self):
        with pytest.raises(WatchError, match=">= 0"):
            resolve_snapshots(["small@-1", "small@1"])


class TestFileSpecs:
    def test_files_in_argument_order(self, tmp_path):
        b = touch(tmp_path, "b.jsonl")
        a = touch(tmp_path, "a.jsonl")
        refs = resolve_snapshots([str(b), str(a)])
        assert [r.label for r in refs] == ["b", "a"]
        assert all(r.kind == "release" for r in refs)

    def test_directory_expands_sorted(self, tmp_path):
        touch(tmp_path, "day2.jsonl")
        touch(tmp_path, "day1.jsonl")
        touch(tmp_path, "notes.txt")  # ignored
        refs = resolve_snapshots([str(tmp_path)])
        assert [r.label for r in refs] == ["day1", "day2"]

    def test_glob_expands_sorted(self, tmp_path):
        touch(tmp_path, "d2.jsonl")
        touch(tmp_path, "d1.jsonl")
        refs = resolve_snapshots([str(tmp_path / "d*.jsonl")])
        assert [r.label for r in refs] == ["d1", "d2"]

    def test_empty_directory(self, tmp_path):
        with pytest.raises(WatchError, match="no .*jsonl"):
            resolve_snapshots([str(tmp_path)])

    def test_unmatched_glob(self, tmp_path):
        with pytest.raises(WatchError, match="matched no files"):
            resolve_snapshots([str(tmp_path / "nope*.jsonl")])

    def test_unresolvable_spec(self):
        with pytest.raises(WatchError, match="not a known world"):
            resolve_snapshots(["tinyworld", "small"])


class TestStreamRules:
    def test_needs_two_snapshots(self):
        with pytest.raises(WatchError, match="at least 2"):
            resolve_snapshots(["small"])

    def test_empty_spec(self):
        with pytest.raises(WatchError, match="empty"):
            resolve_snapshots(["small", " "])

    def test_duplicate_file_labels_fall_back_to_paths(self, tmp_path):
        one = tmp_path / "one"
        two = tmp_path / "two"
        one.mkdir()
        two.mkdir()
        touch(one, "day1.jsonl")
        touch(two, "day1.jsonl")
        refs = resolve_snapshots([str(one), str(two)])
        labels = [r.label for r in refs]
        assert len(set(labels)) == 2
        assert all(label.endswith("day1.jsonl") for label in labels)

    def test_duplicate_world_labels_rejected(self):
        with pytest.raises(WatchError, match="duplicate"):
            resolve_snapshots(["small@1", "small@1"])

    def test_mixed_world_and_release(self, tmp_path):
        day = touch(tmp_path, "day1.jsonl")
        refs = resolve_snapshots(["small@0", str(day)])
        assert [r.kind for r in refs] == ["world", "release"]


class TestLoad:
    def test_world_ref_load_runs_pipeline(self):
        ref = resolve_snapshots(["small@0", "small@1"])[0]
        result = ref.load(seed=99, workers=1, trim=0.1)
        assert result.world.name == "small"
        assert result.config.seed == 0  # explicit @seed wins over run seed

    def test_unseeded_world_uses_run_seed(self):
        ref = SnapshotRef(label="small", kind="world", spec="small", world="small")
        result = ref.load(seed=5, workers=1, trim=0.1)
        assert result.config.seed == 5
