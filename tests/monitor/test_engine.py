"""Engine tests: determinism, resume equivalence, obs wiring, and the
paper's Table-10 Russia acceptance case."""

import json

import pytest

from repro.monitor import (
    WatchConfig,
    WatchError,
    render_watch,
    resolve_snapshots,
    validate_watch_events,
    watch,
    watch_key,
)
from repro.obs.trace import Tracer
from repro.resilience.checkpoint import Checkpoint

SMALL = ["small@0", "small@1", "small@2"]
CONFIG = WatchConfig(metrics=("AHN", "CCI"), countries=("AU",))


@pytest.fixture(scope="module")
def small_run():
    return watch(resolve_snapshots(SMALL), CONFIG)


class TestStreamShape:
    def test_schema_valid(self, small_run):
        assert validate_watch_events(small_run.events) == []

    def test_event_census(self, small_run):
        kinds = [e["type"] for e in small_run.events]
        assert kinds.count("snapshot") == 3
        assert kinds.count("ranking") == 6  # 2 metrics x 1 country x 3 days
        assert kinds.count("drift") == 4  # 2 metrics x 2 transitions

    def test_snapshot_precedes_its_rankings(self, small_run):
        seen = set()
        for event in small_run.events:
            if event["type"] == "snapshot":
                seen.add(event["snapshot"])
            elif event["type"] == "ranking":
                assert event["snapshot"] in seen

    def test_render_covers_stream(self, small_run):
        text = render_watch(small_run)
        assert "small@0 -> small@1 -> small@2" in text
        assert "tau=" in text and "ndcg=" in text


class TestDeterminism:
    def test_rerun_is_byte_identical(self, small_run):
        again = watch(resolve_snapshots(SMALL), CONFIG)
        assert again.jsonl() == small_run.jsonl()

    def test_tracer_is_observe_only(self, small_run):
        tracer = Tracer()
        traced = watch(resolve_snapshots(SMALL), CONFIG, tracer=tracer)
        assert traced.jsonl() == small_run.jsonl()
        counters = tracer.metrics.counters()
        assert counters["monitor.snapshots.loaded"] == 3
        assert counters["monitor.rankings.computed"] == 6
        assert counters["monitor.events"] == len(small_run.events)
        assert counters["monitor.drifts"] == 4
        span_names = tracer.stage_names()
        for name in ("watch", "watch.snapshot", "watch.ranking", "watch.drift"):
            assert name in span_names

    def test_workers_do_not_change_stream(self, small_run):
        config = WatchConfig(
            metrics=CONFIG.metrics, countries=CONFIG.countries, workers=2,
        )
        assert watch(resolve_snapshots(SMALL), config).jsonl() == small_run.jsonl()


class TestCheckpointResume:
    def _checkpoint(self, path, resume):
        refs = resolve_snapshots(SMALL)
        return refs, Checkpoint.open(
            path, watch_key([r.label for r in refs], CONFIG), resume=resume,
        )

    def test_full_resume_recomputes_nothing(self, tmp_path, small_run):
        path = tmp_path / "watch.ck"
        refs, checkpoint = self._checkpoint(path, resume=False)
        first = watch(refs, CONFIG, checkpoint=checkpoint)
        checkpoint.close()
        assert first.jsonl() == small_run.jsonl()

        refs, checkpoint = self._checkpoint(path, resume=True)
        tracer = Tracer()
        second = watch(refs, CONFIG, tracer=tracer, checkpoint=checkpoint)
        checkpoint.close()
        assert second.jsonl() == first.jsonl()
        assert second.resumed_units == 6 and second.computed_units == 0
        # fully-banked snapshots never materialize a pipeline
        assert "monitor.snapshots.loaded" not in tracer.metrics.counters()

    def test_mid_stream_resume_is_byte_identical(self, tmp_path, small_run):
        path = tmp_path / "watch.ck"
        refs, checkpoint = self._checkpoint(path, resume=False)
        watch(refs, CONFIG, checkpoint=checkpoint)
        checkpoint.close()

        # Simulate a crash partway through day 2: keep the header plus
        # the first four completed units, drop the rest.
        lines = path.read_text().splitlines()
        assert len(lines) > 5
        path.write_text("\n".join(lines[:5]) + "\n")

        refs, checkpoint = self._checkpoint(path, resume=True)
        resumed = watch(refs, CONFIG, checkpoint=checkpoint)
        checkpoint.close()
        assert resumed.jsonl() == small_run.jsonl()
        assert resumed.resumed_units > 0
        assert resumed.computed_units > 0

    def test_foreign_key_discards_checkpoint(self, tmp_path, small_run):
        path = tmp_path / "watch.ck"
        path.write_text(json.dumps({
            "type": "header", "format": "repro-checkpoint", "version": 1,
            "key": "watch/other-stream",
        }) + "\n")
        refs = resolve_snapshots(SMALL)
        checkpoint = Checkpoint.open(
            path, watch_key([r.label for r in refs], CONFIG), resume=True,
        )
        run = watch(refs, CONFIG, checkpoint=checkpoint)
        checkpoint.close()
        assert run.resumed_units == 0
        assert run.jsonl() == small_run.jsonl()


class TestValidationErrors:
    def test_unknown_metric(self):
        with pytest.raises(WatchError, match="unknown metric"):
            watch(resolve_snapshots(SMALL), WatchConfig(metrics=("NOPE",)))

    def test_empty_metrics(self):
        with pytest.raises(WatchError, match="at least one metric"):
            WatchConfig(metrics=())

    def test_bad_top(self):
        with pytest.raises(WatchError, match="top"):
            WatchConfig(top=0)

    def test_bad_tau_threshold(self):
        with pytest.raises(WatchError, match="tau"):
            WatchConfig(tau_threshold=2.0)

    def test_bad_ndcg_threshold(self):
        with pytest.raises(WatchError, match="ndcg"):
            WatchConfig(ndcg_threshold=-0.5)

    def test_too_few_snapshots(self):
        ref = resolve_snapshots(SMALL)[0]
        with pytest.raises(WatchError, match="at least 2"):
            watch([ref], CONFIG)

    def test_non_replayable_metric_on_release_snapshots(self, tmp_path):
        day = tmp_path / "day1.jsonl"
        day.write_text("")
        refs = resolve_snapshots(["small@0", str(day)])
        with pytest.raises(WatchError, match="cannot be replayed"):
            watch(refs, WatchConfig(metrics=("CTI",)))


class TestWatchKey:
    def test_same_inputs_same_key(self):
        assert watch_key(["a", "b"], CONFIG) == watch_key(["a", "b"], CONFIG)

    def test_stream_and_knobs_in_key(self):
        base = watch_key(["a", "b"], CONFIG)
        assert watch_key(["a", "c"], CONFIG) != base
        assert watch_key(
            ["a", "b"], WatchConfig(metrics=CONFIG.metrics,
                                    countries=CONFIG.countries, top=5),
        ) != base

    def test_workers_excluded(self):
        wide = WatchConfig(
            metrics=CONFIG.metrics, countries=CONFIG.countries, workers=4,
        )
        assert watch_key(["a", "b"], wide) == watch_key(["a", "b"], CONFIG)


class TestTable10Russia:
    """The paper's 2021→2023 Russia case (Table 10): GTT (AS3257)
    leaves the CCI top-10, Orange (AS5511) enters."""

    @pytest.fixture(scope="class")
    def russia(self):
        refs = resolve_snapshots(["paper2021", "paper2023"])
        return watch(refs, WatchConfig(metrics=("CCI", "AHI"), countries=("RU",)))

    def test_cci_churn_matches_table_10(self, russia):
        drift = next(d for d in russia.drifts() if d["metric"] == "CCI")
        assert 5511 in drift["entered"]
        assert 3257 in drift["exited"]

    def test_churn_raises_an_alert(self, russia):
        alerts = [a for a in russia.alerts() if a["metric"] == "CCI"]
        assert alerts
        assert any("churn" in r for a in alerts for r in a["reasons"])

    def test_stream_is_schema_valid(self, russia):
        assert validate_watch_events(russia.events) == []
