"""R001 positive: unseeded RNG construction and global-RNG calls."""
import random


def shuffled(items):
    rng = random.Random()
    values = list(items)
    rng.shuffle(values)
    return values


def pick(items):
    return random.choice(items)
