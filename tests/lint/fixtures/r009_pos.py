# repro-lint: module=repro.workerfix.pos
"""R009 positive: worker-reachable code writes module state.

``_chunk`` mutates a module-level dict directly and ``_chunk_counted``
reaches a global rebind through a helper; both run inside pool workers,
so the writes land in forked copies and vanish.
"""

_CACHE = {}
_COUNT = 0


def resilient_map(stage, fn, payloads, workers):
    return [fn(p) for p in payloads]


def _chunk(payload):
    _CACHE[payload] = True
    return payload


def _bump(n):
    global _COUNT
    _COUNT += 1
    return n


def _chunk_counted(payload):
    return _bump(payload)


def dispatch(payloads):
    first = resilient_map("stage-a", _chunk, payloads, 2)
    second = resilient_map("stage-b", _chunk_counted, payloads, 2)
    return first + second
