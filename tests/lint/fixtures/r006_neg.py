"""R006 negative: specific exceptions, and broad catch that re-raises."""


def load(parse, raw):
    try:
        return parse(raw)
    except ValueError:
        return None


def guarded(fn, log):
    try:
        return fn()
    except Exception as error:
        log(error)
        raise
