# repro-lint: module=repro.specfix.pos
"""R012 positive: a registry compute callable mutates its inputs.

``_bad_compute`` writes into its ``ctx`` argument directly and reaches
a helper that appends to it — the registry contract says compute
callables treat their parameters as read-only.
"""


class MetricSpec:
    def __init__(self, name, compute):
        self.name = name
        self.compute = compute


def _accumulate(ctx):
    ctx.samples.append(0)
    return list(ctx.samples)


def _bad_compute(spec, ctx):
    ctx.cache["spec"] = spec
    return _accumulate(ctx)


SPEC = MetricSpec(name="bad", compute=_bad_compute)
