"""R006 positive: bare and overbroad except without re-raise."""


def load(parse, raw):
    try:
        return parse(raw)
    except:
        return None


def absorb(fn):
    try:
        return fn()
    except Exception:
        return 0
