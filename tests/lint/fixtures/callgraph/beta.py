"""Call-graph fixture: method resolution through ``self`` and bases,
plus a dynamic-dispatch fallback site.

Parsed (never imported) by tests/lint/test_callgraph.py under the
synthetic module name ``cgfix.beta``.
"""


class BaseNode:
    def shared(self):
        return self.leaf()

    def leaf(self):
        return 0


class Node(BaseNode):
    def leaf(self):
        return 1

    def run(self):
        return self.shared()


def helper():
    return 3


def dyn_call(obj):
    return obj.compute()


def compute():
    return 4
