"""Call-graph fixture: a second ``compute`` (dynamic-fallback target)
and typed receivers via function-local instantiation.

Parsed (never imported) by tests/lint/test_callgraph.py under the
synthetic module name ``cgfix.gamma``.
"""


def compute():
    return 5


def local_type_dispatch():
    from cgfix.beta import Node

    node = Node()
    return node.run()
