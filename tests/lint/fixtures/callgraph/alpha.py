"""Call-graph fixture: cycles, cross-module from-imports, decorators.

Parsed (never imported) by tests/lint/test_callgraph.py under the
synthetic module name ``cgfix.alpha``.
"""

from cgfix.beta import BaseNode, helper


def entry():
    return ping()


def ping():
    return pong()


def pong():
    return ping() or helper()


def trace_deco(fn):
    return fn


@trace_deco
def decorated():
    return 2


def run_decorated():
    return decorated()


def isolated():
    return 0
