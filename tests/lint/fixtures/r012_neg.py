# repro-lint: module=repro.specfix.neg
"""R012 negative: a pure compute callable — seeded RNG, no clocks,
no parameter mutation anywhere in its call tree."""

import random


class MetricSpec:
    def __init__(self, name, compute):
        self.name = name
        self.compute = compute


def _jitter(rng, values):
    return [value + rng.random() for value in values]


def _good_compute(spec, ctx):
    rng = random.Random(7)
    values = _jitter(rng, list(ctx))
    return sorted(values)


SPEC = MetricSpec(name="good", compute=_good_compute)
