"""R004 negative: isclose, integer accounting, and assert exemption."""
import math


def same_score(score_a, score_b):
    return math.isclose(score_a, score_b)


def same_count(count_a, count_b):
    return count_a == count_b


def check_determinism(score):
    assert score == 1.0
