"""R003 positive: ordered output built from raw set iteration."""


def labels(names):
    unique = set(names)
    return [name.upper() for name in unique]


def collect(groups):
    merged = []
    for item in {group for group in groups}:
        merged.append(item)
    return merged
