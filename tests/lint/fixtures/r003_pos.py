"""R003 positive: ordered output built from raw set iteration."""


def labels(names):
    unique = set(names)
    return [name.upper() for name in unique]


def collect(groups):
    merged = []
    for item in {group for group in groups}:
        merged.append(item)
    return merged


def keyed(names):
    unique = set(names)
    index = {name: len(name) for name in unique}
    out = []
    for name, width in index.items():
        out.append((name, width))
    return out


def marked(names):
    seen = dict.fromkeys(set(names))
    return list(seen.keys())


def paired(names):
    table = dict((name, 1) for name in set(names))
    return [name for name in table]
