# repro-lint: module=repro.workerfix.heavy
"""R010 positive: worker payloads smuggle heavy world objects.

``_heavy_chunk`` declares a payload type that expands to ``View``,
``dispatch_orphan``'s worker calls ``broadcast_get`` with no
``broadcast(...)`` producer in the dispatcher, and ``dispatch_closure``
ships a lambda (whose closure pickles whatever it captures).
"""


class View:
    """Stand-in for the heavy global view object."""


HeavyPayload = tuple["View", int]


def resilient_map(stage, fn, payloads, workers):
    return [fn(p) for p in payloads]


def broadcast_get(token):
    return token


def _heavy_chunk(payload: HeavyPayload):
    return payload[1]


def _token_chunk(payload):
    view = broadcast_get(payload[0])
    return (view, payload[1])


def dispatch_heavy(payloads):
    return resilient_map("stage", _heavy_chunk, payloads, 2)


def dispatch_orphan(payloads):
    return resilient_map("stage", _token_chunk, payloads, 2)


def dispatch_closure(payloads, factor):
    return resilient_map("stage", lambda p: p * factor, payloads, 2)
