# repro-lint: module=repro.fixture
"""R008 positive: metric names off the stage.metric_name convention,
plus a ranking metric missing from the registry."""


def instrument(metrics):
    metrics.counter("Totals").inc()
    metrics.gauge("lint").set(1)
    metrics.histogram("lint.Sizes").observe(2)


def rank(result):
    return result.ranking("CCX", "AU")
