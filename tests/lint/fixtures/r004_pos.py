"""R004 positive: exact float equality on score-like expressions."""


def same_score(score_a, score_b):
    return score_a == score_b


def is_quarter(x):
    return x == 0.25
