"""R005 positive: mutable default arguments."""


def gather(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
