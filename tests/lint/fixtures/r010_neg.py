# repro-lint: module=repro.workerfix.token
"""R010 negative: the broadcast-token discipline, followed.

The dispatcher publishes the heavy object once via ``broadcast`` and
ships only the returned token; the worker rehydrates it with
``broadcast_get``.
"""


class Pool:
    def broadcast(self, name, value):
        return name

    def workers(self):
        return 2


def resilient_map(stage, fn, payloads, workers):
    return [fn(p) for p in payloads]


def broadcast_get(token):
    return token


def _chunk(payload):
    view = broadcast_get(payload[0])
    return (view, payload[1])


def dispatch(pool: Pool, payloads):
    token = pool.broadcast("view", object())
    jobs = [(token, p) for p in payloads]
    return resilient_map("stage", _chunk, jobs, pool.workers())
