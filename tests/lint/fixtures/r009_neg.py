# repro-lint: module=repro.workerfix.neg
"""R009 negative: workers stay pure; parent-side code may write.

``_chunk`` builds only local state, and ``register`` (which does write
a module-level dict) is never reachable from a worker entry.
"""

_REGISTRY = {}


def resilient_map(stage, fn, payloads, workers):
    return [fn(p) for p in payloads]


def _chunk(payload):
    local = {}
    local[payload] = True
    return sorted(local)


def register(name, value):
    _REGISTRY[name] = value


def dispatch(payloads):
    return resilient_map("stage", _chunk, payloads, 2)
