# repro-lint: module=repro.fixture
"""R008 negative: conventional names; dynamic names are skipped."""


def instrument(metrics, category):
    metrics.counter("lint.files").inc()
    metrics.histogram("views.size").observe(3)
    metrics.counter(f"sanitize.dropped.{category}").inc()
