# repro-lint: module=repro.fixture
"""R008 negative: conventional names; dynamic names are skipped;
registered ranking metrics (any case) are fine."""


def instrument(metrics, category):
    metrics.counter("lint.files").inc()
    metrics.histogram("views.size").observe(3)
    metrics.counter(f"sanitize.dropped.{category}").inc()


def rank(result, metric):
    result.ranking("CCI", "AU")
    result.ranking("ahg")
    result.ranking(metric, "AU")
    return result.ranking("AHN-P", "AU")
