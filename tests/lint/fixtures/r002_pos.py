"""R002 positive: wall-clock reads outside repro.obs."""
import time
from datetime import datetime


def stamp():
    return time.time()


def day():
    return datetime.now().isoformat()
