# repro-lint: module=repro.memofix.neg
"""R011 negative: every guarded-field mutation bumps the version.

``add_edge`` bumps transitively through ``_touch``; ``clear`` bumps
inline; ``edge_list`` only reads.
"""


class Graph:
    # repro: memo-guard version=_version fields=_edges
    def __init__(self):
        self._version = 0
        self._edges = {}
        self._memo = None

    def add_edge(self, a, b):
        self._touch()
        self._edges[a] = b

    def clear(self):
        self._edges.clear()
        self._version += 1

    def _touch(self):
        self._version += 1
        self._memo = None

    def edge_list(self):
        if self._memo is None:
            self._memo = (self._version, sorted(self._edges))
        return self._memo
