"""R001 negative: seeded construction and instance-method draws."""
import random


def shuffled(items, seed):
    rng = random.Random(seed)
    values = list(items)
    rng.shuffle(values)
    return values


def pick(items, rng):
    return rng.choice(items)
