"""R003 negative: sorted wrappers, normalized accumulation, and
order-insensitive consumers."""


def labels(names):
    unique = set(names)
    return [name.upper() for name in sorted(unique)]


def collect(groups):
    merged = []
    for item in {group for group in groups}:
        merged.append(item)
    merged.sort()
    return merged


def total(values):
    return sum(value for value in set(values))


def distinct(values):
    return {value for value in set(values)}
