"""R003 negative: sorted wrappers, normalized accumulation, and
order-insensitive consumers."""


def labels(names):
    unique = set(names)
    return [name.upper() for name in sorted(unique)]


def collect(groups):
    merged = []
    for item in {group for group in groups}:
        merged.append(item)
    merged.sort()
    return merged


def total(values):
    return sum(value for value in set(values))


def distinct(values):
    return {value for value in set(values)}


def keyed(names):
    index = {name: len(name) for name in sorted(set(names))}
    return [(name, width) for name, width in index.items()]


def marked(names):
    seen = dict.fromkeys(set(names))
    return sorted(seen.keys())


def counted(names):
    table = dict.fromkeys(set(names), 0)
    return len(table.values())


def rebound(names):
    table = dict.fromkeys(set(names))
    table = {"fixed": 1}
    return list(table)
