# repro-lint: module=repro.obs.fixture
"""R002 negative: the observability layer owns the clocks."""
import time


def elapsed(start):
    return time.perf_counter() - start
