# repro-lint: module=repro.perf.fixture
"""R007 positive: mutating a shared View parameter in the batch engine."""


class View:
    """Stand-in carrying the protected type name."""


def poison(view: View, extra):
    view.country = None
    view.records.append(extra)
    return view
