"""R005 negative: None defaults with inner construction."""


def gather(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def scale(values, factor=1.0):
    return [value * factor for value in values]
