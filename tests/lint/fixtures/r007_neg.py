# repro-lint: module=repro.perf.fixture
"""R007 negative: reading shared inputs and rebinding locals."""


class View:
    """Stand-in carrying the protected type name."""


def derive(view: View, extra):
    records = list(view.records)
    records.append(extra)
    view = None
    return records
