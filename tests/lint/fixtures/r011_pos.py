# repro-lint: module=repro.memofix.pos
"""R011 positive: guarded fields mutated without a version bump.

``Graph`` declares a memo-guard over ``_edges`` and ``_nodes`` but
``add_edge`` and ``add_node`` mutate them without touching
``_version`` — any memo keyed on the version silently goes stale.
``Stale`` declares a guard over a field that does not exist.
"""


class Graph:
    # repro: memo-guard version=_version fields=_edges,_nodes
    def __init__(self):
        self._version = 0
        self._edges = {}
        self._nodes = []
        self._memo = None

    def add_edge(self, a, b):
        self._edges[a] = b

    def add_node(self, n):
        self._nodes.append(n)

    def edge_list(self):
        if self._memo is None:
            self._memo = (self._version, sorted(self._edges))
        return self._memo


class Stale:
    # repro: memo-guard version=_ver fields=_missing
    def __init__(self):
        self._ver = 0
