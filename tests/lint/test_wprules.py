"""Whole-program rules (R009–R012) across module boundaries: the
scenarios the per-file tier cannot see — a worker chunk in one module
writing another module's state, heavy types smuggled through imported
annotations, sanctioned-module exemptions, and suppression of program
findings through the ordinary noqa machinery.
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_source, run_lint

R009 = LintConfig(select=frozenset({"R009"}))
R010 = LintConfig(select=frozenset({"R010"}))
R011 = LintConfig(select=frozenset({"R011"}))
R012 = LintConfig(select=frozenset({"R012"}))


def write(tmp_path, name, module, body):
    target = tmp_path / name
    target.write_text(
        f"# repro-lint: module={module}\n" + textwrap.dedent(body)
    )
    return target


class TestForkSafetyAcrossModules:
    def _tree(self, tmp_path, noqa=""):
        write(tmp_path, "chunks.py", "repro.wfix.chunks", f"""\
            _SEEN = {{}}

            def chunk(payload):
                _SEEN[payload] = True{noqa}
                return payload
            """)
        write(tmp_path, "dispatch.py", "repro.wfix.dispatch", """\
            from repro.wfix.chunks import chunk

            def resilient_map(stage, fn, payloads, workers):
                return [fn(p) for p in payloads]

            def run(payloads):
                return resilient_map("stage", chunk, payloads, 2)
            """)
        return tmp_path

    def test_write_in_another_module_is_flagged(self, tmp_path):
        result = run_lint([str(self._tree(tmp_path))], R009)
        assert [f.rule_id for f in result.findings] == ["R009"]
        finding = result.findings[0]
        assert "chunks.py" in finding.path
        assert "_SEEN" in finding.message
        # the chain names the dispatch entry, cross-module
        assert "chunk" in finding.message

    def test_noqa_suppresses_program_finding(self, tmp_path):
        tree = self._tree(tmp_path, noqa="  # repro: noqa[R009]")
        result = run_lint([str(tree)], R009)
        assert result.findings == []
        assert result.suppressed_noqa == 1

    def test_sanctioned_module_is_exempt(self):
        source = textwrap.dedent("""\
            _BROADCAST = {}

            def resilient_map(stage, fn, payloads, workers):
                return [fn(p) for p in payloads]

            def chunk(payload):
                _BROADCAST[payload] = True
                return payload

            def run(payloads):
                return resilient_map("s", chunk, payloads, 2)
            """)
        assert lint_source(
            source, "pool.py", R009, module="repro.perf.pool",
        ) == []
        flagged = lint_source(
            source, "other.py", R009, module="repro.perf.other",
        )
        assert [f.rule_id for f in flagged] == ["R009"]

    def test_runs_are_deterministic(self, tmp_path):
        tree = self._tree(tmp_path)
        first = run_lint([str(tree)], R009)
        second = run_lint([str(tree)], R009)
        assert [f.as_dict() for f in first.findings] == [
            f.as_dict() for f in second.findings
        ]


class TestBroadcastDisciplineAcrossModules:
    def test_imported_heavy_annotation_is_flagged(self, tmp_path):
        write(tmp_path, "world.py", "repro.wfix.world", """\
            class View:
                pass
            """)
        write(tmp_path, "jobs.py", "repro.wfix.jobs", """\
            from repro.wfix.world import View

            def resilient_map(stage, fn, payloads, workers):
                return [fn(p) for p in payloads]

            def chunk(view: View):
                return view

            def run(payloads):
                return resilient_map("stage", chunk, payloads, 2)
            """)
        result = run_lint([str(tmp_path)], R010)
        assert [f.rule_id for f in result.findings] == ["R010"]
        assert "View" in result.findings[0].message

    def test_token_discipline_with_producer_is_quiet(self, tmp_path):
        write(tmp_path, "jobs.py", "repro.wfix.jobs", """\
            def resilient_map(stage, fn, payloads, workers):
                return [fn(p) for p in payloads]

            def broadcast_get(token):
                return token

            def chunk(payload):
                return broadcast_get(payload)

            def run(pool, payloads):
                token = pool.broadcast("view", object())
                return resilient_map(
                    "stage", chunk, [token for _ in payloads], 2,
                )
            """)
        result = run_lint([str(tmp_path)], R010)
        assert result.findings == []


class TestMemoCoherence:
    def test_guard_outside_class_is_flagged(self):
        source = textwrap.dedent("""\
            # repro: memo-guard version=_version fields=_edges
            class Graph:
                def __init__(self):
                    self._version = 0
                    self._edges = {}
            """)
        flagged = lint_source(source, "g.py", R011, module="repro.wfix.g")
        assert [f.rule_id for f in flagged] == ["R011"]
        assert "class body" in flagged[0].message

    def test_transitive_bump_through_helper_is_quiet(self):
        source = textwrap.dedent("""\
            class Graph:
                # repro: memo-guard version=_version fields=_edges
                def __init__(self):
                    self._version = 0
                    self._edges = {}

                def add(self, a, b):
                    self._invalidate()
                    self._edges[a] = b

                def _invalidate(self):
                    self._version += 1
            """)
        assert lint_source(
            source, "g.py", R011, module="repro.wfix.g",
        ) == []


class TestSpecPurity:
    def _spec_source(self, compute_body):
        header = textwrap.dedent("""\
            import random
            import time


            class MetricSpec:
                def __init__(self, name, compute):
                    self.name = name
                    self.compute = compute


            def _compute(spec, ctx):
            """)
        footer = '\n\nSPEC = MetricSpec(name="m", compute=_compute)\n'
        return header + textwrap.indent(compute_body, "    ") + footer

    def test_unseeded_rng_in_call_tree_is_flagged(self):
        source = self._spec_source("return random.random()\n")
        flagged = lint_source(
            source, "spec.py", R012, module="repro.wfix.spec",
        )
        assert [f.rule_id for f in flagged] == ["R012"]
        assert "rng" in flagged[0].message.lower()

    def test_clock_outside_allowlist_is_flagged(self):
        source = self._spec_source("return time.perf_counter()\n")
        flagged = lint_source(
            source, "spec.py", R012, module="repro.wfix.spec",
        )
        assert [f.rule_id for f in flagged] == ["R012"]

    def test_clock_in_obs_module_is_allowed(self):
        source = self._spec_source("return time.perf_counter()\n")
        assert lint_source(
            source, "spec.py", R012, module="repro.obs.spec",
        ) == []

    def test_pure_compute_is_quiet(self):
        source = self._spec_source(
            "rng = random.Random(7)\n"
            "return sorted(v + rng.random() for v in ctx)\n"
        )
        assert lint_source(
            source, "spec.py", R012, module="repro.wfix.spec",
        ) == []


class TestRealTree:
    """The rules against the actual src/repro tree: R009/R010/R012 pass
    clean by design (the perf layer already follows the disciplines the
    rules encode) and R011 exercises the real ASGraph memo-guard."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_lint(
            ["src/repro"],
            LintConfig(select=frozenset(
                {"R009", "R010", "R011", "R012"}
            )),
        )

    def test_src_repro_is_clean(self, result):
        assert result.findings == []
        assert result.files_scanned > 40


class TestMmapStoreIsHeavy:
    def test_r010_flags_mmap_store_fanout(self, tmp_path):
        write(tmp_path, "spill.py", "repro.wfix.spill", """\
            class MmapPathStore:
                pass
            """)
        write(tmp_path, "jobs.py", "repro.wfix.jobs", """\
            from repro.wfix.spill import MmapPathStore

            def resilient_map(stage, fn, payloads, workers):
                return [fn(p) for p in payloads]

            def chunk(store: MmapPathStore):
                return store

            def run(payloads):
                return resilient_map("stage", chunk, payloads, 2)
            """)
        result = run_lint([str(tmp_path)], R010)
        assert [f.rule_id for f in result.findings] == ["R010"]
        assert "MmapPathStore" in result.findings[0].message
