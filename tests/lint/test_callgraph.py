"""The call-graph engine: symbol table, edge resolution (direct /
dynamic / decorator), ``self`` and base-class method resolution, cycle
termination, and reachability that is stable across file orderings.

The fixture package under ``fixtures/callgraph/`` is parsed — never
imported — under synthetic ``cgfix.*`` module names.
"""

import ast
import itertools
from pathlib import Path

import pytest

from repro.lint import ModuleInfo, Program

FIXDIR = Path(__file__).parent / "fixtures" / "callgraph"
NAMES = ("alpha", "beta", "gamma")


def build_program(order=NAMES):
    modules = []
    for name in order:
        path = FIXDIR / f"{name}.py"
        source = path.read_text()
        modules.append(ModuleInfo(
            module=f"cgfix.{name}",
            path=path.as_posix(),
            tree=ast.parse(source),
            lines=source.splitlines(),
        ))
    return Program(modules)


@pytest.fixture(scope="module")
def program():
    return build_program()


class TestSymbolTable:
    def test_functions_and_classes_indexed(self, program):
        assert "cgfix.alpha.entry" in program.functions
        assert "cgfix.beta.Node.run" in program.functions
        assert "cgfix.beta.Node" in program.classes
        assert program.classes["cgfix.beta.Node"].bases == ("BaseNode",)

    def test_by_name_groups_terminal_names(self, program):
        assert program.by_name["compute"] == (
            "cgfix.beta.compute", "cgfix.gamma.compute",
        )

    def test_resolve_name_through_from_import(self, program):
        assert (
            program.resolve_name("cgfix.alpha", "helper")
            == "cgfix.beta.helper"
        )

    def test_resolve_method_walks_bases(self, program):
        assert (
            program.resolve_method("cgfix.beta.Node", "shared")
            == "cgfix.beta.BaseNode.shared"
        )
        assert (
            program.resolve_method("cgfix.beta.Node", "leaf")
            == "cgfix.beta.Node.leaf"
        )
        assert program.resolve_method("cgfix.beta.Node", "absent") is None


class TestEdges:
    def test_cycle_terminates_and_both_sides_reachable(self, program):
        parents = program.reachable(["cgfix.alpha.entry"])
        assert "cgfix.alpha.ping" in parents
        assert "cgfix.alpha.pong" in parents

    def test_cross_module_from_import_edge(self, program):
        parents = program.reachable(["cgfix.alpha.entry"])
        assert "cgfix.beta.helper" in parents
        chain = Program.chain(parents, "cgfix.beta.helper")
        assert chain[0] == "cgfix.alpha.entry"
        assert chain[-1] == "cgfix.beta.helper"

    def test_decorator_edge(self, program):
        edges = program.edges_of("cgfix.alpha.decorated")
        assert any(
            e.kind == "decorator" and e.callee == "cgfix.alpha.trace_deco"
            for e in edges
        )

    def test_self_method_resolution(self, program):
        run_edges = program.edges_of("cgfix.beta.Node.run")
        assert any(
            e.callee == "cgfix.beta.BaseNode.shared" and e.kind == "direct"
            for e in run_edges
        )
        shared_edges = program.edges_of("cgfix.beta.BaseNode.shared")
        assert any(
            e.callee == "cgfix.beta.BaseNode.leaf" for e in shared_edges
        )

    def test_dynamic_dispatch_falls_back_to_all_same_named(self, program):
        edges = program.edges_of("cgfix.beta.dyn_call")
        dynamic = {e.callee for e in edges if e.kind == "dynamic"}
        assert dynamic == {"cgfix.beta.compute", "cgfix.gamma.compute"}

    def test_local_instantiation_types_the_receiver(self, program):
        edges = program.edges_of("cgfix.gamma.local_type_dispatch")
        assert any(
            e.callee == "cgfix.beta.Node.run" and e.kind == "direct"
            for e in edges
        )


class TestReachability:
    def test_entries_map_to_none(self, program):
        parents = program.reachable(["cgfix.alpha.entry"])
        assert parents["cgfix.alpha.entry"] is None

    def test_unreachable_stays_out(self, program):
        parents = program.reachable(["cgfix.alpha.entry"])
        assert "cgfix.alpha.isolated" not in parents

    def test_include_dynamic_false_cuts_fallback_edges(self, program):
        with_dyn = program.reachable(["cgfix.beta.dyn_call"])
        without = program.reachable(
            ["cgfix.beta.dyn_call"], include_dynamic=False,
        )
        assert "cgfix.gamma.compute" in with_dyn
        assert "cgfix.gamma.compute" not in without

    def test_reaches_predicate(self, program):
        assert program.reaches(
            ["cgfix.alpha.entry"], lambda fn: fn.name == "helper",
        )
        assert not program.reaches(
            ["cgfix.alpha.entry"], lambda fn: fn.name == "isolated",
        )

    def test_stable_across_file_orderings(self):
        baseline = None
        for order in itertools.permutations(NAMES):
            program = build_program(order)
            parents = program.reachable(
                ["cgfix.alpha.entry", "cgfix.beta.dyn_call"],
            )
            snapshot = (
                sorted(parents.items()),
                dict(program.by_name),
            )
            if baseline is None:
                baseline = snapshot
            else:
                assert snapshot == baseline
