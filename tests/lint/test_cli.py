"""Both command-line faces of the linter: the standalone ``repro-lint``
entry point and the ``repro-rank lint`` subcommand (which shares the
library engine and emits ``lint.*`` metrics through the obs layer)."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_rank
from repro.lint.cli import main as repro_lint

REPO = Path(__file__).parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def dirty_file(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(score):\n    return score == 0.5\n")
    return target


class TestReproLint:
    def test_list_rules(self, capsys):
        assert repro_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R008"):
            assert rule_id in out
        assert "protects:" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("def f():\n    return 1\n")
        assert repro_lint([str(target), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert repro_lint([str(dirty_file), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R004" in out and "1 finding(s)" in out

    def test_json_format(self, dirty_file, capsys):
        assert repro_lint([str(dirty_file), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "R004"

    def test_sarif_format(self, dirty_file, capsys):
        assert repro_lint(
            [str(dirty_file), "--no-baseline", "--format", "sarif"]
        ) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "R004"

    def test_stale_baseline_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f():\n    return 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "R004", "path": "gone.py", "code": "x == 0.5",
                "justification": "obsolete",
            }],
        }))
        assert repro_lint([str(target), "--baseline", str(baseline)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_select_subset(self, dirty_file):
        assert repro_lint(
            [str(dirty_file), "--no-baseline", "--select", "R001"]
        ) == 0

    def test_unknown_rule_is_usage_error(self, dirty_file):
        with pytest.raises(SystemExit) as excinfo:
            repro_lint([str(dirty_file), "--select", "R999"])
        assert excinfo.value.code == 2

    def test_missing_explicit_baseline_is_usage_error(self, dirty_file):
        assert repro_lint(
            [str(dirty_file), "--baseline", str(dirty_file.parent / "nope.json")]
        ) == 2

    def test_write_baseline_then_clean(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert repro_lint(
            [str(dirty_file), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert baseline.is_file()
        capsys.readouterr()
        assert repro_lint([str(dirty_file), "--baseline", str(baseline)]) == 0
        assert "1 baseline" in capsys.readouterr().out

    def test_max_seconds_guard_trips(self, dirty_file, capsys):
        code = repro_lint(
            [str(dirty_file), "--no-baseline", "--max-seconds", "0.0"]
        )
        assert code == 3
        assert "--max-seconds" in capsys.readouterr().err

    def test_max_seconds_guard_passes_when_generous(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert repro_lint(
            [str(target), "--no-baseline", "--max-seconds", "60"]
        ) == 0

    def test_stats_breakdown(self, dirty_file, capsys):
        repro_lint([str(dirty_file), "--no-baseline", "--stats"])
        out = capsys.readouterr().out
        assert "findings by rule:" in out
        assert "float-equality" in out


class TestReproRankLint:
    def test_subcommand_on_fixture(self, capsys):
        fixture = FIXTURES / "r006_pos.py"
        assert repro_rank(["lint", str(fixture)]) == 1
        assert "R006" in capsys.readouterr().out

    def test_subcommand_json(self, capsys):
        fixture = FIXTURES / "r006_pos.py"
        assert repro_rank(["lint", str(fixture), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["findings"] == 2

    def test_subcommand_sarif(self, capsys):
        fixture = FIXTURES / "r006_pos.py"
        assert repro_rank(["lint", str(fixture), "--sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_subcommand_trace_reports_lint_metrics(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("def f():\n    return 1\n")
        assert repro_rank(["lint", str(target), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "lint stage report" in out
        assert "lint.files" in out
