"""The repo must lint clean against its own rules.

``repro-lint src/ tests/`` (against the checked-in baseline) exiting 0
is an acceptance gate: a PR that introduces an unseeded RNG, a
wall-clock read, hash-ordered output, or a float ``==`` on a score
fails here before any behavioral test notices. The runtime guard keeps
the gate cheap enough to chain into ``make test`` always.
"""

from pathlib import Path

from repro.lint import Baseline, LintConfig, run_lint
from repro.obs.trace import Tracer

REPO = Path(__file__).parents[2]

#: the `make lint` budget; the lint span must come in under this
MAX_SECONDS = 5.0


def _run():
    baseline = Baseline.load(REPO / "lint-baseline.json")
    tracer = Tracer()
    result = run_lint(
        [str(REPO / "src"), str(REPO / "tests")],
        LintConfig(baseline=baseline),
        tracer,
    )
    return result, tracer


def test_repo_is_lint_clean():
    result, _ = _run()
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok(), f"self-lint found violations:\n{rendered}"


def test_baseline_has_no_stale_entries_and_justifications():
    result, _ = _run()
    assert result.stale_baseline == [], (
        "baseline entries no longer match any finding — remove them: "
        f"{result.stale_baseline}"
    )
    for entry in Baseline.load(REPO / "lint-baseline.json").entries:
        assert entry.justification.strip(), (
            f"baseline entry for {entry.path} lacks a justification"
        )


def test_self_lint_covers_the_whole_tree():
    result, _ = _run()
    assert result.files_scanned > 100


def test_self_lint_is_fast_enough_to_gate_every_run():
    _, tracer = _run()
    elapsed = tracer.find("lint")[0].dur_s
    assert elapsed < MAX_SECONDS, (
        f"self-lint took {elapsed:.2f}s — over the {MAX_SECONDS}s "
        "make-lint budget"
    )
