"""The SARIF 2.1.0 reporter: schema validity (against a vendored,
faithful subset of the OASIS sarif-schema-2.1.0 errata01 schema),
rule-index consistency, and how run-level conditions (parse errors,
stale baseline entries) surface as invocation notifications.
"""

import json
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULE_IDS,
    Baseline,
    BaselineEntry,
    LintConfig,
    run_lint,
)
from repro.lint.report import SARIF_SCHEMA_URI, SARIF_VERSION, render_sarif

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
SCHEMA = json.loads((HERE / "sarif-schema-subset.json").read_text())


def validate(log: dict) -> None:
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(instance=log, schema=SCHEMA)


def sarif_for(paths, config=None) -> dict:
    return json.loads(render_sarif(run_lint([str(p) for p in paths], config)))


class TestSchemaValidity:
    def test_clean_run_validates(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("def f():\n    return 1\n")
        log = sarif_for([target])
        validate(log)
        assert log["version"] == SARIF_VERSION
        assert log["$schema"] == SARIF_SCHEMA_URI

    def test_run_with_findings_validates(self):
        log = sarif_for([FIXTURES / "r005_pos.py"])
        validate(log)
        assert log["runs"][0]["results"]

    def test_run_with_parse_error_validates(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        log = sarif_for([target])
        validate(log)


class TestShape:
    @pytest.fixture(scope="class")
    def log(self):
        return sarif_for([FIXTURES / "r005_pos.py"])

    def test_driver_lists_every_catalog_rule(self, log):
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == list(ALL_RULE_IDS)
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]

    def test_rule_index_points_at_its_rule(self, log):
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_result_location_carries_region_and_snippet(self, log):
        result = log["runs"][0]["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("r005_pos.py")
        region = location["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        assert region["snippet"]["text"]

    def test_findings_mark_invocation_unsuccessful(self, log):
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False

    def test_clean_run_is_successful_with_empty_results(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        log = sarif_for([target])
        run = log["runs"][0]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True
        assert run["columnKind"] == "unicodeCodePoints"

    def test_output_is_deterministic(self):
        first = render_sarif(run_lint([str(FIXTURES / "r005_pos.py")]))
        second = render_sarif(run_lint([str(FIXTURES / "r005_pos.py")]))
        assert first == second


class TestRunLevelNotifications:
    def test_parse_error_becomes_notification(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        log = sarif_for([target])
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        texts = [
            n["message"]["text"]
            for n in invocation["toolExecutionNotifications"]
        ]
        assert any("parse error" in text for text in texts)

    def test_stale_baseline_becomes_notification(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def f():\n    return 1\n")
        baseline = Baseline((
            BaselineEntry(
                rule="R004", path="gone.py", code="x == 0.5",
                justification="obsolete",
            ),
        ))
        log = sarif_for([target], LintConfig(baseline=baseline))
        validate(log)
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        texts = [
            n["message"]["text"]
            for n in invocation["toolExecutionNotifications"]
        ]
        assert any("stale baseline" in text for text in texts)
