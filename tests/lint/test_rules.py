"""The fixture corpus: every rule fires on its positive snippet and
stays quiet on its negative one — and on every *other* rule's snippets,
so the corpus doubles as a cross-rule false-positive check."""

from pathlib import Path

import pytest

from repro.lint import ALL_RULE_IDS, lint_file

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
class TestFixtureCorpus:
    def test_positive_fires(self, rule_id):
        findings = lint_file(FIXTURES / f"{rule_id.lower()}_pos.py")
        assert findings, f"{rule_id} positive fixture produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}, (
            f"{rule_id} positive fixture leaked other rules: {findings}"
        )

    def test_negative_is_quiet(self, rule_id):
        findings = lint_file(FIXTURES / f"{rule_id.lower()}_neg.py")
        assert findings == [], (
            f"{rule_id} negative fixture fired: {findings}"
        )


def test_corpus_is_complete():
    """One pos and one neg fixture per catalog rule, nothing extra."""
    stems = {path.stem for path in FIXTURES.glob("*.py")}
    expected = {
        f"{rule_id.lower()}_{kind}"
        for rule_id in ALL_RULE_IDS
        for kind in ("pos", "neg")
    }
    assert stems == expected


def test_positive_findings_carry_location_and_code():
    findings = lint_file(FIXTURES / "r005_pos.py")
    for finding in findings:
        assert finding.line > 0 and finding.col > 0
        assert finding.code
        assert finding.render().startswith(finding.path)
