"""Engine semantics: module scoping, file discovery, suppression
(noqa + baseline), staleness, and rule selection."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    BaselineEntry,
    LintConfig,
    lint_source,
    module_name,
    run_lint,
)
from repro.lint.suppress import suppressed_rules

REPO = Path(__file__).parents[2]


class TestModuleName:
    def test_src_layout(self):
        assert module_name(Path("src/repro/perf/cache.py")) == "repro.perf.cache"

    def test_src_layout_absolute(self):
        path = Path("/anywhere/repo/src/repro/core/cone.py")
        assert module_name(path) == "repro.core.cone"

    def test_package_init_maps_to_package(self):
        assert module_name(Path("src/repro/lint/__init__.py")) == "repro.lint"

    def test_tests_layout_keeps_tests_anchor(self):
        path = Path("tests/obs/test_trace.py")
        assert module_name(path) == "tests.obs.test_trace"

    def test_directive_override_wins(self):
        source = "# repro-lint: module=repro.perf.fake\nx = 1\n"
        assert module_name(Path("anything.py"), source) == "repro.perf.fake"

    def test_fallback_is_stem(self):
        assert module_name(Path("scratch.py")) == "scratch"


class TestModuleScoping:
    def test_r002_exempts_repro_obs(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(source, "x.py", module="repro.obs.trace") == []
        flagged = lint_source(source, "x.py", module="repro.core.cone")
        assert [f.rule_id for f in flagged] == ["R002"]

    def test_r007_only_inside_repro_perf(self):
        source = (
            "class View:\n    pass\n\n"
            "def f(view: View):\n    view.records.append(1)\n"
        )
        assert lint_source(source, "x.py", module="repro.core.views") == []
        flagged = lint_source(source, "x.py", module="repro.perf.index")
        assert [f.rule_id for f in flagged] == ["R007"]


class TestNoqa:
    def test_directive_parsing(self):
        assert suppressed_rules("x = 1") is None
        assert "*" in suppressed_rules("x = 1  # repro: noqa")
        assert suppressed_rules("x = 1  # repro: noqa[R004]") == {"R004"}
        assert suppressed_rules("# repro: noqa[R001, R003]") == {"R001", "R003"}

    def test_inline_noqa_suppresses_only_listed_rule(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(s, t):\n"
            "    if s == 0.5:  # repro: noqa[R004]\n"
            "        return 1\n"
            "    return t == 0.5\n"
        )
        result = run_lint([str(target)])
        assert result.suppressed_noqa == 1
        assert [f.rule_id for f in result.findings] == ["R004"]
        assert result.findings[0].line == 4

    def test_blanket_noqa_suppresses_everything(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(b=[]):  # repro: noqa\n    return b\n")
        result = run_lint([str(target)])
        assert result.ok() and result.suppressed_noqa == 1


class TestBaseline:
    def _finding_file(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(score):\n    return score == 0.5\n")
        return target

    def test_baseline_suppresses_matching_finding(self, tmp_path):
        target = self._finding_file(tmp_path)
        baseline = Baseline((
            BaselineEntry(
                rule="R004", path="mod.py",
                code="return score == 0.5", justification="test",
            ),
        ))
        result = run_lint([str(target)], LintConfig(baseline=baseline))
        assert result.ok()
        assert result.suppressed_baseline == 1
        assert result.stale_baseline == []

    def test_baseline_matches_on_code_not_line(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "# a comment that moves the line number\n\n"
            "def f(score):\n    return score == 0.5\n"
        )
        baseline = Baseline((
            BaselineEntry(
                rule="R004", path="mod.py",
                code="return score == 0.5", justification="test",
            ),
        ))
        result = run_lint([str(target)], LintConfig(baseline=baseline))
        assert result.ok() and result.suppressed_baseline == 1

    def test_stale_entries_are_fatal(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def f():\n    return 1\n")
        baseline = Baseline((
            BaselineEntry(
                rule="R004", path="gone.py", code="x == 0.5",
                justification="obsolete",
            ),
        ))
        result = run_lint([str(target)], LintConfig(baseline=baseline))
        assert not result.ok()
        assert result.findings == []
        assert len(result.stale_baseline) == 1

    def test_wrong_rule_or_code_does_not_match(self, tmp_path):
        target = self._finding_file(tmp_path)
        baseline = Baseline((
            BaselineEntry(
                rule="R006", path="mod.py",
                code="return score == 0.5", justification="wrong rule",
            ),
        ))
        result = run_lint([str(target)], LintConfig(baseline=baseline))
        assert not result.ok()
        assert len(result.stale_baseline) == 1

    def test_load_save_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline((
            BaselineEntry("R001", "a.py", "random.Random()", "why"),
        ))
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == original.entries
        assert json.loads(path.read_text())["version"] == 1


class TestDiscoveryAndSelection:
    def test_fixture_directories_are_excluded_from_expansion(self):
        result = run_lint([str(REPO / "tests" / "lint")])
        paths = {Path(f.path).name for f in result.findings}
        assert not any(name.endswith("_pos.py") for name in paths)

    def test_explicit_fixture_file_is_linted(self):
        fixture = REPO / "tests" / "lint" / "fixtures" / "r005_pos.py"
        result = run_lint([str(fixture)])
        assert [f.rule_id for f in result.findings] == ["R005", "R005"]

    def test_select_and_ignore(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(score, b=[]):\n    return score == 0.5\n"
        )
        both = run_lint([str(target)])
        assert {f.rule_id for f in both.findings} == {"R004", "R005"}
        only = run_lint([str(target)], LintConfig(select=frozenset({"R005"})))
        assert {f.rule_id for f in only.findings} == {"R005"}
        without = run_lint([str(target)], LintConfig(ignore=frozenset({"R005"})))
        assert {f.rule_id for f in without.findings} == {"R004"}

    def test_parse_error_is_collected_not_raised(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        result = run_lint([str(target)])
        assert not result.ok()
        assert len(result.parse_errors) == 1

    def test_findings_sorted_deterministically(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def g(b=[]):\n    return b\n\n"
            "def f(score):\n    return score == 0.5\n"
        )
        result = run_lint([str(target)])
        assert [f.line for f in result.findings] == sorted(
            f.line for f in result.findings
        )


class TestStats:
    def test_stats_shape(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(score):\n    return score == 0.5\n")
        result = run_lint([str(target)])
        stats = result.stats()
        assert stats["files_scanned"] == 1
        assert stats["findings"] == 1
        assert stats["findings_by_rule"]["R004"] == 1
        assert stats["findings_by_rule"]["R001"] == 0


class TestMmapStoreProtected:
    def test_r007_covers_the_spill_store(self):
        source = (
            "class MmapPathStore:\n    pass\n\n"
            "def f(store: MmapPathStore):\n    store.tokens.append(1)\n"
        )
        flagged = lint_source(source, "x.py", module="repro.perf.spill")
        assert [f.rule_id for f in flagged] == ["R007"]
