"""Golden pin: all 10 metrics on the medium world, value-exact.

``tests/golden/medium_rankings.json`` was generated *before* the metric
registry refactor (same generator seed, same config) and is the
behaviour-preservation contract for it: any refactor of metric dispatch
— the registry, the AHC cache routing, the view plumbing — must keep
every ranking bit-identical to these payloads. Regenerate only for an
intentional value change, never to make a refactor pass.
"""

import json
from pathlib import Path

import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.resilience.checkpoint import ranking_to_payload
from repro.topology.generator import generate_world

GOLDEN = Path(__file__).parent.parent / "golden" / "medium_rankings.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def result(golden):
    world = generate_world(
        seed=golden["world"]["generator_seed"], name=golden["world"]["name"],
    )
    return run_pipeline(world, PipelineConfig(seed=golden["config"]["seed"]))


def _units(golden):
    for key in sorted(golden["rankings"]):
        metric, _, country = key.partition(":")
        yield metric, None if country == "<global>" else country


def test_golden_covers_all_ten_metrics(golden):
    metrics = {key.partition(":")[0] for key in golden["rankings"]}
    assert metrics == {
        "CCI", "CCN", "AHI", "AHN", "AHC", "CTI", "CCO", "AHO", "CCG", "AHG",
    }


@pytest.mark.parametrize(
    "metric,country",
    [
        ("CCI", "US"), ("CCN", "US"), ("AHI", "US"), ("AHN", "US"),
        ("AHC", "US"), ("CTI", "US"), ("CCO", "US"), ("AHO", "US"),
        ("CCG", None), ("AHG", None),
    ],
)
def test_ranking_matches_golden(golden, result, metric, country):
    key = f"{metric}:{country if country is not None else '<global>'}"
    expected = golden["rankings"][key]
    actual = ranking_to_payload(result.ranking(metric, country))
    assert actual == expected
