"""End-to-end observability: instrumented counters must agree exactly
with the pipeline's own reports, and a traced run must cover every
Figure-6 stage with schema-valid events."""

import pytest

from repro.cli import run_traced
from repro.core.sanitize import REJECT_CATEGORIES
from repro.obs.export import to_jsonl, trace_events, validate_jsonl


@pytest.fixture(scope="module")
def traced():
    """One traced small-world run with all four metric families."""
    result, tracer = run_traced("small", seed=0, country="AU")
    yield result, tracer
    tracer.close()


class TestCountersMatchReports:
    def test_drop_counters_equal_filter_report(self, traced):
        result, tracer = traced
        report = result.paths.report
        counters = tracer.metrics.counters()
        for category in REJECT_CATEGORIES:
            assert counters[f"sanitize.dropped.{category}"] == (
                report.rejected[category]
            ), category
        assert counters["sanitize.input"] == report.total
        assert counters["sanitize.accepted"] == report.accepted

    def test_geo_counters_equal_geolocation_outcome(self, traced):
        result, tracer = traced
        geo = result.prefix_geo
        counters = tracer.metrics.counters()
        assert counters["geo.prefixes.accepted"] == len(geo.country_of)
        assert counters["geo.prefixes.covered"] == len(geo.covered)
        assert counters["geo.prefixes.no_consensus"] == len(geo.no_consensus)
        gauges = tracer.metrics.gauges()
        assert gauges["geo.addresses.owned"] == sum(geo.owned_addresses.values())

    def test_geo_counters_equal_filtering_stats_totals(self, traced):
        """The per-country Tables 13–14 stats must sum back to the
        instrumented accept/reject counters (a no-consensus prefix is
        attributed once per plurality country in the stats)."""
        result, tracer = traced
        geo = result.prefix_geo
        counters = tracer.metrics.counters()
        stats = geo.stats_by_country()
        accepted_from_stats = sum(
            s.total_prefixes - s.filtered_prefixes for s in stats.values()
        )
        assert counters["geo.prefixes.accepted"] == accepted_from_stats
        filtered_pairs = sum(
            len(geo.plurality_of.get(prefix, ())) for prefix in geo.no_consensus
        )
        assert sum(s.filtered_prefixes for s in stats.values()) == filtered_pairs
        # Pairs collapse back to the counter when no prefix ties between
        # countries; either way the counter is the authoritative count.
        assert counters["geo.prefixes.no_consensus"] == len(geo.no_consensus)
        assert filtered_pairs >= counters["geo.prefixes.no_consensus"]

    def test_ribs_gauges_match_series(self, traced):
        result, tracer = traced
        gauges = tracer.metrics.gauges()
        assert gauges["ribs.vps"] == len(result.ribs.vps)
        assert gauges["ribs.prefixes"] == len(result.ribs.prefix_table)
        assert gauges["ribs.overrides"] == len(result.ribs.overrides)


class TestStageCoverage:
    REQUIRED = {
        "ribs", "sanitize", "geolocate", "views", "cone", "hegemony",
        "ahc", "cti", "ranking", "propagate.plane", "pipeline",
    }

    def test_all_pipeline_stages_present(self, traced):
        _, tracer = traced
        names = set(tracer.stage_names())
        missing = self.REQUIRED - names
        assert not missing, f"missing stages: {sorted(missing)}"
        assert len(self.REQUIRED) >= 8

    def test_jsonl_schema_valid(self, traced):
        _, tracer = traced
        assert validate_jsonl(to_jsonl(tracer)) == []

    def test_span_volumes_nonnegative_and_linked(self, traced):
        _, tracer = traced
        events = trace_events(tracer)
        spans = [e for e in events if e["type"] == "span"]
        ids = {e["id"] for e in spans}
        for event in spans:
            assert event["dur_s"] >= 0.0
            assert event["parent"] is None or event["parent"] in ids


class TestTraceKnob:
    def test_untraced_result_has_no_trace(self):
        from repro.core.pipeline import PipelineConfig, run_pipeline
        from repro.cli import build_world

        result = run_pipeline(build_world("small", 0), PipelineConfig(seed=0))
        assert result.trace is None

    def test_traced_result_exposes_tracer(self, traced):
        result, tracer = traced
        assert result.trace is tracer

    def test_invalid_trace_value_rejected(self):
        from repro.core.pipeline import PipelineConfig

        with pytest.raises(ValueError):
            PipelineConfig(trace="yes")
