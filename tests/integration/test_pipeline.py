"""End-to-end pipeline tests on the small world (Figure 6)."""

import pytest

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline, small_profiles
from repro.bgp.rib import RibGenerationConfig
from repro.bgp.anomalies import AnomalyConfig


SMALL = GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"))


@pytest.fixture(scope="module")
def result():
    return run_pipeline(generate_world(SMALL, seed=1, name="small"))


class TestFilterReport:
    def test_accounting_closes(self, result):
        report = result.paths.report
        assert report.total == report.accepted + report.rejected_total()
        assert report.total == result.ribs.total_announcements()

    def test_all_injected_loops_rejected(self, result):
        assert result.paths.report.rejected["loop"] > 0
        for record in result.paths.records:
            assert not record.path.has_loop()

    def test_multihop_paths_rejected(self, result):
        assert result.paths.report.rejected["vp_no_location"] > 0
        multihop_ips = {vp.ip for vp in result.vp_geo.unlocated()}
        for record in result.paths.records:
            assert record.vp.ip not in multihop_ips

    def test_route_servers_stripped(self, result):
        route_servers = result.world.graph.route_servers()
        for record in result.paths.records:
            assert not route_servers & set(record.path.asns)

    def test_no_prepending_left(self, result):
        for record in result.paths.records:
            assert record.path.collapse_prepending() == record.path


class TestViewsAndRankings:
    def test_views_partition(self, result):
        paths = result.paths
        for country in ("AU", "US"):
            national = result.view("national", country)
            international = result.view("international", country)
            to_country = [
                r for r in paths.records if r.prefix_country == country
            ]
            assert len(national) + len(international) == len(to_country)

    def test_view_memoised(self, result):
        assert result.view("global") is result.view("global")

    def test_ranking_memoised(self, result):
        assert result.ranking("AHN", "AU") is result.ranking("AHN", "AU")

    def test_country_required(self, result):
        with pytest.raises(ValueError):
            result.ranking("CCI")

    def test_unknown_metric(self, result):
        with pytest.raises(ValueError):
            result.ranking("XXX", "AU")

    def test_unknown_view_kind(self, result):
        with pytest.raises(ValueError):
            result.view("sideways", "AU")

    def test_config_rejects_out_of_range_trim(self):
        with pytest.raises(ValueError, match="trim out of range"):
            PipelineConfig(trim=0.5)
        with pytest.raises(ValueError, match="trim out of range"):
            PipelineConfig(trim=-0.1)

    def test_all_metrics_compute(self, result):
        for metric in ("CCI", "CCN", "AHI", "AHN", "AHC", "CTI"):
            assert len(result.ranking(metric, "AU")) > 0
        for metric in ("CCG", "AHG"):
            assert len(result.ranking(metric)) > 0

    def test_hegemony_shares_bounded(self, result):
        for entry in result.ranking("AHI", "AU").entries:
            assert 0.0 <= entry.value <= 1.0


class TestPaperShapeClaims:
    """The qualitative results the paper's case studies hinge on."""

    def test_incumbent_domestic_tops_ahn(self, result):
        names = {n.name: n.asn for n in result.world.graph.nodes()}
        top = result.ranking("AHN", "AU").top_asns(1)[0]
        assert top == names["Incumbent-Dom-AU"]

    def test_incumbent_international_leads_ahi(self, result):
        names = {n.name: n.asn for n in result.world.graph.nodes()}
        top2 = result.ranking("AHI", "AU").top_asns(2)
        assert names["Incumbent-Intl-AU"] in top2

    def test_dual_as_split_between_views(self, result):
        """The international AS ranks higher in AHI; the domestic AS
        ranks higher in AHN (paper §5.5)."""
        names = {n.name: n.asn for n in result.world.graph.nodes()}
        intl, dom = names["Incumbent-Intl-AU"], names["Incumbent-Dom-AU"]
        ahi = result.ranking("AHI", "AU")
        ahn = result.ranking("AHN", "AU")
        assert ahi.rank_of(intl) < ahi.rank_of(dom) or ahn.rank_of(dom) < ahn.rank_of(intl)
        assert ahn.rank_of(dom) == 1

    def test_multinationals_top_cci(self, result):
        from repro.topology.model import ASRole

        graph = result.world.graph
        top3 = result.ranking("CCI", "AU").top_asns(3)
        assert any(
            graph.node(asn).role is ASRole.CLIQUE
            or graph.node(asn).registry_country != "AU"
            for asn in top3
        )

    def test_cc_inflation_of_large_providers(self, result):
        """A clique provider's cone contains its customer incumbent's
        cone, so its CCI value is at least as large (§5.1)."""
        graph = result.world.graph
        names = {n.name: n.asn for n in graph.nodes()}
        intl = names["Incumbent-Intl-AU"]
        cci = result.ranking("CCI", "AU")
        providers = graph.providers_of(intl)
        assert providers
        best_provider = min(providers, key=lambda p: cci.rank_of(p) or 10**9)
        assert cci.value_of(best_provider) >= cci.value_of(intl) * 0.99


class TestDeterminism:
    def test_same_seed_same_rankings(self):
        a = run_pipeline(generate_world(SMALL, seed=2))
        b = run_pipeline(generate_world(SMALL, seed=2))
        ra = a.ranking("AHI", "AU")
        rb = b.ranking("AHI", "AU")
        assert ra.top_asns(10) == rb.top_asns(10)
        assert [e.value for e in ra.entries] == [e.value for e in rb.entries]


class TestInferredRelationshipsMode:
    def test_cones_computable_with_inferred_labels(self):
        config = PipelineConfig(use_inferred_relationships=True)
        result = run_pipeline(generate_world(SMALL, seed=3), config)
        assert result.inferred is not None
        ranking = result.ranking("CCI", "AU")
        assert len(ranking) > 0


class TestCleanConfig:
    def test_no_anomalies_no_rejects(self):
        config = PipelineConfig(
            rib=RibGenerationConfig(
                churn_rate=0.0, vp_visibility=1.0, anomalies=AnomalyConfig.none()
            ),
            geo_noise_rate=0.0,
            geo_miss_rate=0.0,
        )
        result = run_pipeline(generate_world(SMALL, seed=4), config)
        report = result.paths.report
        assert report.rejected["unstable"] == 0
        assert report.rejected["loop"] == 0
        assert report.rejected["unallocated"] == 0
        assert report.rejected["poisoned"] == 0
        # Multihop VPs and engineered covered prefixes remain.
        assert report.rejected["vp_no_location"] > 0
        assert report.rejected["covered"] > 0
