"""The paper's headline qualitative results, asserted end-to-end on the
curated world (Tables 5–12, §5–§6)."""

import pytest

from repro import PipelineConfig, run_pipeline
from repro.analysis.case_studies import case_study_table, global_comparison_table
from repro.analysis.regions import continental_dominance, country_hegemony_over
from repro.analysis.temporal import compare_snapshots
from repro.topology.paper_world import SNAPSHOT_2021, SNAPSHOT_2023, build_paper_world


@pytest.fixture(scope="module")
def result():
    return run_pipeline(build_paper_world(SNAPSHOT_2021))


@pytest.fixture(scope="module")
def result_2023():
    return run_pipeline(build_paper_world(SNAPSHOT_2023))


class TestAustraliaTable5:
    def test_cci_arelion_then_vocus(self, result):
        top = result.ranking("CCI", "AU").top_asns(2)
        assert top == [1299, 4826]

    def test_ccn_vocus_then_telstra(self, result):
        top = result.ranking("CCN", "AU").top_asns(2)
        assert top == [4826, 1221]

    def test_ahi_led_by_telstra_family(self, result):
        ahi = result.ranking("AHI", "AU")
        assert ahi.top_asns(1)[0] in (1221, 4637)
        assert {1221, 4637} <= set(ahi.top_asns(4))

    def test_ahn_telstra_then_vocus(self, result):
        top = result.ranking("AHN", "AU").top_asns(2)
        assert top == [1221, 4826]

    def test_telstra_global_absent_domestically(self, result):
        """AS 4637's AHN is near zero (paper: rank 140, ~0 %)."""
        ahn = result.ranking("AHN", "AU")
        assert (ahn.share_of(4637) or 0.0) < 0.1

    def test_arelion_cone_inflated_through_vocus(self, result):
        """Arelion's AU cone ⊇ Vocus' (the §5.1 inflation effect)."""
        cci = result.ranking("CCI", "AU")
        assert cci.value_of(1299) >= cci.value_of(4826)

    def test_amazon_visible_to_ahn_not_ahc(self, result):
        """§5.1.2: prefix-level geolocation sees Amazon's AU space,
        registration-based AHC does not."""
        ahn = result.ranking("AHN", "AU")
        ahc = result.ranking("AHC", "AU")
        assert ahn.rank_of(16509) is not None
        assert (ahn.share_of(16509) or 0) > 0.01
        assert (ahc.share_of(16509) or 0.0) < (ahn.share_of(16509) or 0.0)

    def test_ahc_confounds_national_and_international(self, result):
        """Table 9: AHC's top mixes AHI's and AHN's leaders."""
        ahc_top = set(result.ranking("AHC", "AU").top_asns(6))
        ahi_top = set(result.ranking("AHI", "AU").top_asns(2))
        ahn_top = set(result.ranking("AHN", "AU").top_asns(2))
        assert ahi_top & ahc_top
        assert ahn_top & ahc_top


class TestJapanTable6:
    def test_ntt_split(self, result):
        """NTT America (2914) leads internationally; NTT OCN (4713)
        ranks highly nationally (paper §5.2)."""
        assert result.ranking("CCI", "JP").top_asns(1) == [2914]
        assert result.ranking("AHI", "JP").top_asns(1) == [2914]
        ahn = result.ranking("AHN", "JP")
        assert ahn.rank_of(4713) <= 3
        assert ahn.rank_of(2914) > 3

    def test_gtt_high_cci(self, result):
        """GTT 3257 is a top international cone for Japan (paper #2)."""
        assert result.ranking("CCI", "JP").rank_of(3257) <= 3

    def test_domestic_carriers_top_national(self, result):
        ccn_top = result.ranking("CCN", "JP").top_asns(3)
        assert set(ccn_top) <= {2516, 4713, 17676, 9605}
        assert result.ranking("CCN", "JP").top_asns(1) == [2516]


class TestRussiaTable7:
    def test_rostelecom_tops_hegemony(self, result):
        assert result.ranking("AHI", "RU").top_asns(1) == [12389]
        assert result.ranking("AHN", "RU").top_asns(1) == [12389]

    def test_multinationals_top_cci(self, result):
        top2 = result.ranking("CCI", "RU").top_asns(2)
        assert top2 == [3356, 1299]

    def test_mts_visible_nationally(self, result):
        assert result.ranking("AHN", "RU").rank_of(8359) <= 6


class TestUnitedStatesTable8:
    def test_lumen_dominates(self, result):
        assert result.ranking("CCI", "US").top_asns(1) == [3356]
        assert result.ranking("CCN", "US").top_asns(1) == [3356]
        assert result.ranking("AHN", "US").top_asns(1) == [3356]

    def test_hurricane_high_ahi(self, result):
        """Hurricane's liberal peering puts it at the top of AHI."""
        assert result.ranking("AHI", "US").rank_of(6939) <= 3

    def test_att_high_national(self, result):
        assert result.ranking("AHN", "US").rank_of(7018) <= 5


class TestGlobalBaselines:
    def test_ccg_lumen_then_arelion(self, result):
        """Paper: 3356 #1 and 1299 #2 in the global cone ranking."""
        assert result.ranking("CCG").top_asns(2) == [3356, 1299]

    def test_global_ranking_misorders_australia(self, result):
        """§5.1.1: CCG ranks Telstra's international AS above the
        domestically critical ASes."""
        ccg = result.ranking("CCG")
        assert ccg.rank_of(4637) < ccg.rank_of(1221)


class TestRussiaTemporalTable10:
    def test_foreign_dependence_persists(self, result, result_2023):
        for res in (result, result_2023):
            top = res.ranking("CCI", "RU").top_asns(3)
            foreign = [
                asn for asn in top
                if res.world.graph.node(asn).registry_country != "RU"
            ]
            assert len(foreign) >= 2

    def test_gtt_drops_out(self, result, result_2023):
        assert result.ranking("CCI", "RU").rank_of(3257) <= 10
        after = result_2023.ranking("CCI", "RU").rank_of(3257)
        assert after is None or after > 10

    def test_orange_joins(self, result, result_2023):
        before = result.ranking("CCI", "RU").rank_of(5511)
        assert before is None or before > 10
        assert result_2023.ranking("CCI", "RU").rank_of(5511) <= 10

    def test_comparison_object(self, result, result_2023):
        comparison = compare_snapshots(result, result_2023, "RU", "CCI")
        assert 3257 in comparison.departed()
        assert 5511 in comparison.entered()
        assert "CCI" in comparison.render()


class TestTaiwanTable11:
    def test_chunghwa_tops_ahi(self, result):
        assert result.ranking("AHI", "TW").top_asns(1) == [3462]

    def test_china_telecom_drops_out(self, result, result_2023):
        assert result.ranking("CCI", "TW").rank_of(4134) <= 10
        after = result_2023.ranking("CCI", "TW").rank_of(4134)
        assert after is None or after > 10

    def test_taiwan_self_reliance(self, result_2023):
        """§6.2: Taiwanese and U.S. ISPs dominate; no Chinese AS in the
        2023 top-10."""
        graph = result_2023.world.graph
        for asn in result_2023.ranking("AHI", "TW").top_asns(10):
            assert graph.node(asn).registry_country != "CN"


class TestContinentalDominanceTable12:
    @pytest.fixture(scope="class")
    def rows(self, result):
        return continental_dominance(result)

    def test_us_serves_most_countries(self, rows):
        assert rows[0].serving_country == "US"
        assert rows[0].total() >= rows[1].total()

    def test_regional_hegemons_present(self, rows):
        by_country = {row.serving_country: row for row in rows}
        # Australia serves Oceania (Telstra Global is HK-registered, so
        # SG/AU patterns show through Optus/SingTel and AU carriers).
        assert "SE" in by_country  # Arelion
        assert by_country["SE"].by_continent.get("Europe", 0) >= 1
        assert "GB" in by_country  # Vodafone/Liquid
        assert by_country["GB"].by_continent.get("Africa", 0) >= 1
        assert "ES" in by_country  # Telefonica
        assert by_country["ES"].by_continent.get("South America", 0) >= 1

    def test_russia_serves_central_asia(self, result):
        hegemony = country_hegemony_over(result, "RU")
        strong = {code for code, value in hegemony.items() if value > 0.2}
        assert "RU" in strong
        assert {"KZ", "KG", "TM"} & strong
        assert "UA" not in strong
        assert "EE" not in strong


class TestCaseStudyTables:
    def test_table5_layout(self, result):
        rows = case_study_table(result, "AU")
        asns = {row.asn for row in rows}
        assert {1299, 4826, 1221} <= asns
        for row in rows:
            assert set(row.cells) == {"CCI", "AHI", "CCN", "AHN"}

    def test_table9_layout(self, result):
        rows = global_comparison_table(result, "AU")
        assert rows[0].cci_asn == 1299
        assert rows[0].cci_ccg_rank == 2  # Arelion: 2nd-largest global cone
        assert len(rows) == 10
