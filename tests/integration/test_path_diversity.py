"""Tests for multi-plane path diversity."""

import pytest

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline, small_profiles
from repro.bgp.propagation import propagate

SMALL = GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"))


class TestSaltedPropagation:
    def test_salts_change_some_tie_choices(self):
        world = generate_world(SMALL, seed=9)
        origins = world.origins()[:20]
        differing = 0
        for origin in origins:
            a = propagate(world.graph, origin, "hash", salt=0)
            b = propagate(world.graph, origin, "hash", salt=1)
            if any(a[asn].path != b[asn].path for asn in a):
                differing += 1
        assert differing > 0

    def test_salt_irrelevant_for_asn_tiebreak(self):
        world = generate_world(SMALL, seed=9)
        origin = world.origins()[0]
        a = propagate(world.graph, origin, "asn", salt=0)
        b = propagate(world.graph, origin, "asn", salt=7)
        assert {k: r.path for k, r in a.items()} == {k: r.path for k, r in b.items()}

    def test_salted_routes_still_valley_free(self):
        world = generate_world(SMALL, seed=9)
        graph = world.graph
        for origin in world.origins()[:10]:
            routes = propagate(graph, origin, "hash", salt=3)
            for route in routes.values():
                labels = [
                    graph.relationship(a, b)
                    for a, b in zip(route.path, route.path[1:])
                ]
                assert None not in labels
                phase = 0
                for label in labels:
                    if label == "c2p":
                        assert phase == 0
                    elif label == "p2p":
                        assert phase == 0
                        phase = 1
                    else:
                        phase = 2


class TestPipelineDiversity:
    def test_diversity_validated(self):
        with pytest.raises(ValueError):
            PipelineConfig(path_diversity=0)

    def test_multi_plane_pipeline_runs(self):
        world = generate_world(SMALL, seed=9)
        single = run_pipeline(world, PipelineConfig(path_diversity=1))
        multi = run_pipeline(world, PipelineConfig(path_diversity=3))
        assert len(multi.paths) > 0
        # Same record universe (planes change paths, not coverage).
        assert abs(len(multi.paths) - len(single.paths)) < 0.1 * len(single.paths)

    def test_diversity_enriches_observed_links(self):
        """More planes can only reveal more distinct AS adjacencies."""
        world = generate_world(SMALL, seed=9)

        def links(result):
            out = set()
            for record in result.paths.records:
                out.update(record.path.links())
            return out

        single = links(run_pipeline(world, PipelineConfig(path_diversity=1)))
        multi = links(run_pipeline(world, PipelineConfig(path_diversity=4)))
        assert len(multi) >= len(single)

    def test_rankings_stay_sane_under_diversity(self):
        from repro.topology.model import ASRole

        world = generate_world(SMALL, seed=9)
        result = run_pipeline(world, PipelineConfig(path_diversity=3))
        top = result.ranking("AHN", "AU").top_asns(1)[0]
        node = world.graph.node(top)
        assert node.registry_country == "AU"
        assert node.role is ASRole.TRANSIT
