"""Dual-stack (IPv6) pipeline tests.

With ``GeneratorConfig(ipv6=True)`` every IPv4 origination gets a
6to4-style twin, and ``PipelineConfig(family=6)`` ranks the IPv6
universe separately — mirroring how the paper (and IHR) treat the two
families as distinct ranking spaces.
"""

import pytest

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline, small_profiles
from repro.core.ndcg import ndcg
from repro.net.prefix import Prefix

CONFIG = GeneratorConfig(
    profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"), ipv6=True
)


@pytest.fixture(scope="module")
def world():
    return generate_world(CONFIG, seed=4)


@pytest.fixture(scope="module")
def result_v4(world):
    return run_pipeline(world, PipelineConfig(family=4))


@pytest.fixture(scope="module")
def result_v6(world):
    return run_pipeline(world, PipelineConfig(family=6))


class TestDualStackWorld:
    def test_twins_mirror_v4_plan(self, world):
        for node in world.graph.nodes():
            v4 = [r for r in node.prefixes if r.prefix.version == 4]
            v6 = [r for r in node.prefixes if r.prefix.version == 6]
            assert len(v4) == len(v6)
            for record in v6:
                assert record.prefix.value >> 112 == 0x2002

    def test_twin_geography_preserved(self, world):
        for node in world.graph.nodes():
            by_country_v4 = {}
            by_country_v6 = {}
            for record in node.prefixes:
                bucket = by_country_v4 if record.prefix.version == 4 else by_country_v6
                bucket[record.country] = bucket.get(record.country, 0) + 1
            assert by_country_v4 == by_country_v6

    def test_ipv6_off_by_default(self):
        world = generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "SE")),
            seed=4,
        )
        assert all(
            record.prefix.version == 4
            for _, record in world.graph.originations()
        )


class TestFamilySeparation:
    def test_family_validated(self):
        with pytest.raises(ValueError):
            PipelineConfig(family=5)

    def test_v4_pipeline_sees_only_v4(self, result_v4):
        for record in result_v4.paths.records:
            assert record.prefix.version == 4

    def test_v6_pipeline_sees_only_v6(self, result_v6):
        for record in result_v6.paths.records:
            assert record.prefix.version == 6

    def test_v6_address_totals_are_v6_sized(self, result_v6):
        totals = result_v6.country_addresses()
        assert totals
        assert min(totals.values()) > 1 << 60

    def test_mirrored_rankings_agree(self, result_v4, result_v6):
        """The v6 plan mirrors v4, so rankings should nearly coincide —
        the families differ only through family-specific noise draws."""
        for metric, country in (("AHN", "AU"), ("CCI", "AU"), ("AHI", "US")):
            v4 = result_v4.ranking(metric, country)
            v6 = result_v6.ranking(metric, country)
            assert ndcg(v4, v6) > 0.9, (metric, country)

    def test_v6_geolocation_consistent(self, result_v6):
        for prefix, country in list(result_v6.prefix_geo.country_of.items())[:50]:
            assert prefix.version == 6
            assert country in result_v6.world.countries
