"""Integration checks on the generated default world (the one the
stability benchmarks use). Heavier than the small-world tests — one
pipeline run shared across the module."""

import pytest

from repro import PipelineConfig, generate_world, run_pipeline
from repro.analysis.vp_distribution import single_vp_share, vp_census
from repro.topology.model import ASRole
from repro.topology.validator import validate_realism


@pytest.fixture(scope="module")
def world():
    return generate_world(seed=42, name="default")


@pytest.fixture(scope="module")
def result(world):
    return run_pipeline(world, PipelineConfig())


class TestWorldShape:
    def test_realism_envelope(self, world):
        report = validate_realism(world)
        assert report.ok, report.warnings
        assert report.ases > 500
        assert report.clique_size == 12

    def test_vp_plan_matches_table4(self, result):
        rows = vp_census(result, min_vps=7)
        codes = [row.country for row in rows]
        assert codes[:5] == ["NL", "GB", "US", "DE", "BR"]
        by_code = {row.country: row for row in rows}
        for code in ("AU", "JP", "RU", "US"):
            assert by_code[code].vp_ips >= 7

    def test_vp_concentration_healthy(self, result):
        assert single_vp_share(result) > 0.5


class TestPipelineScale:
    def test_filter_report_categories_all_fire(self, result):
        rejected = result.paths.report.rejected
        for category in ("unstable", "unallocated", "loop", "poisoned",
                         "vp_no_location", "covered", "prefix_no_location"):
            assert rejected[category] > 0, category

    def test_case_study_shapes(self, result):
        """The generated world reproduces the same qualitative split
        as the curated one, for every dual-AS case-study country."""
        graph = result.world.graph
        names = {node.name: node.asn for node in graph.nodes()}
        for code in ("AU", "JP", "RU"):
            dom = names.get(f"Incumbent-Dom-{code}")
            intl = names.get(f"Incumbent-Intl-{code}")
            if dom is None or intl is None:
                continue
            ahn = result.ranking("AHN", code)
            ahi = result.ranking("AHI", code)
            assert ahn.rank_of(dom) <= 3, code
            assert ahi.rank_of(intl) <= 3, code
            # the domestic AS matters more domestically than abroad
            assert ahn.rank_of(dom) <= (ahn.rank_of(intl) or 10**9), code

    def test_multinationals_top_global_cone(self, result):
        graph = result.world.graph
        top5 = result.ranking("CCG").top_asns(5)
        clique = graph.clique()
        assert sum(1 for asn in top5 if asn in clique) >= 3

    def test_every_metric_computes_for_every_cased_country(self, result):
        for code in result.countries_with_national_view():
            for metric in ("CCI", "CCN", "AHI", "AHN"):
                assert len(result.ranking(metric, code)) > 0
