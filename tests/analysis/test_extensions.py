"""Tests for the extension analyses: outbound views (§7 future work),
the sovereignty dependency matrix, market concentration, and the
address-weighted AHC variant."""

import pytest

from repro import run_pipeline
from repro.analysis.concentration import (
    concentration,
    country_concentrations,
    render_concentrations,
)
from repro.analysis.sovereignty import (
    dependency_matrix,
    render_dependencies,
)
from repro.core.ahc import ahc_scores
from repro.core.ranking import Ranking
from repro.core.views import outbound_view
from repro.topology.paper_world import build_paper_world


@pytest.fixture(scope="module")
def result():
    return run_pipeline(build_paper_world())


class TestOutboundView:
    def test_disjoint_from_national(self, result):
        outbound = result.view("outbound", "AU")
        national = result.view("national", "AU")
        assert len(outbound) > 0
        outbound_keys = {(r.vp.ip, r.prefix) for r in outbound}
        national_keys = {(r.vp.ip, r.prefix) for r in national}
        assert not outbound_keys & national_keys

    def test_covers_vp_records(self, result):
        outbound = result.view("outbound", "AU")
        national = result.view("national", "AU")
        au_vp_records = sum(
            1 for r in result.paths.records if r.vp_country == "AU"
        )
        assert len(outbound) + len(national) == au_vp_records

    def test_outbound_metrics(self, result):
        """AHO: who carries Australia's paths to the world? The
        Telstra/Vocus internationals and the tier-1s."""
        aho = result.ranking("AHO", "AU")
        assert len(aho) > 0
        top = set(aho.top_asns(6))
        assert top & {4637, 4826, 1299, 3356, 1221}

    def test_function_matches_pipeline(self, result):
        assert outbound_view(result.paths, "AU").records == \
            result.view("outbound", "AU").records


class TestSovereignty:
    @pytest.fixture(scope="class")
    def matrix(self, result):
        return dependency_matrix(result, ["TW", "KZ", "AU", "US", "RU", "UA"])

    def test_taiwan_independent_of_china(self, matrix):
        """The paper's motivating question (§1): Taiwan's dependence on
        Chinese ISPs is negligible."""
        assert matrix.dependency("TW", "CN") < 0.05
        assert matrix.dependency("TW", "US") > 0.2

    def test_central_asia_depends_on_russia(self, matrix):
        assert matrix.dependency("KZ", "RU") > 0.5

    def test_ukraine_does_not(self, matrix):
        assert matrix.dependency("UA", "RU") < 0.1

    def test_self_reliance_bounds(self, matrix):
        for destination in ("TW", "AU", "US"):
            assert 0.0 <= matrix.self_reliance(destination) <= 1.0

    def test_dependents_of_russia(self, matrix):
        dependents = matrix.dependents_of("RU", threshold=0.2)
        assert "KZ" in dependents
        assert "UA" not in dependents

    def test_top_dependencies_exclude_self(self, matrix):
        tops = matrix.top_dependencies("AU", k=3)
        assert all(serving != "AU" for serving, _ in tops)
        values = [value for _, value in tops]
        assert values == sorted(values, reverse=True)

    def test_render(self, matrix):
        text = render_dependencies(matrix, "TW")
        assert "TW" in text and "self-reliance" in text

    def test_unknown_country_is_zero(self, matrix):
        assert matrix.dependency("TW", "ZZ") == 0.0
        assert matrix.self_reliance("ZZ") == 0.0


class TestConcentration:
    def test_us_least_concentrated(self, result):
        """§5.4: the U.S. market is observably less concentrated."""
        reports = country_concentrations(result, ("US", "AU", "RU", "JP"))
        assert reports["US"].hhi == min(r.hhi for r in reports.values())

    def test_hhi_bounds(self, result):
        report = concentration(result.ranking("AHN", "AU"))
        assert 0.0 < report.hhi <= 10000.0
        assert 0.0 < report.cr1 <= report.cr4 <= 1.0 + 1e-9

    def test_monopoly_hhi(self):
        ranking = Ranking.from_scores("m", {1: 1.0}, shares={1: 1.0})
        report = concentration(ranking)
        assert report.hhi == pytest.approx(10000.0)
        assert report.band() == "highly concentrated"

    def test_uniform_market_unconcentrated(self):
        scores = {asn: 1.0 for asn in range(1, 21)}
        ranking = Ranking.from_scores("m", scores, shares={a: 0.05 for a in scores})
        report = concentration(ranking)
        assert report.hhi == pytest.approx(500.0)
        assert report.band() == "unconcentrated"

    def test_empty_ranking(self):
        report = concentration(Ranking.from_scores("m", {}))
        assert report.hhi == 0.0 and report.contributors == 0

    def test_render(self, result):
        text = render_concentrations(country_concentrations(result, ("US", "AU")))
        assert "HHI" in text


class TestAhcWeighting:
    def test_address_weighting_reweights(self, result):
        origins = result.world.graph.by_registry_country("AU")
        equal = ahc_scores(result.paths.records, origins, weighting="as_count")
        weighted = ahc_scores(result.paths.records, origins, weighting="addresses")
        assert equal and weighted
        # The transit AS above the biggest eyeball (Telstra's 4637)
        # gains relative weight under address weighting.
        assert weighted.get(4637, 0.0) >= equal.get(4637, 0.0) - 1e-9

    def test_unknown_weighting_rejected(self, result):
        with pytest.raises(ValueError):
            ahc_scores(result.paths.records, [1221], weighting="users")
