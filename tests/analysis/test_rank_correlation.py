"""Tests for rank-agreement statistics."""

import pytest

from repro import run_pipeline
from repro.analysis.rank_correlation import (
    agreement,
    kendall_tau,
    metric_matrix,
    rank_biased_overlap,
    render_matrix,
    spearman_rho,
)
from repro.core.ranking import Ranking
from repro.topology.paper_world import build_paper_world


def ranking(metric, *asns):
    return Ranking.from_scores(
        metric, {asn: float(len(asns) - i) for i, asn in enumerate(asns)}
    )


class TestKendall:
    def test_identical(self):
        assert kendall_tau([(1, 1), (2, 2), (3, 3)]) == 1.0

    def test_reversed(self):
        assert kendall_tau([(1, 3), (2, 2), (3, 1)]) == -1.0

    def test_small(self):
        assert kendall_tau([(1, 1)]) == 1.0
        assert kendall_tau([]) == 1.0


class TestSpearman:
    def test_identical(self):
        assert spearman_rho([(1, 1), (2, 2), (3, 3)]) == pytest.approx(1.0)

    def test_reversed(self):
        assert spearman_rho([(1, 3), (2, 2), (3, 1)]) == pytest.approx(-1.0)

    def test_constant_side(self):
        assert spearman_rho([(1, 5), (2, 5)]) == 1.0


class TestRBO:
    def test_identical_lists(self):
        a = ranking("a", 1, 2, 3, 4)
        assert rank_biased_overlap(a, a) == pytest.approx(1.0)

    def test_disjoint_lists(self):
        a = ranking("a", 1, 2, 3)
        b = ranking("b", 7, 8, 9)
        assert rank_biased_overlap(a, b) == pytest.approx(0.0)

    def test_top_weighted(self):
        base = ranking("a", 1, 2, 3, 4, 5)
        top_swap = ranking("b", 2, 1, 3, 4, 5)       # disagreement at top
        tail_swap = ranking("c", 1, 2, 3, 5, 4)      # disagreement at tail
        assert rank_biased_overlap(base, tail_swap) > rank_biased_overlap(
            base, top_swap
        )

    def test_p_validated(self):
        a = ranking("a", 1)
        with pytest.raises(ValueError):
            rank_biased_overlap(a, a, p=1.0)

    def test_empty(self):
        empty = Ranking.from_scores("e", {})
        assert rank_biased_overlap(empty, empty) == 0.0


class TestAgreement:
    def test_summary_fields(self):
        a = ranking("a", 1, 2, 3)
        b = ranking("b", 1, 3, 2)
        result = agreement(a, b)
        assert result.shared == 3
        assert -1.0 <= result.kendall_tau <= 1.0
        assert 0.0 <= result.rbo <= 1.0


class TestMetricMatrix:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pipeline(build_paper_world())

    def test_families_cohere_more_than_cross(self, result):
        """§3.3's claim quantified: same-family metric pairs agree more
        than the cone-vs-hegemony pairs, on average."""
        matrix = metric_matrix(result, "AU")
        same_family = [matrix[("CCI", "CCN")].rbo, matrix[("AHI", "AHN")].rbo]
        cross_family = [
            matrix[("CCI", "AHI")].rbo,
            matrix[("CCN", "AHN")].rbo,
        ]
        assert sum(same_family) / 2 > sum(cross_family) / 2 - 0.15

    def test_matrix_covers_all_pairs(self, result):
        matrix = metric_matrix(result, "JP")
        assert len(matrix) == 6

    def test_render(self, result):
        text = render_matrix(metric_matrix(result, "AU"))
        assert "tau" in text and "RBO" in text
