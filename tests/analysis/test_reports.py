"""Tests for the markdown country reports."""

import pytest

from repro import run_pipeline
from repro.analysis.reports import country_report
from repro.analysis.sovereignty import dependency_matrix
from repro.topology.paper_world import build_paper_world


@pytest.fixture(scope="module")
def result():
    return run_pipeline(build_paper_world())


class TestCountryReport:
    def test_case_study_report_sections(self, result):
        report = country_report(result, "AU")
        text = report.markdown
        assert "# Internet profile: AU" in text
        assert "## Rankings" in text
        assert "## Foreign dependence" in text
        assert "## Market concentration" in text
        assert "Telstra" in text and "Vocus" in text
        assert "CCN" in text  # national views available (>= 7 VPs)

    def test_country_without_vps_skips_national(self, result):
        report = country_report(result, "KZ")
        assert "national views" in report.markdown.lower()
        assert "| CCN | 1 |" not in report.markdown
        assert "| CCI | 1 |" in report.markdown

    def test_matrix_reused(self, result):
        matrix = dependency_matrix(result, ["AU", "TW"])
        report = country_report(result, "TW", matrix=matrix)
        assert report.matrix is matrix
        assert "self-reliance" in report.markdown.lower()

    def test_k_limits_rows(self, result):
        short = country_report(result, "AU", k=2)
        # Two ranking rows ("| CCI | <rank> |"); the cross-metric table
        # header also mentions CCI but in a different cell pattern.
        ranking_rows = [
            line for line in short.markdown.splitlines()
            if line.startswith("| CCI | ")
        ]
        assert len(ranking_rows) == 2
