"""Edge-case coverage for the Table-10/11 temporal comparison.

``compare_snapshots`` duck-types on ``result.ranking(...)`` and
``result.world.name``, so these tests drive it with stub results built
straight from scores — no pipeline runs needed.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.temporal import compare_snapshots
from repro.core.ranking import Ranking


class StubResult:
    def __init__(self, name, scores, shares=None):
        self.world = SimpleNamespace(name=name)
        self._scores = scores
        self._shares = shares if shares is not None else scores

    def ranking(self, metric, country):
        return Ranking.from_scores(
            metric, self._scores, shares=self._shares, country=country,
        )


class TestNewEntrant:
    def test_rank_delta_none_for_as_only_in_later_snapshot(self):
        before = StubResult("d0", {10: 3.0, 20: 2.0})
        after = StubResult("d1", {10: 3.0, 99: 2.5, 20: 2.0})
        comparison = compare_snapshots(before, after, "RU", "CCI", k=3)
        new_row = next(r for r in comparison.rows if r.after_asn == 99)
        assert new_row.rank_delta is None
        assert comparison.entered() == [99]
        assert "new" in comparison.render()

    def test_new_entrant_share_delta_is_full_share(self):
        before = StubResult("d0", {10: 3.0})
        after = StubResult("d1", {10: 3.0, 99: 2.0})
        comparison = compare_snapshots(before, after, "RU", "CCI", k=2)
        new_row = next(r for r in comparison.rows if r.after_asn == 99)
        assert new_row.share_delta == pytest.approx(2.0)


class TestExitingTopK:
    def test_as_exiting_top_k_is_departed(self):
        before = StubResult("d0", {10: 3.0, 20: 2.0, 30: 1.0})
        after = StubResult("d1", {10: 3.0, 20: 2.0, 40: 1.0})
        comparison = compare_snapshots(before, after, "RU", "CCI", k=3)
        assert comparison.departed() == [30]
        assert comparison.entered() == [40]

    def test_demoted_below_k_still_counts_as_departed(self):
        # 30 is still ranked after, just below the top-k window
        before = StubResult("d0", {10: 3.0, 30: 2.0})
        after = StubResult("d1", {10: 3.0, 40: 2.0, 30: 0.5})
        comparison = compare_snapshots(before, after, "RU", "CCI", k=2)
        assert comparison.departed() == [30]


class TestTiedShares:
    def test_ties_break_on_ascending_asn_both_sides(self):
        scores = {30: 2.0, 10: 2.0, 20: 2.0}
        before = StubResult("d0", scores)
        after = StubResult("d1", dict(scores))
        comparison = compare_snapshots(before, after, "RU", "CCI", k=3)
        assert [r.before_asn for r in comparison.rows] == [10, 20, 30]
        assert [r.after_asn for r in comparison.rows] == [10, 20, 30]
        for row in comparison.rows:
            assert row.rank_delta == 0
            assert row.share_delta == pytest.approx(0.0)


class TestEmptyEarlierRanking:
    def test_all_rows_are_new(self):
        before = StubResult("d0", {})
        after = StubResult("d1", {10: 2.0, 20: 1.0})
        comparison = compare_snapshots(before, after, "RU", "CCI", k=3)
        assert len(comparison.rows) == 2
        for row in comparison.rows:
            assert row.before_asn is None
            assert row.rank_delta is None
            assert row.before_share == 0.0
        assert comparison.entered() == [10, 20]
        assert comparison.departed() == []

    def test_both_empty_renders_header_only(self):
        before = StubResult("d0", {})
        after = StubResult("d1", {})
        comparison = compare_snapshots(before, after, "RU", "CCI")
        assert comparison.rows == ()
        assert "d0" in comparison.render()


class TestLabels:
    def test_labels_default_to_world_names(self):
        before = StubResult("w2021", {1: 1.0})
        after = StubResult("w2023", {1: 1.0})
        comparison = compare_snapshots(before, after, "RU", "CCI")
        assert comparison.before_label == "w2021"
        assert comparison.after_label == "w2023"
