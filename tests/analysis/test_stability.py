"""Tests for the §4 downsampling stability machinery."""

import pytest

from repro import GeneratorConfig, generate_world, run_pipeline, small_profiles
from repro.analysis.stability import (
    StabilityCurve,
    StabilityPoint,
    international_stability,
    national_stability,
    stability_curve,
)


@pytest.fixture(scope="module")
def result():
    world = generate_world(
        GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
        seed=6,
    )
    return run_pipeline(world)


class TestCurve:
    def test_full_sample_scores_one(self, result):
        view = result.view("national", "NL")
        total = len(view.vps())
        curve = stability_curve(result, "AHN", view, sizes=[total], trials=2)
        assert curve.points[-1].mean_ndcg == pytest.approx(1.0)

    def test_ndcg_grows_with_sample_size(self, result):
        curve = international_stability(
            result, "AU", "AHI", sizes=[2, 8, 20], trials=6, seed=1
        )
        rows = curve.as_rows()
        assert rows[0][1] <= rows[-1][1] + 0.05  # monotone-ish with slack

    def test_bounds(self, result):
        curve = international_stability(
            result, "AU", "CCI", sizes=[1, 3, 6], trials=4, seed=2
        )
        for _, mean, std in curve.as_rows():
            assert 0.0 <= mean <= 1.0 + 1e-9
            assert std >= 0.0

    def test_sizes_outside_range_skipped(self, result):
        curve = national_stability(result, "NL", "CCN", sizes=[0, 2, 10**6], trials=2)
        assert [point.sample_size for point in curve.points] == [2]

    def test_trials_validated(self, result):
        view = result.view("national", "NL")
        with pytest.raises(ValueError):
            stability_curve(result, "AHN", view, sizes=[2], trials=0)

    def test_unknown_metric(self, result):
        view = result.view("national", "NL")
        with pytest.raises(ValueError):
            stability_curve(result, "XXN", view, sizes=[2], trials=1)

    def test_deterministic_given_seed(self, result):
        a = international_stability(result, "AU", "AHI", sizes=[4], trials=3, seed=9)
        b = international_stability(result, "AU", "AHI", sizes=[4], trials=3, seed=9)
        assert a.as_rows() == b.as_rows()


class TestMinVps:
    def test_min_vps_threshold(self):
        curve = StabilityCurve(
            metric="AHN", country="NL", total_vps=10,
            points=(
                StabilityPoint(2, 0.5, 0.1, 5),
                StabilityPoint(4, 0.85, 0.05, 5),
                StabilityPoint(6, 0.92, 0.02, 5),
                StabilityPoint(10, 1.0, 0.0, 5),
            ),
        )
        assert curve.min_vps_for(0.9) == 6
        assert curve.min_vps_for(0.8) == 4
        assert curve.min_vps_for(1.01) is None

    def test_min_vps_requires_sustained_quality(self):
        """A dip after an early lucky sample resets the requirement."""
        curve = StabilityCurve(
            metric="CCN", country="NL", total_vps=10,
            points=(
                StabilityPoint(2, 0.95, 0.0, 5),
                StabilityPoint(4, 0.7, 0.0, 5),
                StabilityPoint(6, 0.92, 0.0, 5),
            ),
        )
        assert curve.min_vps_for(0.9) == 6
