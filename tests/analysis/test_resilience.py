"""Tests for what-if disconnection analysis."""

import pytest

from repro.analysis.resilience import (
    ases_registered_in,
    disconnection_impact,
)
from repro.topology.model import ASGraph, ASRole
from repro.topology.paper_world import build_paper_world
from repro.topology.world import World


@pytest.fixture(scope="module")
def world():
    return build_paper_world()


class TestRemovalSets:
    def test_registered_ases(self, world):
        russians = ases_registered_in(world, "RU")
        assert 12389 in russians and 20485 in russians
        assert 3356 not in russians

    def test_route_servers_excluded(self, world):
        graph = world.graph
        for country in ("US", "AU"):
            removal = ases_registered_in(world, country)
            assert not removal & graph.route_servers()


class TestHandBuiltImpact:
    def make_world(self):
        graph = ASGraph()
        graph.add_as(1, role=ASRole.CLIQUE)
        graph.add_as(2, role=ASRole.CLIQUE)
        graph.add_as(10, registry_country="RU", role=ASRole.TRANSIT)
        graph.add_as(20, registry_country="KZ", role=ASRole.STUB)
        graph.add_as(30, registry_country="DE", role=ASRole.STUB)
        graph.add_p2p(1, 2)
        graph.add_p2c(1, 10)
        graph.add_p2c(10, 20)   # KZ hangs solely off the RU transit
        graph.add_p2c(1, 30)
        graph.add_p2c(2, 30)    # DE is dual-homed to the clique
        graph.node(10).originate("10.0.0.0/16", "RU")
        graph.node(20).originate("20.0.0.0/16", "KZ")
        graph.node(30).originate("30.0.0.0/16", "DE")
        return World(graph)

    def test_single_homed_dependent_stranded(self):
        world = self.make_world()
        impact = disconnection_impact(world, {10})
        assert impact.by_country["KZ"].lost_share == pytest.approx(1.0)
        assert impact.by_country["DE"].lost_share == 0.0
        assert impact.stranded_countries() == ["KZ"]

    def test_dual_homed_reroutes(self):
        world = self.make_world()
        impact = disconnection_impact(world, {2})
        de = impact.by_country["DE"]
        assert de.lost_share == 0.0
        # DE survives; its route at clique member 1 was already via 1,
        # so no reroute either — removing a redundant provider is free.
        assert de.rerouted_share == 0.0

    def test_removing_whole_clique_rejected(self):
        world = self.make_world()
        with pytest.raises(ValueError):
            disconnection_impact(world, {1, 2})

    def test_render(self):
        world = self.make_world()
        text = disconnection_impact(world, {10}).render()
        assert "KZ" in text and "lost" in text


class TestPaperWorldScenarios:
    def test_removing_russia_strands_central_asia(self, world):
        """The §6.1/Figure-7 dependence, tested destructively: without
        Russian carriers, their Central-Asian dependents lose most or
        all reachability while Western Europe shrugs."""
        impact = disconnection_impact(world, ases_registered_in(world, "RU"))
        for code in ("KG", "TM"):
            assert impact.by_country[code].lost_share > 0.5, code
        for code in ("UA", "DE", "US", "AU"):
            assert impact.by_country[code].lost_share < 0.05, code

    def test_removing_china_spares_taiwan(self, world):
        """§6.2 destructively: Taiwan barely notices China's carriers
        disappearing."""
        impact = disconnection_impact(world, ases_registered_in(world, "CN"))
        taiwan = impact.by_country["TW"]
        assert taiwan.lost_share < 0.05

    def test_removing_lumen_reroutes_but_rarely_strands(self, world):
        """Tier-1s are redundant: removing Lumen forces rerouting,
        not blackouts (every multihomed customer survives)."""
        impact = disconnection_impact(world, {3356})
        total_lost = sum(i.lost_addresses for i in impact.by_country.values())
        total = sum(i.total_addresses for i in impact.by_country.values())
        assert total_lost / total < 0.1
        rerouted = sum(i.rerouted_addresses for i in impact.by_country.values())
        assert rerouted > 0
