"""Tests for case-study, temporal, regional, filtering, and VP analyses."""

import pytest

from repro import run_pipeline
from repro.analysis.case_studies import (
    case_study_table,
    global_comparison_table,
    render_case_study,
    render_global_comparison,
)
from repro.analysis.filtering_stats import (
    filtered_length_distribution,
    filtering_table,
    render_filtering_table,
    threshold_sweep,
)
from repro.analysis.regions import (
    continental_dominance,
    country_hegemony_over,
    destination_countries,
    render_dominance_table,
)
from repro.analysis.temporal import compare_snapshots
from repro.analysis.vp_distribution import (
    render_census,
    single_vp_share,
    top_vp_countries,
    vp_census,
    vp_concentration,
)
from repro.topology.paper_world import SNAPSHOT_2021, SNAPSHOT_2023, build_paper_world


@pytest.fixture(scope="module")
def result():
    return run_pipeline(build_paper_world(SNAPSHOT_2021))


@pytest.fixture(scope="module")
def result_2023():
    return run_pipeline(build_paper_world(SNAPSHOT_2023))


class TestCaseStudies:
    def test_rows_cover_metric_tops(self, result):
        rows = case_study_table(result, "JP", top_per_metric=2)
        asns = [row.asn for row in rows]
        for metric in ("CCI", "AHI", "CCN", "AHN"):
            for asn in result.ranking(metric, "JP").top_asns(2):
                assert asn in asns

    def test_rows_sorted_by_best_rank(self, result):
        rows = case_study_table(result, "JP")
        assert rows[0].best_rank() == 1

    def test_render(self, result):
        rows = case_study_table(result, "AU")
        text = render_case_study(rows, "AU")
        assert "1299" in text and "CCG" in text

    def test_global_comparison_render(self, result):
        rows = global_comparison_table(result, "AU")
        text = render_global_comparison(rows, "AU")
        assert "AHC" in text and "Arelion" in text


class TestTemporal:
    def test_same_snapshot_no_changes(self, result):
        comparison = compare_snapshots(result, result, "RU", "CCI")
        assert not comparison.entered()
        assert not comparison.departed()
        for row in comparison.rows:
            assert row.rank_delta == 0
            assert row.share_delta == pytest.approx(0.0)

    def test_k_limits_rows(self, result, result_2023):
        comparison = compare_snapshots(result, result_2023, "RU", "AHI", k=5)
        assert len(comparison.rows) == 5

    def test_render_contains_labels(self, result, result_2023):
        comparison = compare_snapshots(
            result, result_2023, "TW", "CCI",
            before_label="20210401", after_label="20230301",
        )
        text = comparison.render()
        assert "20210401" in text and "20230301" in text


class TestRegions:
    def test_destination_countries_cover_cases(self, result):
        countries = destination_countries(result)
        assert {"AU", "JP", "RU", "US", "TW"} <= set(countries)

    def test_dominance_rows_consistent(self, result):
        rows = continental_dominance(result)
        for row in rows:
            assert row.total() == sum(row.by_continent.values())
            if row.top_as is not None:
                asn, count = row.top_as
                assert count >= 1
                node = result.world.graph.node(asn)
                assert node.registry_country == row.serving_country

    def test_render(self, result):
        rows = continental_dominance(result)
        text = render_dominance_table(rows, result)
        assert "US" in text

    def test_hegemony_over_bounds(self, result):
        hegemony = country_hegemony_over(result, "RU")
        for value in hegemony.values():
            assert 0.0 <= value <= 1.0
        assert hegemony["RU"] > 0.2


class TestFiltering:
    def test_table_contains_case_studies(self, result):
        rows = filtering_table(result.prefix_geo)
        codes = [row.country for row in rows]
        assert "US" in codes and "AU" in codes

    def test_case_studies_barely_filtered(self, result):
        rows = filtering_table(result.prefix_geo)
        by_code = {row.country: row for row in rows}
        for code in ("US", "RU", "AU", "JP"):
            if code in by_code:
                assert by_code[code].pct_addresses_filtered < 5.0

    def test_render(self, result):
        rows = filtering_table(result.prefix_geo, by_addresses=True)
        text = render_filtering_table(rows, by_addresses=True)
        assert "addresses" in text

    def test_threshold_sweep_monotone(self, result):
        points = threshold_sweep(
            result.world.announced_prefixes(), result.geodb,
            thresholds=(0.1, 0.5, 0.9),
        )
        # Higher thresholds can only filter more (fewer assignments).
        for country in points[0].assigned_fraction:
            series = [
                p.assigned_fraction.get(country, 0.0) for p in points
            ]
            assert series[0] >= series[-1] - 1e-9

    def test_band_counting(self, result):
        points = threshold_sweep(
            result.world.announced_prefixes(), result.geodb, thresholds=(0.5,)
        )
        point = points[0]
        bands = ((-0.01, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.0))
        total = sum(point.countries_in_band(low, high) for low, high in bands)
        assert total == len(point.assigned_fraction)

    def test_length_distribution(self, result):
        histogram = filtered_length_distribution(result.prefix_geo)
        assert histogram  # the curated world plants covered prefixes
        total_covered = sum(bucket["covered"] for bucket in histogram.values())
        assert total_covered == len(result.prefix_geo.covered)


class TestVPDistribution:
    def test_census_matches_geolocator(self, result):
        rows = vp_census(result)
        census = result.vp_geo.census()
        for row in rows:
            assert census[row.country] == row.vp_ips
            assert row.vp_asns <= row.vp_ips
            assert row.addresses > 0

    def test_top_countries_sorted(self, result):
        rows = top_vp_countries(result, k=5)
        assert len(rows) == 5
        assert rows[0].vp_ips >= rows[-1].vp_ips

    def test_concentration_histogram(self, result):
        histogram = vp_concentration(result)
        star = histogram["*"]
        located = len(result.vp_geo.located())
        assert sum(n * count for n, count in star.items()) == located

    def test_single_vp_share(self, result):
        share = single_vp_share(result)
        assert 0.0 < share <= 1.0

    def test_render(self, result):
        text = render_census(vp_census(result))
        assert "VP IPs" in text
