"""Tests for AS relationship inference and its validation."""

import pytest

from repro.bgp.propagation import propagate_all
from repro.net.aspath import ASPath
from repro.relationships import (
    InferredRelationships,
    infer_clique,
    infer_relationships,
    transit_degrees,
    validate_inference,
)
from repro.topology import GeneratorConfig, generate_world, small_profiles


class TestTransitDegrees:
    def test_interior_only(self):
        degrees = transit_degrees([ASPath.of(1, 2, 3)])
        assert degrees == {2: 2}

    def test_accumulates_across_paths(self):
        degrees = transit_degrees([ASPath.of(1, 2, 3), ASPath.of(4, 2, 5)])
        assert degrees[2] == 4

    def test_short_paths_ignored(self):
        assert transit_degrees([ASPath.of(1, 2)]) == {}


class TestInferClique:
    def test_simple_top(self):
        # 10 and 11 are adjacent high-degree cores.
        paths = [
            ASPath.of(1, 10, 11, 2),
            ASPath.of(3, 10, 11, 4),
            ASPath.of(5, 11, 10, 6),
            ASPath.of(7, 10, 8),
            ASPath.of(9, 11, 12),
        ]
        clique = infer_clique(paths)
        assert {10, 11} <= set(clique)

    def test_empty(self):
        assert infer_clique([]) == frozenset()


class TestInferredRelationships:
    def test_symmetry(self):
        table = InferredRelationships(clique=frozenset())
        table.set_label(1, 2, "p2c")
        assert table.relationship(1, 2) == "p2c"
        assert table.relationship(2, 1) == "c2p"

    def test_set_label_normalizes(self):
        table = InferredRelationships(clique=frozenset())
        table.set_label(5, 2, "p2c")  # 5 provides to 2
        assert table.relationship(5, 2) == "p2c"
        assert table.relationship(2, 5) == "c2p"

    def test_unknown_pair(self):
        table = InferredRelationships(clique=frozenset())
        assert table.relationship(1, 2) is None
        assert table.relationship(1, 1) is None

    def test_bad_label_rejected(self):
        table = InferredRelationships(clique=frozenset())
        with pytest.raises(ValueError):
            table.set_label(1, 2, "sibling")


class TestEndToEndInference:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
            seed=21,
        )

    @pytest.fixture(scope="class")
    def inferred(self, world):
        outcome = propagate_all(world.graph, keep=world.vp_asns())
        paths = [
            ASPath(route.path)
            for routes in outcome.routes.values()
            for route in routes.values()
        ]
        return infer_relationships(paths)

    def test_clique_recovered(self, world, inferred):
        validation = validate_inference(inferred, world.graph)
        assert validation.clique_recall >= 0.75
        assert validation.clique_precision >= 0.5

    def test_label_accuracy(self, world, inferred):
        validation = validate_inference(inferred, world.graph)
        assert validation.accuracy >= 0.8
        assert validation.total_links > 50

    def test_p2c_direction_mostly_right(self, world, inferred):
        validation = validate_inference(inferred, world.graph)
        assert validation.flipped_p2c <= validation.correct * 0.1
