"""The streaming fingerprint must hash exactly the bytes the old
materialized ``json.dumps`` implementation hashed — artifact-store keys
derive from it, so any drift silently invalidates every cache."""

import hashlib
import json

import pytest

from repro.topology.catalog import build_world


def materialized_fingerprint(world):
    """The pre-streaming implementation, verbatim: one content dict,
    one ``json.dumps(sort_keys=True)``, one sha256."""
    graph = world.graph
    content = {
        "countries": sorted(world.countries.codes()),
        "ases": [
            [
                node.asn, node.name, node.registry_country, node.role.value,
                [
                    [
                        str(record.prefix), record.country,
                        repr(record.foreign_share),
                        record.foreign_country or "",
                    ]
                    for record in node.prefixes
                ],
            ]
            for node in sorted(graph.nodes(), key=lambda n: n.asn)
        ],
        "edges": sorted(
            [left, right, relationship.value]
            for left, right, relationship in graph.edges()
        ),
        "collectors": [
            [
                collector.name, collector.project.value,
                collector.country, collector.multihop,
                [[vp.ip, vp.asn] for vp in collector.vps],
            ]
            for collector in sorted(world.collectors, key=lambda c: c.name)
        ],
    }
    serialized = json.dumps(
        content, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(serialized).hexdigest()[:16]


@pytest.mark.parametrize("kind", ["small", "default", "paper2021", "paper2023"])
def test_streaming_equals_materialized(kind):
    world = build_world(kind, 0)
    assert world.fingerprint() == materialized_fingerprint(world)


def test_streamed_parts_are_the_canonical_json():
    world = build_world("small", 0)
    text = "".join(world._fingerprint_parts())
    # must parse, and re-serializing canonically must be the identity
    assert json.dumps(
        json.loads(text), sort_keys=True, separators=(",", ":")
    ) == text
    assert list(json.loads(text)) == ["ases", "collectors", "countries", "edges"]


def test_pinned_digests():
    # golden values from before the streaming refactor; these pin the
    # serve artifact-store keyspace
    assert build_world("small", 0).fingerprint() == "d63fe45213bc0303"
    assert build_world("default", 0).fingerprint() == "48ebb304a8b9fb5b"
