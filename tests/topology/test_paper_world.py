"""Tests for the curated paper world and its snapshots."""

import pytest

from repro.topology.model import ASRole
from repro.topology.paper_world import (
    CASE_STUDY_COUNTRIES,
    PAPER_SNAPSHOTS,
    SNAPSHOT_2021,
    SNAPSHOT_2023,
    build_paper_world,
    paper_as_names,
)


@pytest.fixture(scope="module")
def world_2021():
    return build_paper_world(SNAPSHOT_2021)


@pytest.fixture(scope="module")
def world_2023():
    return build_paper_world(SNAPSHOT_2023)


class TestStructure:
    def test_validates(self, world_2021, world_2023):
        world_2021.validate()
        world_2023.validate()

    def test_named_ases_present(self, world_2021):
        for asn in (3356, 1299, 174, 2914, 6939, 1221, 4637, 4826, 4713,
                    2516, 12389, 3462, 9505, 4134, 16509):
            assert asn in world_2021.graph

    def test_clique_is_tier1_mesh(self, world_2021):
        clique = sorted(world_2021.graph.clique())
        assert 3356 in clique and 1299 in clique
        assert 6939 not in clique  # Hurricane peers but is not tier-1
        for index, left in enumerate(clique):
            for right in clique[index + 1:]:
                assert world_2021.graph.relationship(left, right) == "p2p"

    def test_telstra_dual_as(self, world_2021):
        graph = world_2021.graph
        assert graph.relationship(4637, 1221) == "p2c"
        assert graph.node(1221).registry_country == "AU"
        assert graph.node(4637).registry_country != "AU"

    def test_amazon_registered_us_originates_au(self, world_2021):
        node = world_2021.graph.node(16509)
        assert node.registry_country == "US"
        countries = {record.country for record in node.prefixes}
        assert "AU" in countries and "US" in countries

    def test_case_study_countries_have_vps(self, world_2021):
        located = {}
        for collector in world_2021.collectors:
            if not collector.multihop:
                located.setdefault(collector.country, 0)
                located[collector.country] += len(collector.vps)
        for code in CASE_STUDY_COUNTRIES + ("TW",):
            assert located.get(code, 0) >= 7, code

    def test_former_soviet_fed_by_russia(self, world_2021):
        graph = world_2021.graph
        for code in ("KZ", "KG", "TM"):
            incumbents = [
                asn for asn in graph.asns()
                if graph.node(asn).registry_country == code
                and graph.providers_of(asn)
            ]
            assert incumbents, code
            providers = set()
            for asn in incumbents:
                providers |= graph.providers_of(asn)
            russian = {p for p in providers
                       if graph.node(p).registry_country == "RU"}
            assert russian, code

    def test_western_ex_soviet_not_fed_by_russia(self, world_2021):
        graph = world_2021.graph
        for code in ("UA", "EE", "LT"):
            for asn in graph.asns():
                node = graph.node(asn)
                if node.registry_country != code:
                    continue
                for provider in graph.providers_of(asn):
                    assert graph.node(provider).registry_country != "RU"

    def test_every_non_rs_as_originates(self, world_2021):
        for node in world_2021.graph.nodes():
            if node.role is not ASRole.ROUTE_SERVER:
                assert node.prefixes, node.name

    def test_deterministic(self):
        a = build_paper_world(SNAPSHOT_2021)
        b = build_paper_world(SNAPSHOT_2021)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert [vp.ip for vp in a.collectors.all_vps()] == [
            vp.ip for vp in b.collectors.all_vps()
        ]

    def test_unknown_snapshot_rejected(self):
        with pytest.raises(ValueError):
            build_paper_world("2019-01")


class TestSnapshotDeltas:
    def test_gtt_leaves_russia(self, world_2021, world_2023):
        assert world_2021.graph.relationship(3257, 20485) == "p2c"
        assert world_2023.graph.relationship(3257, 20485) is None

    def test_orange_joins_russia(self, world_2021, world_2023):
        assert world_2021.graph.relationship(5511, 12389) is None
        assert world_2023.graph.relationship(5511, 12389) == "p2c"

    def test_china_telecom_leaves_taiwan(self, world_2021, world_2023):
        assert world_2021.graph.relationship(4134, 9924) == "p2c"
        assert world_2023.graph.relationship(4134, 9924) is None

    def test_names_cover_named_ases(self):
        names = paper_as_names()
        assert names[3356] == "Lumen"
        assert names[1221] == "Telstra"
        assert len(names) > 50

    def test_both_snapshots_listed(self):
        assert SNAPSHOT_2021 in PAPER_SNAPSHOTS and SNAPSHOT_2023 in PAPER_SNAPSHOTS
