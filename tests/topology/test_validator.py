"""Tests for the topology realism validator."""

import pytest

from repro.topology import GeneratorConfig, generate_world, small_profiles
from repro.topology.model import ASGraph, ASRole
from repro.topology.paper_world import build_paper_world
from repro.topology.validator import validate_realism
from repro.topology.world import World


class TestGeneratedWorlds:
    def test_small_world_realistic(self):
        world = generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
            seed=5,
        )
        report = validate_realism(world)
        assert report.ok, report.warnings
        assert report.clique_size == 4
        assert report.upstream_connected == pytest.approx(1.0)
        assert report.max_hierarchy_depth <= 8

    def test_paper_world_realistic(self):
        report = validate_realism(build_paper_world())
        assert report.ok, report.warnings
        assert report.stub_share > 0.3
        assert report.p2c_edges > report.p2p_edges

    def test_render(self):
        world = generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "SE")),
            seed=5,
        )
        text = validate_realism(world).render()
        assert "clique" in text and "ASes" in text


class TestDegenerateWorlds:
    def test_no_clique_flagged(self):
        graph = ASGraph()
        graph.add_as(1, role=ASRole.TRANSIT)
        graph.add_as(2, role=ASRole.STUB)
        graph.add_p2c(1, 2)
        report = validate_realism(World(graph))
        assert any("clique" in w for w in report.warnings)

    def test_unmeshed_clique_flagged(self):
        graph = ASGraph()
        graph.add_as(1, role=ASRole.CLIQUE)
        graph.add_as(2, role=ASRole.CLIQUE)
        graph.add_as(3, role=ASRole.STUB)
        graph.add_p2c(1, 3)
        report = validate_realism(World(graph))
        assert any("meshed" in w for w in report.warnings)

    def test_clique_with_provider_flagged(self):
        graph = ASGraph()
        graph.add_as(1, role=ASRole.CLIQUE)
        graph.add_as(2, role=ASRole.TRANSIT)
        graph.add_p2c(2, 1)
        report = validate_realism(World(graph))
        assert any("buys transit" in w for w in report.warnings)

    def test_stranded_as_flagged(self):
        graph = ASGraph()
        graph.add_as(1, role=ASRole.CLIQUE)
        for asn in (2, 3, 4, 5, 6):
            graph.add_as(asn, role=ASRole.STUB)
        graph.add_p2c(1, 2)
        # ASes 3-6 are islands.
        report = validate_realism(World(graph))
        assert any("reach the top tier" in w for w in report.warnings)

    def test_peering_heavy_flagged(self):
        graph = ASGraph()
        graph.add_as(1, role=ASRole.CLIQUE)
        for asn in (2, 3, 4):
            graph.add_as(asn, role=ASRole.STUB)
            graph.add_p2p(1, asn)
        report = validate_realism(World(graph))
        assert any("outnumber transit" in w for w in report.warnings)
