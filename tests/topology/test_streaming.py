"""The streaming record protocol must be invisible: a world's lazily
streamed RIB record stream is record-for-record identical to running
generation → propagation → RIB materialization by hand, and the
catalog's ``large`` tier scales record volume without scaling the AS
topology."""

from itertools import islice

import pytest

from repro.bgp.propagation import propagate_all
from repro.bgp.rib import RibGenerationConfig, generate_rib_days
from repro.topology.catalog import (
    WORLD_CHOICES,
    build_world,
    stream_world_records,
    world_config,
)
from repro.topology.generator import GeneratorConfig, generate_world, iter_world_records
from repro.topology.profiles import default_profiles, large_profiles, small_profiles

SMALL = GeneratorConfig(
    profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
)


class TestIterWorldRecords:
    def test_identical_to_materialized_path(self):
        world = generate_world(SMALL, seed=3, name="small")
        outcomes = [
            propagate_all(
                world.graph, keep=world.vp_asns(), tiebreak="hash", salt=0
            )
        ]
        series = generate_rib_days(world, outcomes, RibGenerationConfig(), 3)
        materialized = list(series.records())
        assert list(iter_world_records(SMALL, seed=3)) == materialized
        assert list(iter_world_records(world=world, seed=3)) == materialized

    def test_is_lazy(self):
        stream = iter_world_records(SMALL, seed=1)
        first = list(islice(stream, 10))
        assert len(first) == 10
        assert first == list(iter_world_records(SMALL, seed=1))[:10]

    def test_deterministic_across_calls(self):
        assert (
            list(iter_world_records(SMALL, seed=5))
            == list(iter_world_records(SMALL, seed=5))
        )

    def test_seed_changes_stream(self):
        assert (
            list(iter_world_records(SMALL, seed=1))
            != list(iter_world_records(SMALL, seed=2))
        )


class TestCatalogStreaming:
    def test_large_is_a_world_choice(self):
        assert "large" in WORLD_CHOICES

    def test_stream_matches_iter(self):
        streamed = list(stream_world_records("small", 2))
        config = world_config("small")
        direct = list(iter_world_records(config, seed=2, name="small"))
        assert streamed == direct

    def test_paper_worlds_not_streamable(self):
        with pytest.raises(ValueError):
            stream_world_records("paper2023", 0)

    def test_unknown_world_rejected(self):
        with pytest.raises(ValueError):
            world_config("galactic")
        with pytest.raises(ValueError):
            build_world("galactic", 0)

    def test_build_world_names_match_kind(self):
        assert build_world("small", 0).name == "small"
        assert build_world("large", 0).name == "large"


class TestLargeProfiles:
    def test_scales_only_vps_and_blocks(self):
        base = default_profiles()
        scaled = large_profiles(vp_scale=6, block_scale=8)
        assert scaled.keys() == base.keys()
        for code, profile in scaled.items():
            reference = base[code]
            assert profile.n_vps == reference.n_vps * 6
            assert profile.address_blocks == min(
                reference.address_blocks * 8, 256
            )
            # the AS topology must stay default-world sized
            assert profile.total_ases() == reference.total_ases()

    def test_blocks_clamped_to_country_pool(self):
        for profile in large_profiles(block_scale=1000).values():
            assert profile.address_blocks <= 256

    def test_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            large_profiles(vp_scale=0)

    def test_large_topology_stays_laptop_sized(self):
        # topology cost is default-world scale even though the record
        # stream is ~16x; this is the asymmetry the tier depends on
        default = build_world("default", 0)
        large = build_world("large", 0)
        assert len(large.graph) == len(default.graph)
        large_vps = sum(len(c.vps) for c in large.collectors)
        default_vps = sum(len(c.vps) for c in default.collectors)
        assert large_vps > default_vps * 4
        assert len(large.announced_prefixes()) > len(
            default.announced_prefixes()
        ) * 2
