"""Unit tests for country profiles."""

import pytest

from repro.topology.profiles import CountryProfile, default_profiles, small_profiles


class TestProfileValidation:
    def test_defaults_valid(self):
        profile = CountryProfile("AU")
        assert profile.total_ases() > 0

    def test_dominance_range(self):
        with pytest.raises(ValueError):
            CountryProfile("AU", incumbent_dominance=1.5)

    def test_vps_need_collector(self):
        with pytest.raises(ValueError):
            CountryProfile("AU", n_vps=3, n_collectors=0)

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            CountryProfile("AU", n_vps=-1)

    def test_multihoming_bounds(self):
        with pytest.raises(ValueError):
            CountryProfile("AU", stub_multihoming=(2, 1))
        with pytest.raises(ValueError):
            CountryProfile("AU", stub_multihoming=(0, 1))

    def test_total_ases(self):
        profile = CountryProfile(
            "AU", incumbent_dual_as=True, n_transit=2, n_access=3,
            n_stub=5, has_education=True,
        )
        assert profile.total_ases() == 2 + 2 + 3 + 5 + 1


class TestDefaultProfiles:
    def test_table4_vp_ordering(self):
        """The paper's Table 4 leaders must stay in order."""
        profiles = default_profiles()
        vps = [profiles[c].n_vps for c in ("NL", "GB", "US", "DE", "BR")]
        assert vps == sorted(vps, reverse=True)
        assert vps[0] > vps[-1]

    def test_case_study_floor(self):
        """AU/JP/RU/US need >= 7 in-country VPs for national views (§5)."""
        profiles = default_profiles()
        for code in ("AU", "JP", "RU", "US"):
            assert profiles[code].n_vps >= 7

    def test_dual_as_incumbents(self):
        profiles = default_profiles()
        assert profiles["AU"].incumbent_dual_as
        assert profiles["JP"].incumbent_dual_as
        assert not profiles["US"].incumbent_dual_as  # Lumen pattern (§5.5)

    def test_former_soviet_feed_from_russia(self):
        profiles = default_profiles()
        for code in ("KZ", "KG", "TJ", "TM"):
            assert profiles[code].cross_border_partner == "RU"

    def test_most_filtered_countries_split_evenly(self):
        profiles = default_profiles()
        for code in ("AF", "HR", "LT", "GG", "MU", "NA"):
            assert profiles[code].cross_border_share == 0.5
            assert profiles[code].cross_border_rate > 0.1


class TestSmallProfiles:
    def test_compact(self):
        profiles = small_profiles()
        assert len(profiles) <= 8
        total = sum(p.total_ases() for p in profiles.values())
        assert total < 120

    def test_has_national_view_country(self):
        profiles = small_profiles()
        assert any(p.n_vps >= 4 for p in profiles.values())
