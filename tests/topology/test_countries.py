"""Unit tests for the country registry."""

import pytest

from repro.topology.countries import CONTINENTS, Country, CountryRegistry, default_registry


class TestCountry:
    def test_valid(self):
        country = Country("AU", "Australia", "Oceania")
        assert str(country) == "AU"

    def test_bad_code(self):
        with pytest.raises(ValueError):
            Country("aus", "Australia", "Oceania")
        with pytest.raises(ValueError):
            Country("au", "Australia", "Oceania")

    def test_bad_continent(self):
        with pytest.raises(ValueError):
            Country("AU", "Australia", "Atlantis")


class TestRegistry:
    def test_add_get(self):
        registry = CountryRegistry()
        registry.add(Country("AU", "Australia", "Oceania"))
        assert registry.get("AU").name == "Australia"
        assert registry.maybe("ZZ") is None
        assert "AU" in registry and len(registry) == 1

    def test_duplicate_rejected(self):
        registry = CountryRegistry([Country("AU", "Australia", "Oceania")])
        with pytest.raises(ValueError):
            registry.add(Country("AU", "Australia again", "Oceania"))

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            CountryRegistry().get("AU")

    def test_by_continent(self):
        registry = default_registry()
        oceania = registry.by_continent("Oceania")
        assert any(c.code == "AU" for c in oceania)
        with pytest.raises(ValueError):
            registry.by_continent("Atlantis")


class TestDefaultRegistry:
    def test_case_study_countries_present(self):
        registry = default_registry()
        for code in ("AU", "JP", "RU", "US", "TW", "CN", "UA"):
            assert code in registry

    def test_continents_covered(self):
        registry = default_registry()
        for continent in CONTINENTS:
            assert registry.by_continent(continent), continent

    def test_former_soviet(self):
        registry = default_registry()
        soviet = {c.code for c in registry.former_soviet()}
        assert {"RU", "KZ", "KG", "TJ", "TM", "UA"} <= soviet
        assert "US" not in soviet

    def test_iteration_sorted(self):
        registry = default_registry()
        codes = [c.code for c in registry]
        assert codes == sorted(codes)
