"""Tests for the world generator (structure, determinism, realism)."""

import pytest

from repro.topology import (
    ASRole,
    GeneratorConfig,
    generate_world,
    small_profiles,
)


SMALL_CONFIG = GeneratorConfig(
    profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
)


@pytest.fixture(scope="module")
def world():
    return generate_world(SMALL_CONFIG, seed=7, name="test")


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = generate_world(SMALL_CONFIG, seed=3)
        b = generate_world(SMALL_CONFIG, seed=3)
        assert a.summary() == b.summary()
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert [str(v.ip) for v in a.collectors.all_vps()] == [
            str(v.ip) for v in b.collectors.all_vps()
        ]

    def test_different_seed_different_world(self):
        a = generate_world(SMALL_CONFIG, seed=3)
        b = generate_world(SMALL_CONFIG, seed=4)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())


class TestStructure:
    def test_validates(self, world):
        world.validate()

    def test_clique_fully_meshed(self, world):
        clique = sorted(world.graph.clique())
        assert len(clique) == 4
        for i, left in enumerate(clique):
            for right in clique[i + 1 :]:
                assert world.graph.relationship(left, right) == "p2p"

    def test_clique_transit_free(self, world):
        for member in world.graph.clique():
            assert not world.graph.providers_of(member)

    def test_dual_as_incumbent(self, world):
        names = {node.name: node.asn for node in world.graph.nodes()}
        assert "Incumbent-Intl-AU" in names and "Incumbent-Dom-AU" in names
        intl, dom = names["Incumbent-Intl-AU"], names["Incumbent-Dom-AU"]
        assert world.graph.relationship(intl, dom) == "p2c"

    def test_us_single_incumbent(self, world):
        names = {node.name for node in world.graph.nodes()}
        assert "Incumbent-US" in names
        assert "Incumbent-Intl-US" not in names

    def test_every_operational_as_originates(self, world):
        for node in world.graph.nodes():
            if node.role is not ASRole.ROUTE_SERVER:
                assert node.prefixes, node.name

    def test_route_server_originates_nothing(self, world):
        for asn in world.graph.route_servers():
            assert not world.graph.node(asn).prefixes

    def test_stubs_have_providers(self, world):
        for asn in world.graph.by_role(ASRole.STUB):
            assert world.graph.providers_of(asn)

    def test_minor_country_fed_regionally(self, world):
        # BR is the minor in small_profiles; its incumbent's providers
        # must include another country's incumbent (a US entry point).
        names = {node.name: node.asn for node in world.graph.nodes()}
        incumbent = names["Incumbent-BR"]
        providers = world.graph.providers_of(incumbent)
        provider_names = {world.graph.node(p).name for p in providers}
        assert any("Incumbent" in name for name in provider_names)


class TestCollectors:
    def test_vp_counts_match_profiles(self, world):
        profiles = small_profiles()
        located = {}
        for collector in world.collectors:
            if not collector.multihop:
                located.setdefault(collector.country, 0)
                located[collector.country] += len(collector.vps)
        for code, profile in profiles.items():
            assert located.get(code, 0) == profile.n_vps

    def test_multihop_collector_exists(self, world):
        assert any(c.multihop for c in world.collectors)

    def test_multihop_vps_foreign(self, world):
        for collector in world.collectors:
            if collector.multihop:
                for vp in collector.vps:
                    node = world.graph.node(vp.asn)
                    assert node.registry_country != collector.country

    def test_vp_ips_unique(self, world):
        ips = [vp.ip for vp in world.collectors.all_vps()]
        assert len(ips) == len(set(ips))

    def test_vp_hosts_exist_and_originate(self, world):
        for vp in world.collectors.all_vps():
            assert world.graph.node(vp.asn).prefixes


class TestAddressPlan:
    def test_country_space_disjoint(self, world):
        seen = set()
        for _, record in world.graph.originations():
            top = record.prefix.value >> 24
            seen.add(top)
        assert seen  # all originations land in per-country or global /8s

    def test_incumbent_announces_more_specifics(self, world):
        # GB-sized countries announce a /16 plus both /17s; in the small
        # world the US incumbent does (address_blocks >= 4).
        names = {node.name: node for node in world.graph.nodes()}
        incumbent = names["Incumbent-US"]
        lengths = sorted(r.prefix.length for r in incumbent.prefixes)
        assert 16 in lengths and 17 in lengths

    def test_cross_border_records_valid(self, world):
        for _, record in world.graph.originations():
            if record.foreign_share:
                assert record.foreign_country != record.country


class TestConfigValidation:
    def test_empty_clique_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(clique_homes=())

    def test_unknown_profile_country_rejected(self):
        from repro.topology.profiles import CountryProfile

        config = GeneratorConfig(profiles={"ZZ": CountryProfile("ZZ", n_collectors=0, n_vps=0)})
        with pytest.raises(ValueError):
            generate_world(config)

    def test_unknown_clique_home_rejected(self):
        config = GeneratorConfig(
            profiles=small_profiles(), clique_homes=("XX",)
        )
        with pytest.raises(ValueError):
            generate_world(config)
