"""Unit tests for repro.topology.model (ASGraph invariants)."""

import pytest

from repro.net.prefix import Prefix
from repro.topology.model import (
    ASGraph,
    ASRole,
    OriginatedPrefix,
    TopologyError,
)


@pytest.fixture
def graph():
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(asn, f"AS{asn}", "US")
    return g


class TestNodes:
    def test_add_and_lookup(self, graph):
        node = graph.node(1)
        assert node.asn == 1 and node.registry_country == "US"
        assert graph.maybe_node(99) is None
        assert 1 in graph and 99 not in graph
        assert len(graph) == 4

    def test_duplicate_rejected(self, graph):
        with pytest.raises(TopologyError):
            graph.add_as(1)

    def test_reserved_asn_rejected(self):
        with pytest.raises(TopologyError):
            ASGraph().add_as(0)

    def test_registry_synced(self, graph):
        assert graph.asn_registry.is_allocated(1)


class TestEdges:
    def test_p2c(self, graph):
        graph.add_p2c(1, 2)
        assert graph.relationship(1, 2) == "p2c"
        assert graph.relationship(2, 1) == "c2p"
        assert graph.customers_of(1) == frozenset({2})
        assert graph.providers_of(2) == frozenset({1})

    def test_p2p(self, graph):
        graph.add_p2p(1, 2)
        assert graph.relationship(1, 2) == "p2p"
        assert graph.relationship(2, 1) == "p2p"
        assert graph.peers_of(1) == frozenset({2})

    def test_no_relationship(self, graph):
        assert graph.relationship(1, 2) is None

    def test_self_edge_rejected(self, graph):
        with pytest.raises(TopologyError):
            graph.add_p2c(1, 1)

    def test_double_edge_rejected(self, graph):
        graph.add_p2c(1, 2)
        with pytest.raises(TopologyError):
            graph.add_p2p(1, 2)
        with pytest.raises(TopologyError):
            graph.add_p2c(2, 1)

    def test_unknown_endpoint_rejected(self, graph):
        with pytest.raises(TopologyError):
            graph.add_p2c(1, 99)

    def test_remove_edge(self, graph):
        graph.add_p2p(1, 2)
        graph.remove_edge(1, 2)
        assert graph.relationship(1, 2) is None
        with pytest.raises(TopologyError):
            graph.remove_edge(1, 2)

    def test_neighbors_and_degrees(self, graph):
        graph.add_p2c(1, 2)
        graph.add_p2c(1, 3)
        graph.add_p2p(1, 4)
        assert graph.neighbors_of(1) == frozenset({2, 3, 4})
        assert graph.degree(1) == 3
        assert graph.transit_degree(1) == 2

    def test_edges_iteration(self, graph):
        graph.add_p2c(1, 2)
        graph.add_p2p(3, 4)
        edges = list(graph.edges())
        assert len(edges) == 2
        assert graph.edge_count() == 2


class TestValidation:
    def test_acyclic_ok(self, graph):
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        graph.validate()

    def test_cycle_detected(self, graph):
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        graph.add_p2c(3, 1)
        with pytest.raises(TopologyError):
            graph.validate()

    def test_peering_cycles_fine(self, graph):
        graph.add_p2p(1, 2)
        graph.add_p2p(2, 3)
        graph.add_p2p(3, 1)
        graph.validate()


class TestOriginations:
    def test_originate(self, graph):
        node = graph.node(1)
        record = node.originate("10.0.0.0/8", "US")
        assert record.prefix == Prefix.parse("10.0.0.0/8")
        assert node.originated_prefixes() == [Prefix.parse("10.0.0.0/8")]
        assert node.address_count() == 1 << 24

    def test_cross_border_validation(self):
        with pytest.raises(TopologyError):
            OriginatedPrefix(Prefix.parse("10.0.0.0/8"), "US", 0.5, None)
        with pytest.raises(TopologyError):
            OriginatedPrefix(Prefix.parse("10.0.0.0/8"), "US", 0.5, "US")
        with pytest.raises(TopologyError):
            OriginatedPrefix(Prefix.parse("10.0.0.0/8"), "US", 1.0, "CA")

    def test_originations_iteration(self, graph):
        graph.node(2).originate("10.0.0.0/8", "US")
        graph.node(1).originate("11.0.0.0/8", "CA")
        pairs = list(graph.originations())
        assert [asn for asn, _ in pairs] == [1, 2]


class TestRoleQueries:
    def test_roles(self):
        g = ASGraph()
        g.add_as(1, role=ASRole.CLIQUE)
        g.add_as(2, role=ASRole.CLIQUE)
        g.add_as(3, role=ASRole.ROUTE_SERVER)
        g.add_as(4, role=ASRole.STUB)
        assert g.clique() == frozenset({1, 2})
        assert g.route_servers() == frozenset({3})
        assert g.by_role(ASRole.STUB) == [4]

    def test_by_registry_country(self):
        g = ASGraph()
        g.add_as(1, registry_country="US")
        g.add_as(2, registry_country="JP")
        g.add_as(3, registry_country="US")
        assert g.by_registry_country("US") == [1, 3]
