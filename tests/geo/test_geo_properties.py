"""Property-based tests for the geolocation substrate."""

from hypothesis import given, settings, strategies as st

from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import geolocate_prefixes
from repro.net.prefix import Prefix

COUNTRIES = ("US", "CA", "MX", "FR", "DE")


@st.composite
def databases_and_prefixes(draw):
    """A random geo database over 10.0.0.0/8 plus announced prefixes."""
    db = GeoDatabase()
    db.assign(Prefix.parse("10.0.0.0/8"), draw(st.sampled_from(COUNTRIES)))
    n_blocks = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_blocks):
        length = draw(st.integers(min_value=9, max_value=18))
        chunk = draw(st.integers(min_value=0, max_value=(1 << 10) - 1))
        bits = length - 8
        value = (10 << 24) | ((chunk & ((1 << bits) - 1)) << (32 - length))
        db.assign(Prefix(4, value, length), draw(st.sampled_from(COUNTRIES)))
    n_prefixes = draw(st.integers(min_value=1, max_value=10))
    prefixes = []
    for _ in range(n_prefixes):
        length = draw(st.integers(min_value=9, max_value=20))
        chunk = draw(st.integers(min_value=0, max_value=(1 << 12) - 1))
        bits = length - 8
        value = (10 << 24) | ((chunk & ((1 << bits) - 1)) << (32 - length))
        prefixes.append(Prefix(4, value, length))
    return db, sorted(set(prefixes), key=Prefix.sort_key)


class TestGeoProperties:
    @settings(max_examples=60, deadline=None)
    @given(databases_and_prefixes())
    def test_shares_sum_to_one(self, case):
        db, prefixes = case
        for prefix in prefixes:
            total = sum(db.country_shares(prefix).values())
            assert abs(total - 1.0) < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(databases_and_prefixes())
    def test_outcome_partitions_announced_set(self, case):
        db, prefixes = case
        outcome = geolocate_prefixes(prefixes, db)
        assigned = set(outcome.country_of)
        split = outcome.no_consensus
        covered = outcome.covered
        assert assigned | split | covered == set(prefixes)
        assert not assigned & split
        assert not assigned & covered
        assert not split & covered

    @settings(max_examples=40, deadline=None)
    @given(databases_and_prefixes(),
           st.floats(min_value=0.05, max_value=0.45),
           st.floats(min_value=0.5, max_value=0.94))
    def test_tighter_threshold_assigns_fewer(self, case, low, high):
        db, prefixes = case
        loose = geolocate_prefixes(prefixes, db, threshold=low)
        tight = geolocate_prefixes(prefixes, db, threshold=high)
        # A prefix assigned under the tight threshold is also assigned
        # (to the same country) under the loose one... unless the loose
        # threshold allowed a *different* plurality tie to pass — but
        # both thresholds pick the same argmax, so containment holds.
        for prefix, country in tight.country_of.items():
            assert loose.country_of.get(prefix) == country
        assert len(tight.country_of) <= len(loose.country_of)

    @settings(max_examples=40, deadline=None)
    @given(databases_and_prefixes())
    def test_owned_addresses_sum_matches_span(self, case):
        db, prefixes = case
        outcome = geolocate_prefixes(prefixes, db)
        from repro.net.prefixset import PrefixSet

        union = PrefixSet(prefixes)
        assert sum(outcome.owned_addresses.values()) == union.num_addresses()

    @settings(max_examples=40, deadline=None)
    @given(databases_and_prefixes())
    def test_majority_country_agrees_with_shares(self, case):
        db, prefixes = case
        for prefix in prefixes:
            majority = db.majority_country(prefix)
            if majority is not None:
                shares = db.country_shares(prefix)
                assert shares[majority] > 0.5
