"""Tests for VP geolocation."""

from repro.bgp.collectors import Collector, CollectorProject, CollectorSet
from repro.geo.vp_geo import VPGeolocator


def make_geolocator():
    collectors = CollectorSet()
    nl = collectors.add(Collector("nl-ix", CollectorProject.RIS, "NL"))
    us = collectors.add(Collector("us-ix", CollectorProject.ROUTEVIEWS, "US"))
    mh = collectors.add(
        Collector("mh", CollectorProject.ROUTEVIEWS, "US", multihop=True)
    )
    nl.add_vp("10.0.0.1", 1)
    nl.add_vp("10.0.0.2", 2)
    us.add_vp("10.1.0.1", 3)
    mh.add_vp("10.2.0.1", 4)
    return VPGeolocator(collectors)


class TestVPGeolocator:
    def test_country(self):
        geo = make_geolocator()
        located = geo.located()
        assert geo.country(located[0]) == "NL"

    def test_multihop_unlocated(self):
        geo = make_geolocator()
        (vp,) = geo.unlocated()
        assert geo.country(vp) is None

    def test_partitions(self):
        geo = make_geolocator()
        assert len(geo.located()) == 3
        assert len(geo.unlocated()) == 1

    def test_census(self):
        geo = make_geolocator()
        assert geo.census() == {"NL": 2, "US": 1}
