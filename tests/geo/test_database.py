"""Tests for the synthetic geolocation database."""

import pytest

from repro.geo.database import GeoDatabase
from repro.net.prefix import Prefix
from repro.topology import GeneratorConfig, generate_world, small_profiles


def p(text):
    return Prefix.parse(text)


class TestAssignLookup:
    def test_basic(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        assert db.lookup(4, (10 << 24) + 1) == "US"
        assert db.lookup(4, 11 << 24) is None
        assert db.lookup_text("10.1.2.3") == "US"

    def test_most_specific_wins(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        db.assign(p("10.1.0.0/16"), "CA")
        assert db.lookup_text("10.1.0.1") == "CA"
        assert db.lookup_text("10.2.0.1") == "US"

    def test_unassign(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        db.unassign(p("10.0.0.0/9"))
        assert db.lookup_text("10.0.0.1") is None
        assert db.lookup_text("10.128.0.1") == "US"


class TestCountryShares:
    def test_homogeneous(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        shares = db.country_shares(p("10.0.0.0/16"))
        assert shares == {"US": 1.0}

    def test_split(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        db.assign(p("10.0.0.0/9"), "CA")
        shares = db.country_shares(p("10.0.0.0/8"))
        assert shares == {"US": 0.5, "CA": 0.5}

    def test_none_share_for_gaps(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/9"), "US")
        shares = db.country_shares(p("10.0.0.0/8"))
        assert shares[None] == 0.5
        assert shares["US"] == 0.5

    def test_shares_sum_to_one(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        db.assign(p("10.64.0.0/10"), "CA")
        db.assign(p("10.64.0.0/12"), "MX")
        shares = db.country_shares(p("10.0.0.0/8"))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unknown_space(self):
        db = GeoDatabase()
        assert db.country_shares(p("10.0.0.0/8")) == {None: 1.0}

    def test_wrong_family(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        assert db.country_shares(p("2001:db8::/32")) == {None: 1.0}


class TestMajority:
    def test_clear_majority(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        db.assign(p("10.0.0.0/10"), "CA")  # 25 %
        assert db.majority_country(p("10.0.0.0/8")) == "US"

    def test_exact_half_fails_strict_threshold(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/9"), "US")
        db.assign(p("10.128.0.0/9"), "CA")
        assert db.majority_country(p("10.0.0.0/8")) is None

    def test_custom_threshold(self):
        db = GeoDatabase()
        db.assign(p("10.0.0.0/8"), "US")
        db.assign(p("10.0.0.0/10"), "CA")  # US has 75 %
        assert db.majority_country(p("10.0.0.0/8"), threshold=0.8) is None
        assert db.majority_country(p("10.0.0.0/8"), threshold=0.7) == "US"


class TestFromWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
            seed=13,
        )

    def test_noiseless_matches_ground_truth(self, world):
        db = GeoDatabase.from_world(world, noise_rate=0.0, miss_rate=0.0, seed=0)
        for asn, record in world.graph.originations():
            if record.foreign_share:
                continue
            shares = db.country_shares(record.prefix)
            # Same-country more specifics may overlay, so the home
            # country still holds everything.
            assert shares.get(record.country, 0.0) == pytest.approx(1.0)

    def test_cross_border_shares_respected(self, world):
        db = GeoDatabase.from_world(world, noise_rate=0.0, miss_rate=0.0, seed=0)
        found = 0
        for asn, record in world.graph.originations():
            if not record.foreign_share:
                continue
            shares = db.country_shares(record.prefix)
            foreign = shares.get(record.foreign_country, 0.0)
            if not foreign:
                # A same-space more-specific origination may overwrite the
                # foreign chunks; skip those collisions.
                continue
            found += 1
            assert foreign == pytest.approx(record.foreign_share, abs=0.1)
        assert found > 0

    def test_deterministic(self, world):
        a = GeoDatabase.from_world(world, seed=3)
        b = GeoDatabase.from_world(world, seed=3)
        probe = p("1.0.0.0/16")
        assert a.country_shares(probe) == b.country_shares(probe)
        assert len(a) == len(b)

    def test_rates_validated(self, world):
        with pytest.raises(ValueError):
            GeoDatabase.from_world(world, noise_rate=2.0)
