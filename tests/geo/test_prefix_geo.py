"""Tests for majority-threshold prefix geolocation."""

import pytest

from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import geolocate_prefixes
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


@pytest.fixture
def db():
    database = GeoDatabase()
    database.assign(p("10.0.0.0/8"), "US")
    database.assign(p("11.0.0.0/8"), "CA")
    database.assign(p("12.0.0.0/9"), "US")
    database.assign(p("12.128.0.0/9"), "CA")
    database.assign(p("13.0.0.0/8"), "FR")
    database.assign(p("13.0.0.0/10"), "DE")  # 25 % DE, 75 % FR
    return database


class TestAssignment:
    def test_clean_assignment(self, db):
        result = geolocate_prefixes([p("10.0.0.0/16")], db)
        assert result.country(p("10.0.0.0/16")) == "US"
        assert result.owned_addresses[p("10.0.0.0/16")] == 1 << 16

    def test_even_split_filtered(self, db):
        result = geolocate_prefixes([p("12.0.0.0/8")], db)
        assert result.country(p("12.0.0.0/8")) is None
        assert p("12.0.0.0/8") in result.no_consensus
        assert set(result.plurality_of[p("12.0.0.0/8")]) == {"US", "CA"}

    def test_majority_above_threshold(self, db):
        result = geolocate_prefixes([p("13.0.0.0/8")], db)
        assert result.country(p("13.0.0.0/8")) == "FR"

    def test_majority_below_custom_threshold(self, db):
        result = geolocate_prefixes([p("13.0.0.0/8")], db, threshold=0.8)
        assert result.country(p("13.0.0.0/8")) is None

    def test_unknown_space_filtered(self, db):
        result = geolocate_prefixes([p("99.0.0.0/8")], db)
        assert result.country(p("99.0.0.0/8")) is None

    def test_threshold_validated(self, db):
        with pytest.raises(ValueError):
            geolocate_prefixes([p("10.0.0.0/8")], db, threshold=1.0)


class TestBlockSemantics:
    def test_covered_prefix_dropped(self, db):
        prefixes = [p("10.0.0.0/16"), p("10.0.0.0/17"), p("10.0.128.0/17")]
        result = geolocate_prefixes(prefixes, db)
        assert p("10.0.0.0/16") in result.covered
        assert result.country(p("10.0.0.0/16")) is None
        assert result.country(p("10.0.0.0/17")) == "US"

    def test_owned_addresses_exclude_more_specifics(self, db):
        prefixes = [p("10.0.0.0/16"), p("10.0.0.0/17")]
        result = geolocate_prefixes(prefixes, db)
        assert result.owned_addresses[p("10.0.0.0/16")] == 1 << 15
        assert result.owned_addresses[p("10.0.0.0/17")] == 1 << 15

    def test_majority_judged_on_owned_blocks_only(self, db):
        # The /8 splits 50/50 between US and CA, but its US half is
        # owned by a more-specific /9 — so the /8's *owned* addresses
        # are all CA and it geolocates cleanly.
        prefixes = [p("12.0.0.0/8"), p("12.0.0.0/9")]
        result = geolocate_prefixes(prefixes, db)
        assert result.country(p("12.0.0.0/9")) == "US"
        assert result.country(p("12.0.0.0/8")) == "CA"


class TestAggregates:
    def test_addresses_by_country(self, db):
        prefixes = [p("10.0.0.0/16"), p("10.1.0.0/16"), p("11.0.0.0/16")]
        result = geolocate_prefixes(prefixes, db)
        totals = result.addresses_by_country()
        assert totals["US"] == 2 << 16
        assert totals["CA"] == 1 << 16

    def test_prefixes_of_country(self, db):
        prefixes = [p("10.0.0.0/16"), p("11.0.0.0/16")]
        result = geolocate_prefixes(prefixes, db)
        assert result.prefixes_of_country("US") == [p("10.0.0.0/16")]

    def test_stats_by_country(self, db):
        prefixes = [p("10.0.0.0/16"), p("12.0.0.0/8")]
        result = geolocate_prefixes(prefixes, db)
        stats = result.stats_by_country()
        assert stats["US"].total_prefixes == 2  # assigned + tied plurality
        assert stats["US"].filtered_prefixes == 1
        assert stats["CA"].filtered_prefixes == 1
        assert 0.0 < stats["US"].pct_prefixes_filtered < 100.0

    def test_accepted_sorted(self, db):
        prefixes = [p("11.0.0.0/16"), p("10.0.0.0/16")]
        result = geolocate_prefixes(prefixes, db)
        assert result.accepted() == [p("10.0.0.0/16"), p("11.0.0.0/16")]
