"""Tests for national/international/global views (Table 2 semantics)."""

from repro.bgp.collectors import VantagePoint
from repro.core.sanitize import FilterReport, PathRecord, PathSet
from repro.core.views import (
    destination_view,
    global_view,
    international_view,
    national_view,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def record(vp_ip, vp_country, prefix, prefix_country, path):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country=vp_country,
        prefix=Prefix.parse(prefix),
        prefix_country=prefix_country,
        path=ASPath.parse(path),
        addresses=Prefix.parse(prefix).num_addresses(),
    )


def make_paths():
    records = [
        record("10.0.0.1", "AU", "1.0.0.0/16", "AU", "1 2 3"),     # AU -> AU
        record("10.0.0.2", "US", "1.0.0.0/16", "AU", "4 2 3"),     # US -> AU
        record("10.0.0.2", "US", "1.1.0.0/16", "AU", "4 2 5"),     # US -> AU
        record("10.0.0.1", "AU", "2.0.0.0/16", "US", "1 2 6"),     # AU -> US
        record("10.0.0.3", "US", "2.0.0.0/16", "US", "7 6"),       # US -> US
    ]
    return PathSet(records=records, report=FilterReport())


class TestViews:
    def test_national(self):
        view = national_view(make_paths(), "AU")
        assert len(view) == 1
        assert view.records[0].vp_country == "AU"
        assert view.country == "AU"

    def test_international(self):
        view = international_view(make_paths(), "AU")
        assert len(view) == 2
        assert all(r.vp_country != "AU" for r in view)
        assert all(r.prefix_country == "AU" for r in view)

    def test_national_plus_international_cover_destination(self):
        paths = make_paths()
        to_au = [r for r in paths.records if r.prefix_country == "AU"]
        national = national_view(paths, "AU")
        international = international_view(paths, "AU")
        assert len(national) + len(international) == len(to_au)

    def test_global(self):
        view = global_view(make_paths())
        assert len(view) == 5
        assert view.country is None

    def test_destination_view(self):
        view = destination_view(make_paths(), origins=[3, 5])
        assert len(view) == 3
        assert {r.origin for r in view} == {3, 5}


class TestViewHelpers:
    def test_vps(self):
        view = international_view(make_paths(), "AU")
        assert [vp.ip for vp in view.vps()] == ["10.0.0.2"]

    def test_total_addresses_dedupes(self):
        view = global_view(make_paths())
        # Three distinct prefixes of /16 each.
        assert view.total_addresses() == 3 << 16

    def test_restrict_vps(self):
        view = global_view(make_paths())
        restricted = view.restrict_vps(["10.0.0.1"])
        assert len(restricted) == 2
        assert all(r.vp.ip == "10.0.0.1" for r in restricted)
        assert restricted.country is None

    def test_restrict_vps_empty(self):
        view = global_view(make_paths())
        assert len(view.restrict_vps([])) == 0
