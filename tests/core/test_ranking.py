"""Tests for the Ranking container."""

import pytest

from repro.core.ranking import RankEntry, Ranking


class TestFromScores:
    def test_descending_order(self):
        ranking = Ranking.from_scores("m", {1: 5.0, 2: 9.0, 3: 7.0})
        assert ranking.top_asns(3) == [2, 3, 1]
        assert [entry.rank for entry in ranking] == [1, 2, 3]

    def test_tie_breaks_on_asn(self):
        ranking = Ranking.from_scores("m", {9: 5.0, 3: 5.0, 7: 5.0})
        assert ranking.top_asns(3) == [3, 7, 9]

    def test_shares_attached(self):
        ranking = Ranking.from_scores("m", {1: 5.0}, shares={1: 0.42})
        assert ranking.share_of(1) == 0.42
        assert ranking.entries[0].share_pct() == pytest.approx(42.0)

    def test_empty(self):
        ranking = Ranking.from_scores("m", {})
        assert len(ranking) == 0
        assert ranking.top() == []


class TestLookups:
    @pytest.fixture
    def ranking(self):
        return Ranking.from_scores("m", {1: 5.0, 2: 9.0}, country="AU")

    def test_rank_of(self, ranking):
        assert ranking.rank_of(2) == 1
        assert ranking.rank_of(1) == 2
        assert ranking.rank_of(99) is None

    def test_value_of(self, ranking):
        assert ranking.value_of(2) == 9.0
        assert ranking.value_of(99) == 0.0

    def test_share_of_missing(self, ranking):
        assert ranking.share_of(2) is None

    def test_top_k(self, ranking):
        assert len(ranking.top(1)) == 1
        assert ranking.top(10) == ranking.entries


class TestPresentation:
    def test_render_contains_entries(self):
        ranking = Ranking.from_scores(
            "AHN:AU", {1221: 0.23, 4826: 0.16},
            shares={1221: 0.23, 4826: 0.16}, country="AU",
        )
        text = ranking.render(2, name_of=lambda asn: f"name{asn}")
        assert "AHN:AU" in text
        assert "1221" in text and "name1221" in text
        assert "23.0%" in text

    def test_render_no_duplicate_country(self):
        ranking = Ranking.from_scores("AHN:AU", {1: 1.0}, country="AU")
        assert "(AU)" not in ranking.render(1)

    def test_rank_changes(self):
        before = Ranking.from_scores("m", {1: 3.0, 2: 2.0, 3: 1.0})
        after = Ranking.from_scores("m", {2: 3.0, 1: 2.0})
        changes = before.rank_changes(after, k=3)
        assert changes == [(1, 1, 2), (2, 2, 1), (3, 3, None)]


class TestEquality:
    def test_value_equality_across_instances(self):
        a = Ranking.from_scores("AHN", {1: 3.0, 2: 2.0}, country="AU")
        b = Ranking.from_scores("AHN", {1: 3.0, 2: 2.0}, country="AU")
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_metric_country_and_entries_all_matter(self):
        base = Ranking.from_scores("AHN", {1: 3.0, 2: 2.0}, country="AU")
        assert base != Ranking.from_scores("CCN", {1: 3.0, 2: 2.0}, country="AU")
        assert base != Ranking.from_scores("AHN", {1: 3.0, 2: 2.0}, country="US")
        assert base != Ranking.from_scores("AHN", {1: 3.0, 2: 1.0}, country="AU")

    def test_other_types_unequal(self):
        assert Ranking.from_scores("AHN", {}) != "AHN"


class TestRankEntry:
    def test_share_pct_none(self):
        assert RankEntry(1, 42, 1.0).share_pct() == 0.0
