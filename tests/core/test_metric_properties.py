"""Property-based invariants of the ranking metrics over a real
pipeline run (cheap to check, strong to hold)."""

import math

import pytest

from repro import GeneratorConfig, generate_world, run_pipeline, small_profiles
from repro.core.cone import cone_addresses, customer_cones, prefix_cones, transit_suffix
from repro.core.hegemony import hegemony_scores, local_hegemony


@pytest.fixture(scope="module")
def result():
    world = generate_world(
        GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
        seed=12,
    )
    return run_pipeline(world)


class TestConeInvariants:
    def test_every_as_in_own_cone(self, result):
        cones = customer_cones(result.paths.records, result.oracle)
        for asn, members in cones.items():
            assert asn in members

    def test_suffix_always_ends_at_origin(self, result):
        for record in result.paths.records[:2000]:
            suffix = transit_suffix(record.path, result.oracle)
            assert suffix[-1] == record.origin
            assert len(suffix) >= 1

    def test_suffix_is_contiguous_tail(self, result):
        for record in result.paths.records[:2000]:
            suffix = transit_suffix(record.path, result.oracle)
            assert record.path.asns[-len(suffix):] == suffix

    def test_origin_prefixes_in_own_prefix_cone(self, result):
        cones = prefix_cones(result.paths.records, result.oracle)
        observed: dict[int, set] = {}
        for record in result.paths.records:
            observed.setdefault(record.origin, set()).add(record.prefix)
        for origin, prefixes in observed.items():
            assert prefixes <= cones.get(origin, set())

    def test_cone_addresses_bounded_by_view_total(self, result):
        view = result.view("global")
        total = view.total_addresses()
        for asn, addresses in cone_addresses(view.records, result.oracle).items():
            assert 0 < addresses <= total

    def test_provider_cone_superset_on_p2c_chains(self, result):
        """If every observed path into B's cone passes A→B (sole
        provider), then cone(A) ⊇ cone(B). Check the weaker, always-true
        variant: any AS observed downstream of A on a suffix has its
        own suffix-tail inside A's cone for that same path."""
        cones = customer_cones(result.paths.records, result.oracle)
        for record in result.paths.records[:500]:
            suffix = transit_suffix(record.path, result.oracle)
            for index, asn in enumerate(suffix):
                assert set(suffix[index:]) <= cones[asn]


class TestHegemonyInvariants:
    def test_scores_within_unit_interval(self, result):
        scores = hegemony_scores(result.paths.records)
        for asn, value in scores.items():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_local_hegemony_of_origin_is_high(self, result):
        """Every path toward an origin contains the origin, so its own
        local hegemony is 1 (modulo trimming of empty VPs)."""
        origins = {record.origin for record in result.paths.records}
        for origin in sorted(origins)[:10]:
            scores = local_hegemony(result.paths.records, origin)
            if scores:
                assert scores[origin] == pytest.approx(1.0)

    def test_restricting_views_never_invents_ases(self, result):
        for country in ("AU", "US"):
            view_ases = {
                asn
                for record in result.view("international", country).records
                for asn in record.path.asns
            }
            ranking = result.ranking("AHI", country)
            assert {entry.asn for entry in ranking.entries} <= view_ases

    def test_ndcg_of_full_ranking_is_exactly_one(self, result):
        from repro.core.ndcg import ndcg

        ranking = result.ranking("AHI", "AU")
        assert ndcg(ranking, ranking) == pytest.approx(1.0)

    def test_share_sums_exceed_one_are_fine_but_finite(self, result):
        """Hegemony shares overlap (many ASes on one path); the sum is
        bounded by the mean path length, not by 1."""
        scores = hegemony_scores(result.paths.records)
        total = sum(scores.values())
        mean_path_len = sum(
            len(record.path) for record in result.paths.records
        ) / len(result.paths.records)
        assert total <= mean_path_len + 1.0
        assert math.isfinite(total)
