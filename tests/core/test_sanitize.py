"""Tests for the Table-1 sanitization pipeline."""

import pytest

from repro.bgp.announcement import RibRecord
from repro.bgp.collectors import Collector, CollectorProject, CollectorSet, VantagePoint
from repro.core.sanitize import FilterReport, is_poisoned, sanitize
from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import geolocate_prefixes
from repro.geo.vp_geo import VPGeolocator
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

CLIQUE = frozenset({100, 101})
ROUTE_SERVERS = frozenset({777})
ALLOCATED = set(range(1, 200)) | {777}


def vp_fixture():
    collectors = CollectorSet()
    local = collectors.add(Collector("local", CollectorProject.RIS, "US"))
    remote = collectors.add(
        Collector("remote", CollectorProject.ROUTEVIEWS, "US", multihop=True)
    )
    located = local.add_vp("192.0.2.1", 1)
    unlocated = remote.add_vp("192.0.2.9", 9)
    return VPGeolocator(collectors), located, unlocated


def geo_fixture():
    db = GeoDatabase()
    db.assign(Prefix.parse("10.0.0.0/8"), "US")
    db.assign(Prefix.parse("12.0.0.0/9"), "US")
    db.assign(Prefix.parse("12.128.0.0/9"), "CA")
    prefixes = [
        Prefix.parse("10.0.0.0/16"),
        Prefix.parse("10.1.0.0/16"),
        Prefix.parse("10.1.0.0/17"),
        Prefix.parse("10.1.128.0/17"),
        Prefix.parse("12.0.0.0/8"),
    ]
    return geolocate_prefixes(prefixes, db), prefixes


def rib(vp, prefix, path, days_present=5, total_days=5):
    return RibRecord(
        vp=vp,
        prefix=Prefix.parse(prefix) if isinstance(prefix, str) else prefix,
        path=ASPath.parse(path) if isinstance(path, str) else path,
        days_present=days_present,
        total_days=total_days,
    )


def run(records):
    vp_geo, located, unlocated = vp_fixture()
    prefix_geo, _ = geo_fixture()
    return sanitize(
        records,
        clique=CLIQUE,
        is_allocated=lambda asn: asn in ALLOCATED,
        route_servers=ROUTE_SERVERS,
        vp_geo=vp_geo,
        prefix_geo=prefix_geo,
    )


class TestPoisoningDetector:
    def test_non_clique_between_clique(self):
        assert is_poisoned(ASPath.of(1, 100, 55, 101, 2), CLIQUE)

    def test_adjacent_clique_clean(self):
        assert not is_poisoned(ASPath.of(1, 100, 101, 2), CLIQUE)

    def test_prepending_not_poisoning(self):
        assert not is_poisoned(ASPath.of(1, 100, 100, 101, 2), CLIQUE)

    def test_non_clique_path_clean(self):
        assert not is_poisoned(ASPath.of(1, 2, 3), CLIQUE)


class TestFilters:
    def setup_method(self):
        self.vp_geo, self.located, self.unlocated = vp_fixture()

    def test_accepts_clean_record(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 2 3")])
        assert len(result.records) == 1
        assert result.report.accepted == 5
        record = result.records[0]
        assert record.vp_country == "US"
        assert record.prefix_country == "US"
        assert record.addresses == 1 << 16

    def test_unstable_rejected(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 2 3", days_present=3)])
        assert not result.records
        assert result.report.rejected["unstable"] == 3

    def test_unallocated_rejected(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 500000 3")])
        assert result.report.rejected["unallocated"] == 5

    def test_loop_rejected(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 2 1 3")])
        assert result.report.rejected["loop"] == 5

    def test_poisoned_rejected(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 100 55 101 3")])
        assert result.report.rejected["poisoned"] == 5

    def test_multihop_vp_rejected(self):
        result = run([rib(self.unlocated, "10.0.0.0/16", "9 2 3")])
        assert result.report.rejected["vp_no_location"] == 5

    def test_covered_prefix_rejected(self):
        result = run([rib(self.located, "10.1.0.0/16", "1 2 3")])
        assert result.report.rejected["covered"] == 5

    def test_no_consensus_prefix_rejected(self):
        result = run([rib(self.located, "12.0.0.0/8", "1 2 3")])
        assert result.report.rejected["prefix_no_location"] == 5

    def test_prepending_collapsed_not_rejected(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 2 2 2 3")])
        assert result.records[0].path == ASPath.of(1, 2, 3)
        assert result.report.accepted == 5

    def test_route_server_stripped(self):
        result = run([rib(self.located, "10.0.0.0/16", "1 777 2 3")])
        assert result.records[0].path == ASPath.of(1, 2, 3)

    def test_filter_order_unstable_first(self):
        # Unstable beats every other defect.
        result = run([rib(self.located, "10.0.0.0/16", "1 2 1 3", days_present=2)])
        assert result.report.rejected["unstable"] == 2
        assert result.report.rejected["loop"] == 0


class TestReportAccounting:
    def test_totals_add_up(self):
        vp_geo, located, unlocated = vp_fixture()
        records = [
            rib(located, "10.0.0.0/16", "1 2 3"),
            rib(located, "10.0.0.0/16", "1 2 1 3"),
            rib(unlocated, "10.0.0.0/16", "9 2 3"),
            rib(located, "10.1.0.0/16", "1 2 3", days_present=4),
        ]
        result = run(records)
        report = result.report
        assert report.total == 5 + 5 + 5 + 4
        assert report.accepted + report.rejected_total() == report.total

    def test_rows_render(self):
        report = FilterReport()
        report.total = 10
        report.accepted = 8
        report.rejected["loop"] = 2
        rows = dict((label, count) for label, count, _ in report.as_rows())
        assert rows["rejected"] == 2
        assert rows["accepted"] == 8
        assert rows["total"] == 10
        assert "loop" in report.render()

    def test_empty_report(self):
        report = FilterReport()
        assert report.pct(0) == 0.0
        assert report.as_rows()[-1] == ("total", 0, 0.0)

    def test_rejection_samples_kept(self):
        vp_geo, located, _ = vp_fixture()
        records = [
            rib(located, "10.0.0.0/16", f"1 2 1 {i}") for i in range(3, 12)
        ]
        result = run(records)
        samples = result.report.samples["loop"]
        assert 0 < len(samples) <= result.report.sample_limit
        assert all(r.path.has_loop() for r in samples)


class TestPathSet:
    def test_aggregates(self):
        vp_geo, located, _ = vp_fixture()
        result = run([
            rib(located, "10.0.0.0/16", "1 2 3"),
            rib(located, "10.1.0.0/17", "1 2 4"),
        ])
        assert [vp.ip for vp in result.vps()] == ["192.0.2.1"]
        assert result.countries() == ["US"]
        totals = result.country_addresses()
        assert totals["US"] == (1 << 16) + (1 << 15)  # the /16 plus the /17
