"""Tests for the AHC (IHR country hegemony) baseline."""

import pytest

from repro.bgp.collectors import VantagePoint
from repro.core.ahc import ahc_ranking, ahc_scores
from repro.core.sanitize import FilterReport, PathRecord, PathSet
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def record(vp_ip, path, prefix, prefix_country="AU"):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country="US",
        prefix=Prefix.parse(prefix),
        prefix_country=prefix_country,
        path=ASPath.parse(path),
        addresses=Prefix.parse(prefix).num_addresses(),
    )


class TestAhcScores:
    def test_equal_weighting_across_origins(self):
        # Origin 8 (one big prefix) depends on AS 5; origin 9 (one small
        # prefix) depends on AS 6. AHC weights the origins equally, so
        # AS 5 and AS 6 tie despite the address difference.
        records = [
            record("10.0.0.1", "1 5 8", "1.0.0.0/8"),
            record("10.0.0.1", "1 6 9", "2.0.0.0/24"),
        ]
        scores = ahc_scores(records, country_origins=[8, 9])
        assert scores[5] == pytest.approx(scores[6])
        assert scores[5] == pytest.approx(0.5)

    def test_shared_transit_scores_double(self):
        records = [
            record("10.0.0.1", "1 5 8", "1.0.0.0/24"),
            record("10.0.0.1", "1 5 9", "2.0.0.0/24"),
        ]
        scores = ahc_scores(records, country_origins=[8, 9])
        assert scores[5] == pytest.approx(1.0)

    def test_registration_country_selector(self):
        # Origin 9's prefix geolocates to AU but 9 is NOT registered in
        # the target country: AHC ignores it (the Amazon discrepancy).
        records = [
            record("10.0.0.1", "1 5 8", "1.0.0.0/24"),
            record("10.0.0.1", "1 6 9", "2.0.0.0/24", prefix_country="AU"),
        ]
        scores = ahc_scores(records, country_origins=[8])
        assert 6 not in scores

    def test_unobserved_origins_do_not_dilute(self):
        records = [record("10.0.0.1", "1 5 8", "1.0.0.0/24")]
        scores = ahc_scores(records, country_origins=[8, 42, 43])
        assert scores[5] == pytest.approx(1.0)

    def test_no_observed_origins(self):
        assert ahc_scores([], country_origins=[8]) == {}


class TestAhcRanking:
    def test_ranking(self):
        records = [
            record("10.0.0.1", "1 5 8", "1.0.0.0/24"),
            record("10.0.0.1", "1 5 9", "2.0.0.0/24"),
            record("10.0.0.1", "1 6 9", "3.0.0.0/24"),
        ]
        paths = PathSet(records=records, report=FilterReport())
        ranking = ahc_ranking(paths, "AU", [8, 9])
        assert ranking.metric == "AHC:AU"
        assert ranking.rank_of(5) is not None
        assert ranking.rank_of(1) == 1  # the VP-side AS is on every path
