"""Hegemony tests, including the paper's Figure 2 trimming example."""

import pytest

from repro.bgp.collectors import VantagePoint
from repro.core.hegemony import (
    hegemony_ranking,
    hegemony_scores,
    local_hegemony,
    per_vp_scores,
    trimmed_mean,
    trimmed_scores,
    trimmed_scores_sparse,
    validate_trim,
)
from repro.core.sanitize import PathRecord
from repro.core.views import View
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def record(vp_ip, path, prefix, addresses=256, country="US"):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country=country,
        prefix=Prefix.parse(prefix),
        prefix_country=country,
        path=ASPath.parse(path),
        addresses=addresses,
    )


class TestTrimmedMean:
    def test_empty(self):
        assert trimmed_mean([], 0.1) == 0.0

    def test_single_value_kept(self):
        assert trimmed_mean([0.7], 0.1) == 0.7

    def test_two_values_kept(self):
        assert trimmed_mean([0.2, 0.8], 0.1) == pytest.approx(0.5)

    def test_three_values_keep_median(self):
        """The paper's Figure 2: scores 1, 0.67, 0.33 -> 0.67 survives."""
        assert trimmed_mean([1.0, 0.67, 0.33], 0.1) == pytest.approx(0.67)

    def test_large_sample_trims_tails(self):
        values = [0.0] * 2 + [0.5] * 16 + [1.0] * 2
        assert trimmed_mean(values, 0.1) == pytest.approx(0.5)

    def test_order_invariant(self):
        assert trimmed_mean([3.0, 1.0, 2.0], 0.1) == trimmed_mean([1.0, 2.0, 3.0], 0.1)


class TestHegemonyScores:
    def test_figure2_example(self):
        """Three VPs score AS 1 at 1.0, 2/3 and 1/3; hegemony = 2/3."""
        records = [
            # VP a: all 3 paths contain AS 1.
            record("10.0.0.1", "1 8", "10.8.0.0/24"),
            record("10.0.0.1", "1 9", "10.9.0.0/24"),
            record("10.0.0.1", "1 7 6", "10.6.0.0/24"),
            # VP b: 2 of 3 paths contain AS 1.
            record("10.0.0.2", "2 1 8", "10.8.0.0/24"),
            record("10.0.0.2", "2 1 9", "10.9.0.0/24"),
            record("10.0.0.2", "2 6", "10.6.0.0/24"),
            # VP c: 1 of 3 paths contains AS 1.
            record("10.0.0.3", "3 1 8", "10.8.0.0/24"),
            record("10.0.0.3", "3 9", "10.9.0.0/24"),
            record("10.0.0.3", "3 6", "10.6.0.0/24"),
        ]
        scores = hegemony_scores(records)
        assert scores[1] == pytest.approx(2 / 3)

    def test_address_weighting(self):
        # One VP; AS 5 is on the path carrying 3/4 of the addresses.
        records = [
            record("10.0.0.1", "9 5 8", "10.8.0.0/22", addresses=768),
            record("10.0.0.1", "9 7", "10.7.0.0/24", addresses=256),
        ]
        scores = hegemony_scores(records)
        assert scores[5] == pytest.approx(0.75)
        assert scores[9] == pytest.approx(1.0)

    def test_origin_counted(self):
        records = [record("10.0.0.1", "9 5 8", "10.8.0.0/24")]
        assert hegemony_scores(records)[8] == pytest.approx(1.0)

    def test_unseen_vp_contributes_zero(self):
        # Five VPs see the prefix set, only one path crosses AS 5: with
        # trimming, AS 5's zeros dominate.
        records = [
            record(f"10.0.0.{i}", f"{10 + i} 8", "10.8.0.0/24") for i in range(1, 5)
        ]
        records.append(record("10.0.0.9", "19 5 8", "10.8.0.0/24"))
        scores = hegemony_scores(records)
        assert scores[5] < 0.5

    def test_zero_weight_records_ignored(self):
        records = [record("10.0.0.1", "9 8", "10.8.0.0/24", addresses=0)]
        assert hegemony_scores(records) == {}

    def test_trim_validated(self):
        with pytest.raises(ValueError):
            hegemony_scores([], trim=0.6)

    def test_prefix_weighting_counts_paths_equally(self):
        records = [
            record("10.0.0.1", "9 5 8", "10.8.0.0/22", addresses=768),
            record("10.0.0.1", "9 7", "10.7.0.0/24", addresses=256),
        ]
        by_addresses = hegemony_scores(records, weighting="addresses")
        by_prefixes = hegemony_scores(records, weighting="prefixes")
        assert by_addresses[5] == pytest.approx(0.75)
        assert by_prefixes[5] == pytest.approx(0.5)

    def test_unknown_weighting_rejected(self):
        records = [record("10.0.0.1", "9 8", "10.8.0.0/24")]
        with pytest.raises(ValueError):
            hegemony_scores(records, weighting="users")


class TestTrimEquivalence:
    """Dense and sparse trimming must agree — values and rejections."""

    def build_table(self):
        records = [
            record(f"10.0.{j}.{i}", f"{20 + i} {4 + (i + j) % 3} 8",
                   f"10.{j}.{i}.0/24", addresses=128 * (1 + (i * j) % 5))
            for j in range(3) for i in range(1, 8)
        ]
        return per_vp_scores(records)

    def test_dense_equals_sparse_across_trims(self):
        per_vp, universe = self.build_table()
        for trim in (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.49):
            dense = trimmed_scores(per_vp, universe, trim)
            sparse = trimmed_scores_sparse(per_vp, universe, trim)
            assert dense == sparse  # exact, not approx

    @pytest.mark.parametrize("trim", [-0.01, 0.5, 0.6, 1.0])
    def test_both_paths_reject_identically(self, trim):
        per_vp, universe = self.build_table()
        with pytest.raises(ValueError, match="trim out of range") as dense:
            trimmed_scores(per_vp, universe, trim)
        with pytest.raises(ValueError, match="trim out of range") as sparse:
            trimmed_scores_sparse(per_vp, universe, trim)
        assert str(dense.value) == str(sparse.value)

    def test_validate_trim_accepts_valid_range(self):
        assert validate_trim(0.0) == 0.0
        assert validate_trim(0.49) == 0.49

    def test_ranking_entry_points_reject(self):
        records = (record("10.0.0.1", "9 5 8", "10.8.0.0/24"),)
        view = View("t", "AU", records)
        with pytest.raises(ValueError, match="trim out of range"):
            hegemony_ranking(view, trim=0.5)

    def test_cti_and_ahc_entry_points_reject(self):
        from repro.core.ahc import ahc_scores
        from repro.core.cti import cti_scores
        from repro.relationships.inference import infer_relationships

        records = [record("10.0.0.1", "9 5 8", "10.8.0.0/24")]
        oracle = infer_relationships(r.path for r in records)
        with pytest.raises(ValueError, match="trim out of range"):
            cti_scores(records, oracle, 256, trim=0.5)
        with pytest.raises(ValueError, match="trim out of range"):
            ahc_scores(records, [8], trim=-0.1)


class TestLocalHegemony:
    def test_restricts_to_origin(self):
        records = [
            record("10.0.0.1", "9 5 8", "10.8.0.0/24"),
            record("10.0.0.1", "9 7 6", "10.6.0.0/24"),
        ]
        scores = local_hegemony(records, origin=8)
        assert scores[5] == pytest.approx(1.0)
        assert 7 not in scores


class TestHegemonyRanking:
    def test_ranking_shares_are_scores(self):
        records = (
            record("10.0.0.1", "9 5 8", "10.8.0.0/24"),
            record("10.0.0.1", "9 7", "10.7.0.0/24"),
        )
        ranking = hegemony_ranking(View("t", "AU", records))
        assert ranking.metric == "AH:AU"
        assert ranking.share_of(9) == pytest.approx(ranking.value_of(9))
        assert ranking.rank_of(9) == 1
