"""Tests for DCG / NDCG (paper §4.1)."""

import math

import pytest

from repro.core.ndcg import dcg, ndcg
from repro.core.ranking import Ranking


def ranking(metric, scores):
    return Ranking.from_scores(metric, scores)


class TestDCG:
    def test_empty(self):
        assert dcg([]) == 0.0

    def test_single(self):
        assert dcg([4.0]) == pytest.approx(4.0)

    def test_discounting(self):
        assert dcg([1.0, 1.0]) == pytest.approx(1.0 + 1.0 / math.log2(3))

    def test_order_matters(self):
        assert dcg([2.0, 1.0]) > dcg([1.0, 2.0])


class TestNDCG:
    def test_identical_rankings(self):
        full = ranking("m", {1: 10.0, 2: 5.0, 3: 1.0})
        assert ndcg(full, full) == pytest.approx(1.0)

    def test_same_order_different_values(self):
        full = ranking("m", {1: 10.0, 2: 5.0, 3: 1.0})
        sample = ranking("m", {1: 100.0, 2: 50.0, 3: 10.0})
        assert ndcg(full, sample) == pytest.approx(1.0)

    def test_swapped_order_scores_lower(self):
        full = ranking("m", {1: 10.0, 2: 5.0, 3: 1.0})
        sample = ranking("m", {2: 10.0, 1: 5.0, 3: 1.0})
        value = ndcg(full, sample)
        assert 0.0 < value < 1.0

    def test_never_exceeds_one(self):
        full = ranking("m", {1: 10.0, 2: 9.0, 3: 8.0, 4: 1.0})
        for permutation in ([4, 3, 2, 1], [2, 4, 1, 3], [1, 2, 3, 4]):
            sample = ranking(
                "m", {asn: float(len(permutation) - i) for i, asn in enumerate(permutation)}
            )
            assert ndcg(full, sample) <= 1.0 + 1e-12

    def test_junk_sample_scores_low(self):
        full = ranking("m", {i: float(100 - i) for i in range(1, 20)})
        junk = ranking("m", {i: 1.0 for i in range(50, 60)})
        assert ndcg(full, junk) == pytest.approx(0.0)

    def test_empty_full_ranking(self):
        assert ndcg(ranking("m", {}), ranking("m", {1: 1.0})) == 0.0

    def test_k_limits_depth(self):
        full = ranking("m", {1: 10.0, 2: 5.0, 3: 1.0})
        sample = ranking("m", {1: 10.0, 3: 5.0, 2: 1.0})
        assert ndcg(full, sample, k=1) == pytest.approx(1.0)
        assert ndcg(full, sample, k=3) < 1.0
