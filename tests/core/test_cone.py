"""Customer-cone tests, including the paper's Figure 1 worked example."""

import pytest

from repro.bgp.collectors import VantagePoint
from repro.core.cone import (
    cone_addresses,
    cone_ranking,
    customer_cones,
    prefix_cones,
    transit_suffix,
)
from repro.core.sanitize import PathRecord
from repro.core.views import View
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.model import ASGraph


def record(vp_asn, path, prefix="10.0.0.0/24", country="US", addresses=None):
    prefix_obj = Prefix.parse(prefix)
    return PathRecord(
        vp=VantagePoint(f"192.0.2.{vp_asn}", vp_asn, "c"),
        vp_country=country,
        prefix=prefix_obj,
        prefix_country=country,
        path=ASPath.parse(path) if isinstance(path, str) else path,
        addresses=addresses if addresses is not None else prefix_obj.num_addresses(),
    )


@pytest.fixture
def figure1_graph():
    """The topology of the paper's Figure 1.

    A, B, C are mutual peers. C<D, D<E, D<F, A<G, B<H (provider<customer).
    ASNs: A=1, B=2, C=3, D=4, E=5, F=6, G=7, H=8.
    """
    graph = ASGraph()
    for asn in range(1, 9):
        graph.add_as(asn)
    graph.add_p2p(1, 2)
    graph.add_p2p(1, 3)
    graph.add_p2p(2, 3)
    graph.add_p2c(3, 4)  # C<D
    graph.add_p2c(4, 5)  # D<E
    graph.add_p2c(4, 6)  # D<F
    graph.add_p2c(1, 7)  # A<G
    graph.add_p2c(2, 8)  # B<H
    return graph


class TestTransitSuffix:
    def test_pure_downhill(self, figure1_graph):
        # C D E is all provider->customer.
        assert transit_suffix(ASPath.of(3, 4, 5), figure1_graph) == (3, 4, 5)

    def test_peer_link_cuts(self, figure1_graph):
        # G A B H: c2p, p2p, p2c -> suffix is B H.
        assert transit_suffix(ASPath.of(7, 1, 2, 8), figure1_graph) == (2, 8)

    def test_climb_then_descend(self, figure1_graph):
        # G A C D E: c2p, p2p, p2c, p2c -> suffix C D E.
        assert transit_suffix(ASPath.of(7, 1, 3, 4, 5), figure1_graph) == (3, 4, 5)

    def test_origin_only(self, figure1_graph):
        # H B A G: c2p, p2p, p2c -> suffix A G... from H's side.
        assert transit_suffix(ASPath.of(8, 2, 1, 7), figure1_graph) == (1, 7)

    def test_unknown_link_stops(self, figure1_graph):
        # 99 is not in the graph: the unknown link bounds the suffix.
        assert transit_suffix(ASPath.of(99, 4, 5), figure1_graph) == (4, 5)

    def test_single_as(self, figure1_graph):
        assert transit_suffix(ASPath.of(5), figure1_graph) == (5,)


class TestFigure1Cones:
    """Reproduce Figure 1's cones from its two VPs' paths."""

    @pytest.fixture
    def records(self):
        # VP v_g in G sees: C<D<E, C<D<F (via A C D ...) and B<H (via A B H).
        # VP v_h in H sees the same C branch (via B C D ...) and A<G.
        return [
            record(7, ASPath.of(7, 1, 3, 4, 5), prefix="10.5.0.0/24"),
            record(7, ASPath.of(7, 1, 3, 4, 6), prefix="10.6.0.0/24"),
            record(7, ASPath.of(7, 1, 2, 8), prefix="10.8.0.0/24"),
            record(8, ASPath.of(8, 2, 3, 4, 5), prefix="10.5.0.0/24"),
            record(8, ASPath.of(8, 2, 3, 4, 6), prefix="10.6.0.0/24"),
            record(8, ASPath.of(8, 2, 1, 7), prefix="10.7.0.0/24"),
        ]

    def test_as_cones(self, figure1_graph, records):
        cones = customer_cones(records, figure1_graph)
        assert cones[3] == {3, 4, 5, 6}  # C sees D, E, F downstream
        assert cones[4] == {4, 5, 6}
        assert cones[2] == {2, 8}  # B<H seen from v_g
        assert cones[1] == {1, 7}  # A<G seen from v_h
        assert cones[5] == {5}

    def test_prefix_cones(self, figure1_graph, records):
        cones = prefix_cones(records, figure1_graph)
        assert cones[4] == {Prefix.parse("10.5.0.0/24"), Prefix.parse("10.6.0.0/24")}
        assert cones[2] == {Prefix.parse("10.8.0.0/24")}

    def test_cone_addresses(self, figure1_graph, records):
        addresses = cone_addresses(records, figure1_graph)
        assert addresses[4] == 2 * 256
        assert addresses[3] == 2 * 256
        assert addresses[1] == 256

    def test_addresses_not_double_counted(self, figure1_graph):
        # The same prefix seen from two VPs counts once.
        records = [
            record(7, ASPath.of(7, 1, 3, 4, 5), prefix="10.5.0.0/24"),
            record(8, ASPath.of(8, 2, 3, 4, 5), prefix="10.5.0.0/24"),
        ]
        assert cone_addresses(records, figure1_graph)[4] == 256


class TestConeRanking:
    def test_ranking_and_shares(self, figure1_graph):
        records = (
            record(7, ASPath.of(7, 1, 3, 4, 5), prefix="10.5.0.0/24"),
            record(7, ASPath.of(7, 1, 3, 4, 6), prefix="10.6.0.0/23"),
        )
        view = View("test", "US", records)
        ranking = cone_ranking(view, figure1_graph)
        # Total space = 256 + 512; C and D carry all of it.
        assert ranking.rank_of(3) in (1, 2)
        assert ranking.share_of(3) == pytest.approx(1.0)
        assert ranking.share_of(5) == pytest.approx(256 / 768)

    def test_explicit_denominator(self, figure1_graph):
        records = (record(7, ASPath.of(7, 1, 3, 4, 5), prefix="10.5.0.0/24"),)
        view = View("test", "US", records)
        ranking = cone_ranking(view, figure1_graph, total_addresses=2560)
        assert ranking.share_of(4) == pytest.approx(0.1)

    def test_metric_name_default(self, figure1_graph):
        view = View("test", "AU", (record(7, ASPath.of(7, 1, 3, 4, 5)),))
        assert cone_ranking(view, figure1_graph).metric == "CC:AU"
