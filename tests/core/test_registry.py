"""Unit tests for the metric registry — the single source of truth."""

import pytest

from repro.core.pipeline import ALL_METRICS, COUNTRY_METRICS, GLOBAL_METRICS
from repro.core.registry import (
    METRICS,
    VIEW_KINDS,
    MetricSpec,
    canonical_name,
    get_spec,
    iter_specs,
    maybe_spec,
    metric_names,
    normalize_country,
    paper_metrics,
    register,
    specs,
)


class TestLookup:
    def test_get_spec_canonicalises_case(self):
        assert get_spec("ahn") is get_spec("AHN")
        assert get_spec(" cci ").name == "CCI"

    def test_get_spec_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_spec("NOPE")

    def test_maybe_spec(self):
        assert maybe_spec("AHG").name == "AHG"
        assert maybe_spec("nope") is None

    def test_canonical_name(self):
        assert canonical_name(" ahc-a ") == "AHC-A"

    def test_iter_specs_matches_registry_order(self):
        assert tuple(spec.name for spec in iter_specs()) == tuple(METRICS)


class TestCatalog:
    def test_original_ten_metrics_lead_the_catalog(self):
        assert ALL_METRICS[:10] == (
            "CCI", "CCN", "AHI", "AHN", "AHC", "CTI", "CCO", "AHO",
            "CCG", "AHG",
        )

    def test_country_and_global_partition(self):
        assert set(COUNTRY_METRICS) | set(GLOBAL_METRICS) == set(ALL_METRICS)
        assert not set(COUNTRY_METRICS) & set(GLOBAL_METRICS)
        assert "AHC" in COUNTRY_METRICS  # global view, yet country-scoped
        assert GLOBAL_METRICS[:2] == ("CCG", "AHG")

    def test_paper_metrics(self):
        assert paper_metrics() == ("CCI", "CCN", "AHI", "AHN")
        assert paper_metrics("national") == ("CCN", "AHN")
        assert paper_metrics("international") == ("CCI", "AHI")

    def test_view_kinds_are_valid(self):
        for spec in iter_specs():
            assert spec.view_kind in VIEW_KINDS

    def test_replayability(self):
        assert not get_spec("AHC").replayable
        assert not get_spec("CTI").replayable
        assert not get_spec("AHC-A").replayable
        for name in ("CCI", "CCN", "AHI", "AHN", "CCO", "AHO", "CCG", "AHG"):
            assert get_spec(name).replayable

    def test_variants_are_data(self):
        assert get_spec("AHG-P").weighting == "prefixes"
        assert get_spec("AHC-A").weighting == "addresses"
        assert get_spec("AHG-P").compute is get_spec("AHG").compute
        assert get_spec("AHC-A").compute is get_spec("AHC").compute
        for name in ("AHG-P", "AHI-P", "AHN-P", "AHC-A"):
            assert "variant" in get_spec(name).tags

    def test_filters(self):
        assert metric_names(tag="baseline", needs_country=True) == ("AHC", "CTI")
        assert metric_names(tag="baseline", needs_country=False) == ("CCG", "AHG")
        assert metric_names(tag="outbound") == ("CCO", "AHO")
        for spec in specs(replayable=False):
            assert spec.name in ("AHC", "CTI", "AHC-A")

    def test_ah_metrics_never_need_an_oracle(self):
        for spec in iter_specs():
            assert spec.needs_oracle == (spec.family in ("cone", "cti"))


class TestSpecBehaviour:
    def test_label_for(self):
        assert get_spec("AHN").label_for("AU") == "AHN:AU"
        assert get_spec("CCG").label_for(None) == "CCG"
        assert get_spec("AHC-A").label_for("US") == "AHC-A:US"

    def test_unit_key(self):
        assert get_spec("CCI").unit_key("AU") == "ranking:CCI:AU"
        assert get_spec("AHG").unit_key(None) == "ranking:AHG:<global>"

    def test_require_country(self):
        assert get_spec("AHN").require_country("AU") == "AU"
        assert get_spec("CCG").require_country("AU") is None
        with pytest.raises(ValueError, match="requires a country"):
            get_spec("AHN").require_country(None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(get_spec("CCI"))

    def test_non_canonical_name_rejected(self):
        spec = get_spec("CCI")
        with pytest.raises(ValueError, match="canonical"):
            MetricSpec(
                name="cci2", family=spec.family, view_kind=spec.view_kind,
                needs_country=True, replayable=True, label=spec.label,
                description="x", compute=spec.compute,
            )

    def test_unknown_view_kind_rejected(self):
        spec = get_spec("CCI")
        with pytest.raises(ValueError, match="view kind"):
            MetricSpec(
                name="CCI2", family=spec.family, view_kind="sideways",
                needs_country=True, replayable=True, label=spec.label,
                description="x", compute=spec.compute,
            )


class TestNormalizeCountry:
    def test_upper_and_strip(self):
        assert normalize_country("au") == "AU"
        assert normalize_country(" us ") == "US"
        assert normalize_country("JP") == "JP"

    def test_none_passes_through(self):
        assert normalize_country(None) is None
