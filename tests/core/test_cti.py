"""Tests for the CTI baseline."""

import pytest

from repro.bgp.collectors import VantagePoint
from repro.core.cti import cti_ranking, cti_scores
from repro.core.sanitize import PathRecord
from repro.core.views import View
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.model import ASGraph


def graph_chain():
    """1 -> 2 -> 3 (providers left), plus peer 1 -- 9."""
    graph = ASGraph()
    for asn in (1, 2, 3, 9):
        graph.add_as(asn)
    graph.add_p2c(1, 2)
    graph.add_p2c(2, 3)
    graph.add_p2p(1, 9)
    return graph


def record(vp_ip, path, prefix, country="AU"):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country="US",
        prefix=Prefix.parse(prefix),
        prefix_country=country,
        path=ASPath.parse(path),
        addresses=Prefix.parse(prefix).num_addresses(),
    )


class TestCtiScores:
    def test_reverse_distance_weights(self):
        graph = graph_chain()
        records = [record("10.0.0.1", "1 2 3", "1.0.0.0/24")]
        scores = cti_scores(records, graph, total_addresses=256)
        # Origin 3 scores 0 (not present); 2 is 1 hop up: weight 1/1;
        # 1 is 2 hops up: weight 1/2.
        assert 3 not in scores
        assert scores[2] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.5)

    def test_transit_only(self):
        graph = graph_chain()
        # Path crossing the 9--1 peer link: 9 is not on the transit
        # suffix, so it never scores.
        records = [record("10.0.0.9", "9 1 2 3", "1.0.0.0/24")]
        scores = cti_scores(records, graph, total_addresses=256)
        assert 9 not in scores
        assert scores[2] == pytest.approx(1.0)

    def test_normalization_by_country_space(self):
        graph = graph_chain()
        records = [record("10.0.0.1", "1 2 3", "1.0.0.0/24")]
        scores = cti_scores(records, graph, total_addresses=512)
        assert scores[2] == pytest.approx(0.5)

    def test_zero_total(self):
        graph = graph_chain()
        assert cti_scores([], graph, total_addresses=0) == {}

    def test_vp_trimming(self):
        graph = graph_chain()
        records = [
            record(f"10.0.0.{i}", "1 2 3", "1.0.0.0/24") for i in range(1, 4)
        ]
        # Make one VP see nothing through AS 2 toward a second prefix —
        # actually simpler: all VPs agree, trimming keeps the middle.
        scores = cti_scores(records, graph, total_addresses=256)
        assert scores[2] == pytest.approx(1.0)


class TestCtiRanking:
    def test_ranking(self):
        graph = graph_chain()
        records = (
            record("10.0.0.1", "1 2 3", "1.0.0.0/24"),
            record("10.0.0.1", "1 2 4", "1.1.0.0/24"),
        )
        # AS 4 is unknown to the graph: the unknown link bounds the
        # suffix, so only AS 4's own path tail contributes.
        view = View("international:AU", "AU", records)
        ranking = cti_ranking(view, graph)
        assert ranking.metric == "CTI:AU"
        assert ranking.rank_of(2) == 1


class TestPaperOrderingClaim:
    def test_cti_between_cc_and_ah_for_aolp(self):
        """§1.3: for an AS originating large prefixes (AOLP), CTI scores
        the origin lower than CC/AH would, and its adjacent provider
        relatively higher."""
        from repro.core.cone import cone_addresses
        from repro.core.hegemony import hegemony_scores

        graph = graph_chain()
        records = [record("10.0.0.1", "1 2 3", "1.0.0.0/24")]
        cti = cti_scores(records, graph, total_addresses=256)
        ah = hegemony_scores(records)
        cc = cone_addresses(records, graph)
        # Origin 3: visible to AH and CC (its own cone), invisible to CTI.
        assert ah[3] > 0 and cc[3] > 0
        assert 3 not in cti
        # Direct provider 2 gets full CTI credit.
        assert cti[2] == pytest.approx(1.0)
