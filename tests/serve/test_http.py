"""HTTP round-trip tests for ``repro-serve`` on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import ArtifactStore, RankingServer, RankingService


@pytest.fixture()
def server(small_result):
    service = RankingService(small_result, ArtifactStore("key-http"))
    httpd = RankingServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def get(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["fingerprint"] == server.service.fingerprint

    def test_rank_round_trip(self, server):
        status, payload = get(server, "/rank?metric=AHN&country=AU&k=3")
        assert status == 200
        assert payload["metric"] == "AHN"
        assert payload["country"] == "AU"
        assert len(payload["entries"]) <= 3
        assert payload["text"] == server.service.rank("AHN", "AU", k=3)["text"]

    def test_report_and_case_study(self, server):
        status, payload = get(server, "/report?country=AU")
        assert status == 200
        assert "# Internet profile: AU" in payload["markdown"]
        status, payload = get(server, "/case-study?country=AU")
        assert status == 200
        assert payload["rows"]

    def test_bad_query_is_400(self, server):
        for path, message in (
            ("/rank", "missing required parameter 'metric'"),
            ("/rank?metric=NOPE", "unknown metric"),
            ("/rank?metric=AHN&country=ZZ", "unknown country"),
            ("/rank?metric=AHN", "requires a country"),
            ("/rank?metric=AHN&country=AU&k=x", "must be an integer"),
            ("/rank?metric=AHN&country=AU&k=0", "k must be >= 1"),
            ("/report", "requires a country"),
            ("/rank?metric=AHN&metric=CCI", "more than once"),
        ):
            status, payload = get(server, path)
            assert status == 400, path
            assert message in payload["error"], path

    def test_unknown_path_is_404(self, server):
        status, payload = get(server, "/nope")
        assert status == 404
        assert "/rank" in payload["routes"]


class TestConcurrency:
    def test_concurrent_requests_are_deterministic(self, server):
        paths = (
            "/rank?metric=AHN&country=AU",
            "/rank?metric=CCI&country=AU",
            "/healthz",
        )
        results: dict[str, set] = {path: set() for path in paths}
        lock = threading.Lock()

        def hammer(path):
            status, payload = get(server, path)
            payload.pop("source", None)   # computed on first touch only
            payload.pop("requests", None)  # healthz counter advances
            payload.pop("store", None)
            with lock:
                results[path].add((status, json.dumps(payload, sort_keys=True)))

        threads = [
            threading.Thread(target=hammer, args=(paths[i % len(paths)],))
            for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for path, bodies in results.items():
            assert len(bodies) == 1, path
            assert next(iter(bodies))[0] == 200


class TestMaxRequests:
    def test_shuts_down_after_budget(self, small_result):
        service = RankingService(small_result, ArtifactStore("key-max"))
        httpd = RankingServer(("127.0.0.1", 0), service, max_requests=2)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        for _ in range(2):
            status, _ = get(httpd, "/healthz")
            assert status == 200
        thread.join(timeout=5)
        assert not thread.is_alive()
        httpd.server_close()
