"""Shared fixtures: one small pipeline run for the whole serve suite."""

import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.topology.catalog import build_world


@pytest.fixture(scope="session")
def small_result():
    world = build_world("small", 0)
    return run_pipeline(world, PipelineConfig(seed=0))
