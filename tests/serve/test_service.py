"""Tests for the serving application layer (no sockets).

The load-bearing contract: a ``/rank`` response's ``text`` is
byte-identical to ``repro-rank rank`` output for *every* registry
metric, warm hits never touch the pipeline, and concurrent identical
queries return identical bodies.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.core.registry import iter_specs
from repro.serve import ArtifactStore, QueryError, RankingService


@pytest.fixture()
def service(small_result):
    return RankingService(small_result, ArtifactStore("key-test"))


class TestRank:
    def test_miss_then_hit(self, service):
        first = service.rank("AHN", "AU")
        assert first["source"] == "computed"
        second = service.rank("AHN", "AU")
        assert second["source"] == "store"
        first.pop("source"), second.pop("source")
        assert first == second

    def test_accepts_lowercase(self, service):
        assert service.rank("ahn", "au")["country"] == "AU"

    def test_global_metric_needs_no_country(self, service):
        payload = service.rank("CCG")
        assert payload["country"] is None
        assert payload["entries"]

    def test_warm_hit_never_recomputes(self, service, monkeypatch):
        service.rank("AHN", "AU")

        def boom(*args, **kwargs):
            raise AssertionError("warm hit touched the pipeline")

        monkeypatch.setattr(service.result, "ranking", boom)
        payload = service.rank("AHN", "AU")
        assert payload["source"] == "store"
        assert service.store.hits == 1

    def test_text_matches_cli_for_every_metric(self, service, capsys):
        """Byte-for-byte parity with ``repro-rank rank`` across the
        whole registry — cold (computed) and warm (store) alike."""
        for spec in iter_specs():
            args = ["--world", "small", "rank", spec.name]
            query = [spec.name]
            if spec.needs_country:
                args.append("AU")
                query.append("AU")
            assert main(args) == 0
            expected = capsys.readouterr().out
            cold = service.rank(*query)
            warm = service.rank(*query)
            assert cold["source"] == "computed", spec.name
            assert warm["source"] == "store", spec.name
            assert cold["text"] + "\n" == expected, spec.name
            assert warm["text"] + "\n" == expected, spec.name

    def test_store_roundtrip_preserves_bytes(self, small_result, tmp_path):
        """A ranking served from the *persisted* store renders the same
        bytes as the freshly computed one (value-exact payloads)."""
        path = tmp_path / "store.ck"
        store = ArtifactStore("key-p", path=path)
        service = RankingService(small_result, store)
        cold = service.rank("AHN", "AU")
        store.close()
        reopened = RankingService(
            small_result, ArtifactStore("key-p", path=path)
        )
        warm = reopened.rank("AHN", "AU")
        assert warm["source"] == "store"
        assert warm["text"] == cold["text"]

    def test_validation(self, service):
        with pytest.raises(QueryError, match="unknown metric"):
            service.rank("NOPE", "AU")
        with pytest.raises(QueryError, match="unknown country"):
            service.rank("AHN", "ZZ")
        with pytest.raises(QueryError, match="requires a country"):
            service.rank("AHN")
        with pytest.raises(QueryError, match="k must be >= 1"):
            service.rank("AHN", "AU", k=0)


class TestOtherEndpoints:
    def test_report(self, service):
        payload = service.report("AU")
        assert payload["country"] == "AU"
        assert "# Internet profile: AU" in payload["markdown"]

    def test_case_study(self, service):
        payload = service.case_study("au")
        assert payload["rows"]
        assert "== Top ASes per metric, AU ==" in payload["text"]

    def test_report_validation(self, service):
        with pytest.raises(QueryError, match="requires a country"):
            service.report(None)
        with pytest.raises(QueryError, match="unknown country"):
            service.case_study("ZZ")

    def test_health(self, service):
        payload = service.health()
        assert payload["status"] == "ok"
        assert payload["world"] == "small"
        assert payload["fingerprint"] == service.fingerprint
        assert payload["store"]["entries"] == 0


class TestPrecompute:
    def test_banks_full_sweep(self, service):
        banked = service.precompute(("AHN", "CCI"), ("AU",))
        assert banked == 2
        assert service.rank("AHN", "AU")["source"] == "store"
        assert service.rank("CCI", "AU")["source"] == "store"

    def test_counters_untouched(self, service):
        service.precompute(("AHN",), ("AU",))
        assert (service.store.hits, service.store.misses) == (0, 0)


class TestConcurrency:
    def test_identical_bodies_across_threads(self, small_result):
        service = RankingService(small_result, ArtifactStore("key-c"))
        bodies: list[str] = []
        errors: list[BaseException] = []

        def query():
            try:
                payload = service.rank("AHN", "AU")
                payload.pop("source")  # first caller computes, rest hit
                bodies.append(json.dumps(payload, sort_keys=True))
            except BaseException as error:  # repro: noqa[R006] — collected and re-asserted on the main thread; a raise here would vanish with the worker thread
                errors.append(error)

        threads = [threading.Thread(target=query) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(bodies)) == 1
        assert service.requests == 8
