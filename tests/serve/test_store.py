"""Tests for the content-keyed artifact store and world fingerprints.

The coherence satellite: the store must key on world *content*, never
the catalog name — a regenerated ``name@seed`` world whose content
changed misses the cache — and on the semantic config knobs only, so
fan-out (``workers``) never causes a miss.
"""

from repro.core.pipeline import PipelineConfig
from repro.core.registry import get_spec
from repro.serve import ArtifactStore, store_key
from repro.topology.catalog import build_world


class TestFingerprint:
    def test_deterministic_across_rebuilds(self):
        assert (
            build_world("small", 0).fingerprint()
            == build_world("small", 0).fingerprint()
        )

    def test_tracks_content_not_name(self):
        """Two worlds under the same catalog name but different content
        (a regenerated name@seed with a new seed) fingerprint apart."""
        a = build_world("small", 0)
        b = build_world("small", 1)
        assert a.name == b.name == "small"
        assert a.fingerprint() != b.fingerprint()

    def test_ignores_name(self):
        a = build_world("small", 0)
        b = build_world("small", 0)
        b.name = "renamed"
        assert a.fingerprint() == b.fingerprint()


class TestStoreKey:
    def test_excludes_workers(self):
        world = build_world("small", 0)
        assert store_key(world, PipelineConfig(seed=0)) == store_key(
            world, PipelineConfig(seed=0, workers=8)
        )

    def test_tracks_semantic_knobs(self):
        world = build_world("small", 0)
        assert store_key(world, PipelineConfig(seed=0)) != store_key(
            world, PipelineConfig(seed=0, trim=0.2)
        )

    def test_tracks_world_content(self):
        config = PipelineConfig(seed=0)
        assert store_key(build_world("small", 0), config) != store_key(
            build_world("small", 1), config
        )


def make_ranking(small_result):
    return small_result.ranking("AHN", "AU")


class TestArtifactStore:
    def test_miss_then_hit(self, small_result):
        spec = get_spec("AHN")
        store = ArtifactStore("key-a")
        assert store.get(spec, "AU") is None
        assert (store.hits, store.misses) == (0, 1)
        ranking = make_ranking(small_result)
        store.put(spec, "AU", ranking)
        assert store.get(spec, "AU") == ranking
        assert (store.hits, store.misses) == (1, 1)
        assert len(store) == 1

    def test_units_are_per_metric_and_country(self, small_result):
        store = ArtifactStore("key-a")
        store.put(get_spec("AHN"), "AU", make_ranking(small_result))
        assert store.get(get_spec("AHN"), "US") is None
        assert store.get(get_spec("CCI"), "AU") is None

    def test_persists_and_resumes(self, small_result, tmp_path):
        path = tmp_path / "store.ck"
        ranking = make_ranking(small_result)
        with ArtifactStore("key-a", path=path) as store:
            store.put(get_spec("AHN"), "AU", ranking)
            assert store.persisted == 0
        with ArtifactStore("key-a", path=path) as reopened:
            assert reopened.persisted == 1
            assert reopened.get(get_spec("AHN"), "AU") == ranking
            assert reopened.hits == 1

    def test_resume_false_starts_cold(self, small_result, tmp_path):
        path = tmp_path / "store.ck"
        with ArtifactStore("key-a", path=path) as store:
            store.put(get_spec("AHN"), "AU", make_ranking(small_result))
        with ArtifactStore("key-a", path=path, resume=False) as cold:
            assert cold.persisted == 0
            assert cold.get(get_spec("AHN"), "AU") is None

    def test_regenerated_world_misses_cache(self, small_result, tmp_path):
        """The staleness bug: a store warmed under one world's key must
        not serve a regenerated same-name world with different content."""
        path = tmp_path / "store.ck"
        config = PipelineConfig(seed=0)
        old_key = store_key(build_world("small", 0), config)
        with ArtifactStore(old_key, path=path) as store:
            store.put(get_spec("AHN"), "AU", make_ranking(small_result))
        new_key = store_key(build_world("small", 1), config)
        with ArtifactStore(new_key, path=path) as fresh:
            assert fresh.persisted == 0
            assert fresh.get(get_spec("AHN"), "AU") is None

    def test_put_is_idempotent_on_disk(self, small_result, tmp_path):
        path = tmp_path / "store.ck"
        ranking = make_ranking(small_result)
        with ArtifactStore("key-a", path=path) as store:
            store.put(get_spec("AHN"), "AU", ranking)
            store.put(get_spec("AHN"), "AU", ranking)
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one unit, not two
