"""Micro-overhead guard: disabled-mode hooks must be near-free.

The strict <5 % whole-pipeline comparison lives in
``benchmarks/bench_obs_overhead.py`` where timing noise is managed; the
tier-1 guards here use generous absolute bounds so they never flake,
while still catching any accidental allocation or real work sneaking
onto the disabled path.
"""

import time

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.topology.generator import GeneratorConfig, generate_world
from repro.topology.profiles import small_profiles


def small_world():
    config = GeneratorConfig(
        profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
    )
    return generate_world(config, seed=0, name="small")


class TestNullPrimitivesAreCheap:
    N = 100_000

    def test_null_span_loop(self):
        # timing IS this test's subject: it measures the disabled-mode
        # span overhead itself, so the R002 clock discipline is lifted
        start = time.perf_counter()  # repro: noqa[R002]
        for _ in range(self.N):
            with NULL_TRACER.span("hot"):
                pass
        elapsed = time.perf_counter() - start  # repro: noqa[R002]
        # ~3 attribute lookups + 2 method calls per iteration; anything
        # near 10 µs/call means real work leaked onto the disabled path.
        assert elapsed < self.N * 10e-6

    def test_null_span_allocates_nothing(self):
        spans = {id(NULL_TRACER.span("x", a=1)) for _ in range(100)}
        assert spans == {id(NULL_SPAN)}

    def test_null_metrics_loop(self):
        counter = NULL_TRACER.metrics.counter("hot.counter")
        hist = NULL_TRACER.metrics.histogram("hot.hist")
        # timing IS this test's subject (see test_null_span_loop)
        start = time.perf_counter()  # repro: noqa[R002]
        for index in range(self.N):
            counter.inc()
            hist.observe(index)
        elapsed = time.perf_counter() - start  # repro: noqa[R002]
        assert elapsed < self.N * 10e-6


class TestDisabledModeIsTransparent:
    def test_results_identical_with_and_without_trace(self):
        world = small_world()
        plain = run_pipeline(world, PipelineConfig(seed=3))
        traced = run_pipeline(world, PipelineConfig(seed=3, trace=True))

        assert plain.trace is None
        assert traced.trace is not None

        assert plain.paths.report.rejected == traced.paths.report.rejected
        assert plain.paths.report.accepted == traced.paths.report.accepted
        for metric, country in (("AHN", "AU"), ("CCI", "AU"), ("AHG", None)):
            left = plain.ranking(metric, country)
            right = traced.ranking(metric, country)
            assert [(e.asn, e.value) for e in left.entries] == [
                (e.asn, e.value) for e in right.entries
            ]

    def test_traced_runs_are_seed_stable(self):
        world = small_world()
        shapes = []
        for _ in range(2):
            result = run_pipeline(world, PipelineConfig(seed=3, trace=True))
            result.ranking("AHN", "AU")
            tracer = result.trace
            shapes.append((
                [(r.span_id, r.parent_id, r.name) for r in tracer.spans],
                tracer.metrics.snapshot(),
            ))
        assert shapes[0] == shapes[1]
