"""JSONL event export, schema validation, and the stage report."""

import json

from repro.obs.export import (
    stage_report,
    to_jsonl,
    trace_events,
    validate_events,
    validate_jsonl,
)
from repro.obs.trace import Tracer


def sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline", world="small"):
        with tracer.span("sanitize", input=100) as span:
            span.set(output=80)
        with tracer.span("geolocate", input=10, output=9):
            pass
    tracer.metrics.counter("sanitize.dropped.loop").inc(20)
    tracer.metrics.counter("sanitize.input").inc(100)
    tracer.metrics.counter("sanitize.accepted").inc(80)
    tracer.metrics.gauge("ribs.paths").set(5)
    tracer.metrics.histogram("views.size").observe(42)
    return tracer


class TestEventStream:
    def test_spans_emitted_in_start_order(self):
        events = trace_events(sample_tracer())
        span_names = [e["name"] for e in events if e["type"] == "span"]
        assert span_names == ["pipeline", "sanitize", "geolocate"]

    def test_parent_precedes_child(self):
        events = trace_events(sample_tracer())
        assert validate_events(events) == []

    def test_metric_events_appended(self):
        events = trace_events(sample_tracer())
        kinds = {e["type"] for e in events}
        assert kinds == {"span", "counter", "gauge", "histogram"}
        counter = next(
            e for e in events
            if e["type"] == "counter" and e["name"] == "sanitize.dropped.loop"
        )
        assert counter["value"] == 20

    def test_jsonl_round_trip(self):
        text = to_jsonl(sample_tracer())
        parsed = [json.loads(line) for line in text.splitlines()]
        assert validate_events(parsed) == []
        assert validate_jsonl(text) == []


class TestValidation:
    def test_unresolvable_parent(self):
        events = [{
            "type": "span", "id": 2, "parent": 99, "name": "x",
            "start_s": 0.0, "dur_s": 0.0, "cpu_s": 0.0, "attrs": {},
        }]
        problems = validate_events(events)
        assert any("parent" in p for p in problems)

    def test_duplicate_span_id(self):
        span = {
            "type": "span", "id": 1, "parent": None, "name": "x",
            "start_s": 0.0, "dur_s": 0.0, "cpu_s": 0.0, "attrs": {},
        }
        problems = validate_events([span, dict(span)])
        assert any("duplicate" in p for p in problems)

    def test_negative_duration(self):
        events = [{
            "type": "span", "id": 1, "parent": None, "name": "x",
            "start_s": 0.0, "dur_s": -0.5, "cpu_s": 0.0, "attrs": {},
        }]
        assert any("dur_s" in p for p in validate_events(events))

    def test_negative_volume_attr(self):
        events = [{
            "type": "span", "id": 1, "parent": None, "name": "x",
            "start_s": 0.0, "dur_s": 0.0, "cpu_s": 0.0,
            "attrs": {"input": -3},
        }]
        assert any("negative volume" in p for p in validate_events(events))

    def test_missing_name(self):
        assert any(
            "name" in p
            for p in validate_events([{"type": "counter", "value": 1}])
        )

    def test_unknown_type(self):
        assert any(
            "unknown type" in p
            for p in validate_events([{"type": "mystery"}])
        )

    def test_bad_jsonl_line(self):
        assert any("not JSON" in p for p in validate_jsonl("{nope}"))


class TestStageReport:
    def test_tree_volumes_and_drops(self):
        report = stage_report(sample_tracer())
        assert "pipeline" in report
        assert "  sanitize" in report  # indented under pipeline
        assert "20.0%" in report       # 100 -> 80

    def test_table1_section_from_counters(self):
        report = stage_report(sample_tracer())
        assert "sanitize drops" in report
        assert "loop" in report
        assert "accepted" in report

    def test_custom_title(self):
        assert stage_report(sample_tracer(), title="hello") .startswith("== hello ==")
