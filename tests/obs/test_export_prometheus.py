"""Exposition-format validity for the Prometheus export.

Prometheus metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; the
registry's dotted (and occasionally dashed or otherwise decorated)
instrument names must all be sanitized into that alphabet, and every
instrument kind — counters, gauges, histograms — must appear in the
exposition.
"""

import re

from repro.obs.export import _prom_name, to_prometheus
from repro.obs.metrics import MetricsRegistry

#: https://prometheus.io/docs/concepts/data_model/#metric-names-and-labels
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_LINE = re.compile(r"^# TYPE (\S+) (counter|gauge|summary)$")
SAMPLE_LINE = re.compile(r"^(\S+) (-?\d+(?:\.\d+)?(?:e[+-]?\d+)?)$")


def exposition_problems(text: str) -> list[str]:
    problems = []
    for line in text.splitlines():
        type_match = TYPE_LINE.match(line)
        if type_match:
            if not NAME_RE.match(type_match.group(1)):
                problems.append(f"bad metric name in TYPE line: {line!r}")
            continue
        sample = SAMPLE_LINE.match(line)
        if sample is None:
            problems.append(f"not a TYPE or sample line: {line!r}")
        elif not NAME_RE.match(sample.group(1)):
            problems.append(f"bad metric name in sample: {line!r}")
    return problems


def populated_registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("sanitize.input").inc(10)
    metrics.counter("monitor.churn.entered").inc(2)
    metrics.gauge("ribs.vps").set(42)
    metrics.gauge("monitor.snapshots").set(3)
    metrics.histogram("monitor.drift.tau").observe(0.5)
    metrics.histogram("monitor.drift.tau").observe(0.9)
    return metrics


class TestExpositionValidity:
    def test_every_line_is_valid(self):
        assert exposition_problems(to_prometheus(populated_registry())) == []

    def test_gauges_are_included(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE repro_ribs_vps gauge" in text
        assert "repro_ribs_vps 42" in text
        assert "# TYPE repro_monitor_snapshots gauge" in text

    def test_counters_get_total_suffix(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE repro_sanitize_input_total counter" in text
        assert "repro_sanitize_input_total 10" in text

    def test_histograms_export_summary(self):
        text = to_prometheus(populated_registry())
        assert "repro_monitor_drift_tau_count 2" in text
        assert "repro_monitor_drift_tau_min 0.5" in text
        assert "repro_monitor_drift_tau_max 0.9" in text


class TestNameSanitization:
    def test_dotted_names(self):
        assert _prom_name("perf.view.hits") == "repro_perf_view_hits"

    def test_dashed_names(self):
        assert _prom_name("AHC-A.rate") == "repro_AHC_A_rate"

    def test_arbitrary_punctuation_collapses(self):
        assert NAME_RE.match(_prom_name("weird name!with%chars"))

    def test_leading_digit_guarded(self):
        assert NAME_RE.match(_prom_name("9lives"))

    def test_hostile_names_stay_valid(self):
        registry = MetricsRegistry()
        registry.counter("0day.metric name-with every+thing").inc()
        assert exposition_problems(to_prometheus(registry)) == []
