"""Peak-RSS observability: sampled at span close, surfaced as a gauge
and per-stage high-water marks — and kept out of SpanRecord attrs so
the span determinism contract is untouched."""

from repro.obs.export import stage_report, trace_events
from repro.obs.trace import NULL_TRACER, Tracer, peak_rss_bytes


class TestPeakRss:
    def test_reads_a_plausible_value(self):
        rss = peak_rss_bytes()
        assert rss is not None
        # a CPython process is at least a few MB and below a TB
        assert 1_000_000 < rss < 1_000_000_000_000

    def test_monotone(self):
        first = peak_rss_bytes()
        ballast = list(range(200_000))
        second = peak_rss_bytes()
        assert second >= first
        del ballast


class TestTracerSampling:
    def test_span_close_records_stage_peak(self):
        tracer = Tracer()
        with tracer.span("sanitize"):
            pass
        with tracer.span("rank"):
            pass
        assert set(tracer.rss_peaks) == {"sanitize", "rank"}
        assert all(value > 0 for value in tracer.rss_peaks.values())
        gauges = tracer.metrics.gauges()
        assert gauges["obs.memory.peak_rss_bytes"] >= max(
            tracer.rss_peaks.values()
        ) or gauges["obs.memory.peak_rss_bytes"] > 0

    def test_repeated_spans_keep_the_max(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        first = tracer.rss_peaks["stage"]
        with tracer.span("stage"):
            pass
        assert tracer.rss_peaks["stage"] >= first

    def test_attrs_stay_deterministic(self):
        # RSS must not leak into span attrs (two equal-seed runs must
        # produce identical attrs; RSS is an environment measurement)
        tracer = Tracer()
        with tracer.span("stage", input=3):
            pass
        (record,) = tracer.spans
        assert record.attrs == {"input": 3}

    def test_null_tracer_has_empty_peaks(self):
        assert NULL_TRACER.rss_peaks == {}


class TestReporting:
    def test_memory_section_in_stage_report(self):
        tracer = Tracer()
        with tracer.span("sanitize"):
            pass
        report = stage_report(tracer)
        assert "-- memory (process peak RSS) --" in report
        assert "obs.memory.peak_rss_bytes" in report
        assert "at sanitize" in report

    def test_gauge_in_event_stream(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        events = trace_events(tracer)
        gauges = [e for e in events if e["type"] == "gauge"]
        assert any(e["name"] == "obs.memory.peak_rss_bytes" for e in gauges)
