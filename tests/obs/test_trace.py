"""Tracer semantics: nesting, exception safety, disabled mode, and
determinism of everything except timestamps."""

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Tracer


def by_name(tracer, name):
    records = tracer.find(name)
    assert records, f"no span named {name!r}"
    return records[0]


class TestNesting:
    def test_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        outer = by_name(tracer, "outer")
        inner = by_name(tracer, "inner")
        sibling = by_name(tracer, "sibling")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id

    def test_completion_order_and_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # Children close first, but ids reflect start order.
        assert [r.name for r in tracer.spans] == ["b", "a"]
        assert by_name(tracer, "a").span_id < by_name(tracer, "b").span_id

    def test_new_roots_after_close(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert all(r.parent_id is None for r in tracer.spans)

    def test_attrs_via_constructor_and_set(self):
        tracer = Tracer()
        with tracer.span("stage", input=10) as span:
            span.set(output=7)
        record = by_name(tracer, "stage")
        assert record.attrs == {"input": 10, "output": 7}


class TestExceptionSafety:
    def test_raising_span_still_records(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed", input=3):
                raise RuntimeError("boom")
        record = by_name(tracer, "doomed")
        assert record.attrs["error"] == "RuntimeError"
        assert record.error
        assert record.dur_s >= 0.0

    def test_nested_exception_closes_both(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert {r.name for r in tracer.spans} == {"outer", "inner"}
        assert by_name(tracer, "inner").attrs["error"] == "ValueError"
        assert by_name(tracer, "outer").attrs["error"] == "ValueError"

    def test_tracer_usable_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError
        with tracer.span("good"):
            pass
        good = by_name(tracer, "good")
        assert good.parent_id is None
        assert not good.error


class TestDisabledMode:
    def test_null_span_is_shared_singleton(self):
        first = NULL_TRACER.span("anything", volume=1)
        second = NULL_TRACER.span("other")
        assert first is second is NULL_SPAN

    def test_null_span_context_and_set(self):
        with NULL_TRACER.span("x") as span:
            assert span.set(output=1) is span
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.stage_names() == []
        assert NULL_TRACER.find("x") == []

    def test_null_does_not_swallow_exceptions(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("x"):
                raise KeyError("boom")

    def test_null_metrics_are_inert(self):
        NULL_TRACER.metrics.counter("a").inc(5)
        NULL_TRACER.metrics.gauge("b").set(2.0)
        NULL_TRACER.metrics.histogram("c").observe(1.0)
        assert NULL_TRACER.metrics.snapshot() == {}

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False


def _instrumented_run(tracer, seed):
    with tracer.span("root", seed=seed):
        for index in range(3):
            with tracer.span("step", index=index) as span:
                span.set(output=index * seed)
                tracer.metrics.counter("steps").inc()
                tracer.metrics.histogram("sizes").observe(index)


class TestDeterminism:
    def test_everything_but_timing_is_stable(self):
        first, second = Tracer(), Tracer()
        _instrumented_run(first, seed=7)
        _instrumented_run(second, seed=7)

        def shape(tracer):
            return [
                (r.span_id, r.parent_id, r.name, tuple(sorted(r.attrs.items())))
                for r in tracer.spans
            ]

        assert shape(first) == shape(second)
        assert first.metrics.snapshot() == second.metrics.snapshot()
        assert first.stage_names() == second.stage_names()


class TestMemoryCapture:
    def test_peak_recorded(self):
        tracer = Tracer(capture_memory=True)
        try:
            with tracer.span("alloc"):
                blob = [0] * 100_000
                del blob
            record = by_name(tracer, "alloc")
            assert isinstance(record.mem_peak, int)
            assert record.mem_peak > 0
        finally:
            tracer.close()

    def test_disabled_capture_leaves_none(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert by_name(tracer, "x").mem_peak is None
