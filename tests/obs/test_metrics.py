"""MetricsRegistry semantics and the Prometheus exposition."""

import pytest

from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_get_or_create_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a.b").inc(4)
        assert registry.counters() == {"a.b": 5}

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("a").inc(-1)

    def test_zero_increment_ok(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(0)
        assert registry.counters() == {"a": 0}


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(1.5)
        assert registry.gauges() == {"g": 1.5}


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (4.0, 1.0, 7.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 1.0
        assert hist.max == 7.0
        assert hist.mean() == 4.0

    def test_empty_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean() == 0.0


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.gauge("a.gauge").set(1.0)
        registry.histogram("m.hist").observe(3.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.gauge", "m.hist", "z.count"]
        assert snapshot["z.count"] == {"kind": "counter", "value": 2}
        assert snapshot["m.hist"]["count"] == 1
        assert snapshot["m.hist"]["min"] == 3.0

    def test_empty_histogram_snapshot_uses_none(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert registry.snapshot()["h"]["min"] is None


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("sanitize.dropped.loop").inc(12)
        registry.gauge("ribs.paths").set(420)
        registry.histogram("views.size").observe(10)
        registry.histogram("views.size").observe(30)
        text = to_prometheus(registry)
        assert "# TYPE repro_sanitize_dropped_loop_total counter" in text
        assert "repro_sanitize_dropped_loop_total 12" in text
        assert "repro_ribs_paths 420" in text
        assert "repro_views_size_count 2" in text
        assert "repro_views_size_sum 40" in text
        assert "repro_views_size_min 10" in text
        assert "repro_views_size_max 30" in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
