"""Tests for the benchmark's parallel-floor gate record.

The 1-CPU bugfix: a host too small to enforce the gate must emit an
explicit ``status: skipped`` / ``reason: insufficient_cpus`` record
into ``BENCH_pipeline.json`` — never silently omit the gate, which
read as "everything passed" on single-core CI boxes.
"""

import importlib.util
from pathlib import Path

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_pipeline_scaling", _BENCH / "bench_pipeline_scaling.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestParallelGateRecord:
    def setup_method(self):
        self.record = _load_bench().parallel_gate_record

    def test_disabled_when_no_floor(self):
        gate = self.record(0.0, 8, 2.5)
        assert gate["status"] == "disabled"
        assert gate["cpus_usable"] == 8

    def test_skipped_on_single_cpu(self):
        gate = self.record(1.0, 1, 0.4)
        assert gate == {
            "floor": 1.0,
            "cpus_usable": 1,
            "status": "skipped",
            "reason": "insufficient_cpus",
            "needs_cpus": 2,
        }
        assert "measured" not in gate  # an unenforceable number is noise

    def test_passed_at_floor(self):
        gate = self.record(1.0, 4, 1.0)
        assert gate["status"] == "passed"
        assert gate["measured"] == 1.0

    def test_failed_below_floor(self):
        gate = self.record(2.0, 4, 1.3)
        assert gate["status"] == "failed"
        assert gate["floor"] == 2.0
        assert gate["measured"] == 1.3
