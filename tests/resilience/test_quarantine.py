"""Tests for the quarantine sink and the lenient ingestion path."""

import gzip
import json

from repro.io.mrt import dump_rib, load_rib
from repro.resilience import FaultPlan, Quarantine
from tests.io.test_mrt import sample_announcements


def write_lines(path, lines):
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


HEADER = json.dumps(
    {"type": "header", "format": "repro-mrt", "version": 1, "day": 0}
)


class TestSink:
    def test_counts_by_reason(self):
        sink = Quarantine()
        sink.add("f", 2, "invalid-json", "boom")
        sink.add("f", 3, "invalid-json", "boom")
        sink.add("f", 5, "bad-entry", "missing field")
        assert len(sink) == 3
        assert sink.by_reason() == {"bad-entry": 1, "invalid-json": 2}

    def test_raw_snippet_truncated(self):
        sink = Quarantine()
        sink.add("f", 1, "invalid-json", "boom", raw="x" * 1000)
        assert len(sink.lines[0].raw) == 160

    def test_render_and_jsonl(self, tmp_path):
        sink = Quarantine()
        assert sink.render() == "quarantine: empty"
        sink.add("f", 9, "bad-entry", "oops", raw="{}")
        assert "1 line(s)" in sink.render()
        out = sink.write_jsonl(tmp_path / "q.jsonl")
        row = json.loads(out.read_text().splitlines()[0])
        assert row == {
            "source": "f", "line_no": 9, "reason": "bad-entry",
            "detail": "oops", "raw": "{}",
        }


class TestLenientIngestion:
    def test_bad_lines_diverted_not_fatal(self, tmp_path):
        path = tmp_path / "rib.jsonl.gz"
        good = json.dumps({
            "type": "rib", "peer_ip": "10.0.0.1", "peer_asn": 1,
            "prefix": "10.0.0.0/16", "path": [1, 2],
        })
        bad_json = '{"type": "rib", "peer_ip":'
        bad_entry = json.dumps({"type": "rib", "peer_ip": "10.0.0.2"})
        trailer = json.dumps({"type": "trailer", "entries": 3})
        write_lines(path, [HEADER, good, bad_json, bad_entry, trailer])
        sink = Quarantine()
        loaded = list(load_rib(path, strict=False, quarantine=sink))
        assert len(loaded) == 1
        assert sink.by_reason() == {"bad-entry": 1, "invalid-json": 1}
        lines = {q.line_no: q.reason for q in sink.lines}
        assert lines == {3: "invalid-json", 4: "bad-entry"}

    def test_trailer_reconciles_with_quarantined(self, tmp_path):
        # declared count covers good + quarantined lines: no mismatch
        path = tmp_path / "rib.jsonl.gz"
        good = json.dumps({
            "type": "rib", "peer_ip": "10.0.0.1", "peer_asn": 1,
            "prefix": "10.0.0.0/16", "path": [1, 2],
        })
        trailer = json.dumps({"type": "trailer", "entries": 2})
        write_lines(path, [HEADER, good, "not json", trailer])
        sink = Quarantine()
        assert len(list(load_rib(path, strict=False, quarantine=sink))) == 1
        assert "trailer-mismatch" not in sink.by_reason()

    def test_missing_trailer_quarantined(self, tmp_path):
        path = tmp_path / "rib.jsonl.gz"
        write_lines(path, [HEADER])
        sink = Quarantine()
        assert list(load_rib(path, strict=False, quarantine=sink)) == []
        assert sink.by_reason() == {"missing-trailer": 1}

    def test_deterministic_fault_corruption(self, tmp_path):
        path = dump_rib(sample_announcements(50), tmp_path / "rib.jsonl.gz")
        faults = FaultPlan(seed=9, corrupt_rate=0.2)

        def run():
            sink = Quarantine()
            loaded = list(
                load_rib(path, strict=False, quarantine=sink, faults=faults)
            )
            return len(loaded), sink.by_reason(), [
                (q.line_no, q.reason) for q in sink.lines
            ]

        first = run()
        second = run()
        assert first == second  # same plan, same quarantine report
        count, by_reason, _ = first
        assert by_reason.get("invalid-json", 0) > 0
        assert count + sum(
            n for reason, n in by_reason.items()
            if reason in ("invalid-json", "bad-entry")
        ) >= 50

    def test_strict_still_fails_fast(self, tmp_path):
        import pytest

        from repro.io.mrt import MrtFormatError

        path = tmp_path / "rib.jsonl.gz"
        write_lines(path, [HEADER, "not json"])
        with pytest.raises(MrtFormatError):
            list(load_rib(path))
