"""Failure-path integration: the three recovery scenarios end to end.

1. a killed fan-out worker → pool respawn → byte-identical pipeline
   output;
2. a hung chunk → per-chunk timeout → retry → identical output;
3. a mid-sweep crash → checkpoint resume → output identical to an
   uninterrupted sweep (and a resumed stability curve likewise).
"""

import pytest

from repro import (
    GeneratorConfig,
    PipelineConfig,
    generate_world,
    run_pipeline,
    small_profiles,
)
from repro.analysis.stability import stability_curve
from repro.resilience import (
    Checkpoint,
    FaultPlan,
    InjectedCrash,
    RetryPolicy,
    sweep_key,
    trials_key,
)

SMALL = GeneratorConfig(
    profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
)


@pytest.fixture(scope="module")
def world():
    return generate_world(SMALL, seed=1, name="small")


@pytest.fixture(scope="module")
def clean(world):
    return run_pipeline(world, PipelineConfig(workers=2))


class TestWorkerKillRecovery:
    def test_killed_worker_yields_identical_routes(self, world, clean):
        faults = FaultPlan(
            fail_chunks=frozenset({("propagate", 0)}), kind="exit"
        )
        faulty = run_pipeline(
            world, PipelineConfig(workers=2, faults=faults)
        )
        assert faulty.outcome.routes == clean.outcome.routes

    def test_soft_faults_yield_identical_routes(self, world, clean):
        faults = FaultPlan(seed=3, fail_rate=1.0, kind="raise", attempts=1)
        faulty = run_pipeline(
            world, PipelineConfig(workers=2, faults=faults)
        )
        assert faulty.outcome.routes == clean.outcome.routes


class TestTimeoutRecovery:
    def test_hung_chunk_times_out_and_matches(self, world, clean):
        faults = FaultPlan(
            delay_chunks=frozenset({("propagate", 1)}), delay_s=60.0
        )
        policy = RetryPolicy(timeout_s=2.0)
        faulty = run_pipeline(
            world, PipelineConfig(workers=2, retry=policy, faults=faults)
        )
        assert faulty.outcome.routes == clean.outcome.routes


class TestSweepCheckpointResume:
    METRICS = ("CCI", "AHN")

    def test_resumed_sweep_matches_uninterrupted(self, world, clean, tmp_path):
        countries = tuple(clean.countries_with_national_view()[:2])
        uninterrupted = clean.rank_all(self.METRICS, countries)
        path = tmp_path / "sweep.ck"
        key = sweep_key(world.name, clean.config, self.METRICS, countries)

        crashing = run_pipeline(
            world,
            PipelineConfig(workers=2, faults=FaultPlan(crash_after_units=2)),
        )
        with Checkpoint.open(path, key) as checkpoint:
            with pytest.raises(InjectedCrash):
                crashing.rank_all(self.METRICS, countries, checkpoint=checkpoint)

        resumed_result = run_pipeline(world, PipelineConfig(workers=2))
        with Checkpoint.open(path, key) as checkpoint:
            assert checkpoint.loaded == 2  # the units banked before the crash
            resumed = resumed_result.rank_all(
                self.METRICS, countries, checkpoint=checkpoint
            )
        assert resumed == uninterrupted

    def test_full_checkpoint_skips_all_recomputation(self, world, clean, tmp_path):
        countries = tuple(clean.countries_with_national_view()[:1])
        path = tmp_path / "sweep.ck"
        key = sweep_key(world.name, clean.config, self.METRICS, countries)
        with Checkpoint.open(path, key) as checkpoint:
            full = clean.rank_all(self.METRICS, countries, checkpoint=checkpoint)
        fresh = run_pipeline(world, PipelineConfig(workers=2))
        with Checkpoint.open(path, key) as checkpoint:
            assert checkpoint.loaded == len(full)
            assert fresh.rank_all(
                self.METRICS, countries, checkpoint=checkpoint
            ) == full


class TestStabilityCheckpointResume:
    def test_resumed_curve_matches_uninterrupted(self, world, clean, tmp_path):
        country = clean.countries_with_national_view()[0]
        view = clean.view("national", country)
        sizes, trials, seed, k = [3, 5], 3, 9, 10
        uninterrupted = stability_curve(
            clean, "CCN", view, sizes=sizes, trials=trials, seed=seed, workers=1
        )
        path = tmp_path / "trials.ck"
        key = trials_key(
            world.name, clean.config, "CCN", country, sizes, trials, seed, k
        )
        # bank a strict prefix of the trials, as a crashed run would
        with Checkpoint.open(path, key) as checkpoint:
            partial = stability_curve(
                clean, "CCN", view, sizes=sizes, trials=trials, seed=seed,
                workers=1, checkpoint=checkpoint,
            )
            assert partial == uninterrupted
        truncated = path.read_text().splitlines()[: 1 + 3]  # header + 3 units
        path.write_text("\n".join(truncated) + "\n")

        with Checkpoint.open(path, key) as checkpoint:
            assert checkpoint.loaded == 3
            resumed = stability_curve(
                clean, "CCN", view, sizes=sizes, trials=trials, seed=seed,
                workers=2, checkpoint=checkpoint,
            )
        assert resumed == uninterrupted


class TestGlobalMetricCheckpointResume:
    """Sweep resume covering the global metrics (CCG/AHG) too — their
    units sit under the ``<global>`` country key."""

    METRICS = ("CCG", "AHG", "CCI")

    def test_resumed_global_sweep_matches_uninterrupted(
        self, world, clean, tmp_path
    ):
        countries = tuple(clean.countries_with_national_view()[:1])
        uninterrupted = clean.rank_all(self.METRICS, countries)
        assert ("CCG", None) in uninterrupted
        assert ("AHG", None) in uninterrupted
        path = tmp_path / "sweep.ck"
        key = sweep_key(world.name, clean.config, self.METRICS, countries)

        crashing = run_pipeline(
            world,
            PipelineConfig(workers=2, faults=FaultPlan(crash_after_units=2)),
        )
        with Checkpoint.open(path, key) as checkpoint:
            with pytest.raises(InjectedCrash):
                crashing.rank_all(self.METRICS, countries, checkpoint=checkpoint)

        resumed_result = run_pipeline(world, PipelineConfig(workers=2))
        with Checkpoint.open(path, key) as checkpoint:
            assert checkpoint.loaded == 2  # CCG + AHG banked pre-crash
            assert checkpoint.get("ranking:CCG:<global>") is not None
            resumed = resumed_result.rank_all(
                self.METRICS, countries, checkpoint=checkpoint
            )
        assert resumed == uninterrupted


class TestSweepUnitDedupe:
    """Duplicate (metric, country) units are computed exactly once."""

    def test_duplicates_collapse_to_one_unit(self, clean):
        country = clean.countries_with_national_view()[0]
        rankings = clean.rank_all(
            ["CCI", "CCI"], [country, country.lower(), f" {country} "]
        )
        assert list(rankings) == [("CCI", country)]

    def test_duplicates_do_not_trip_the_fault_plan(self, world):
        # crash_after_units=2 with only one *distinct* unit: the old
        # per-request counting would have crashed on the repeat
        country_result = run_pipeline(
            world,
            PipelineConfig(workers=2, faults=FaultPlan(crash_after_units=2)),
        )
        country = country_result.countries_with_national_view()[0]
        rankings = country_result.rank_all(["CCI", "CCI"], [country])
        assert list(rankings) == [("CCI", country)]

    def test_duplicates_write_one_checkpoint_unit(self, world, clean, tmp_path):
        country = clean.countries_with_national_view()[0]
        path = tmp_path / "sweep.ck"
        key = sweep_key(world.name, clean.config, ("CCI",), (country,))
        with Checkpoint.open(path, key) as checkpoint:
            clean.rank_all(["CCI", "CCI"], [country], checkpoint=checkpoint)
        unit_lines = [
            line for line in path.read_text().splitlines()
            if '"ranking:CCI:' in line
        ]
        assert len(unit_lines) == 1
