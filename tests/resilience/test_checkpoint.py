"""Tests for content-keyed checkpoints and the resume equivalence."""

import json

from repro.core.pipeline import PipelineConfig
from repro.core.ranking import RankEntry, Ranking
from repro.resilience import (
    Checkpoint,
    ranking_from_payload,
    ranking_to_payload,
    sweep_key,
    trials_key,
)


def make_ranking():
    entries = [
        RankEntry(rank=1, asn=100, value=0.1 + 0.2, share=1 / 3),
        RankEntry(rank=2, asn=200, value=2e-17, share=0.25),
    ]
    return Ranking("AHN:AU", entries, "AU")


class TestCheckpoint:
    def test_put_get_roundtrip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", {"x": 1})
            assert ck.get("unit:1") == {"x": 1}
            assert ck.get("unit:2") is None

    def test_resume_recovers_units(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", [1, 2])
            ck.put("unit:2", "done")
        resumed = Checkpoint.open(path, "key-a")
        assert resumed.loaded == 2
        assert resumed.get("unit:1") == [1, 2]
        assert resumed.get("unit:2") == "done"

    def test_foreign_key_starts_fresh(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        resumed = Checkpoint.open(path, "key-B")
        assert resumed.loaded == 0
        assert resumed.get("unit:1") is None

    def test_resume_false_ignores_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        fresh = Checkpoint.open(path, "key-a", resume=False)
        assert fresh.loaded == 0

    def test_torn_tail_keeps_prefix(self, tmp_path):
        import warnings

        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
            ck.put("unit:2", 2)
        with open(path, "at", encoding="utf-8") as handle:
            handle.write('{"type": "unit", "unit": "unit:3", "payl')
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = Checkpoint.open(path, "key-a")
        assert resumed.loaded == 2
        assert resumed.get("unit:3") is None

    def test_missing_file_is_empty(self, tmp_path):
        ck = Checkpoint.open(tmp_path / "absent.jsonl", "key-a")
        assert ck.loaded == 0

    def test_torn_tail_warns(self, tmp_path):
        import pytest

        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "unit", "un')
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            resumed = Checkpoint.open(path, "key-a")
        assert resumed.loaded == 1

    def test_torn_tail_truncated_before_append(self, tmp_path):
        """The regression: resume used to leave the torn fragment in
        the file, so the next ``put`` concatenated onto it and
        corrupted two records at once. The torn tail must be gone
        from disk before any append."""
        import warnings

        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
            ck.put("unit:2", 2)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "unit", "unit": "unit:3", "payl')
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with Checkpoint.open(path, "key-a") as resumed:
                assert resumed.loaded == 2
                resumed.put("unit:3", 3)
        # every line on disk must now parse — no concatenated garbage
        lines = path.read_bytes().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [e["unit"] for e in parsed if e["type"] == "unit"] == [
            "unit:1", "unit:2", "unit:3",
        ]
        # and a fresh resume sees all three units
        final = Checkpoint.open(path, "key-a")
        assert final.loaded == 3
        assert final.get("unit:3") == 3

    def test_torn_tail_any_byte_length(self, tmp_path):
        """Byte-wise sweep: a crash can tear the final append at any
        byte. Every prefix of the last line must resume to exactly the
        complete lines before it, and the file must be repaired."""
        import warnings

        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", {"x": 1})
            ck.put("unit:2", {"y": 2})
        raw = path.read_bytes()
        last_line_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(last_line_start + 1, len(raw)):
            torn = tmp_path / f"torn-{cut}.jsonl"
            torn.write_bytes(raw[:cut])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                resumed = Checkpoint.open(torn, "key-a")
            expected = raw[:cut].count(b"\n") - 1  # minus the header
            assert resumed.loaded == expected, f"cut at byte {cut}"
            assert torn.read_bytes() == raw[: raw[:cut].rfind(b"\n") + 1]

    def test_mid_file_corruption_distrusts_whole_file(self, tmp_path):
        """A flipped byte *before* the final line is not a crash-append
        signature — resume must start fresh rather than trust the rest."""
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
            ck.put("unit:2", 2)
        raw = bytearray(path.read_bytes())
        middle = raw.index(b'"unit:1"')
        raw[middle] = 0x00
        path.write_bytes(bytes(raw))
        resumed = Checkpoint.open(path, "key-a")
        assert resumed.loaded == 0

    def test_fresh_open_truncates_on_first_put(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        with Checkpoint.open(path, "key-B") as ck:
            ck.put("other", 2)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["key"] == "key-B"
        assert all("unit:1" not in line for line in lines)

    def test_float_payloads_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        values = [0.1 + 0.2, 2e-17, 1 / 3, 1e300]
        with Checkpoint.open(path, "key-a") as ck:
            for index, value in enumerate(values):
                ck.put(f"trial:{index}", value)
        resumed = Checkpoint.open(path, "key-a")
        for index, value in enumerate(values):
            assert resumed.get(f"trial:{index}") == value  # exact, not approx


class TestContentKeys:
    def test_sweep_key_tracks_semantic_knobs(self):
        base = PipelineConfig(seed=0)
        other = PipelineConfig(seed=0, trim=0.2)
        metrics = ("AHN", "CCI")
        assert sweep_key("small", base, metrics, None) != sweep_key(
            "small", other, metrics, None
        )
        assert sweep_key("small", base, metrics, None) == sweep_key(
            "small", PipelineConfig(seed=0), metrics, None
        )

    def test_sweep_key_ignores_resilience_knobs(self):
        from repro.resilience import RetryPolicy

        base = PipelineConfig(seed=0)
        tweaked = PipelineConfig(
            seed=0, workers=8, retry=RetryPolicy(max_attempts=5)
        )
        metrics = ("AHN",)
        assert sweep_key("small", base, metrics, None) == sweep_key(
            "small", tweaked, metrics, None
        )

    def test_sweep_key_tracks_request(self):
        config = PipelineConfig(seed=0)
        assert sweep_key("small", config, ("AHN",), ("AU",)) != sweep_key(
            "small", config, ("AHN",), ("JP",)
        )
        assert sweep_key("small", config, ("AHN",), None) != sweep_key(
            "small", config, ("CCI",), None
        )

    def test_trials_key_tracks_grid(self):
        config = PipelineConfig(seed=0)
        a = trials_key("small", config, "AHN", "AU", [1, 2], 8, 0, 10)
        b = trials_key("small", config, "AHN", "AU", [1, 2, 4], 8, 0, 10)
        assert a != b


class TestRankingPayload:
    def test_roundtrip_is_value_exact(self):
        ranking = make_ranking()
        payload = json.loads(json.dumps(ranking_to_payload(ranking)))
        rebuilt = ranking_from_payload(payload)
        assert rebuilt == ranking

    def test_malformed_payload_rejected(self):
        import pytest

        from repro.resilience import CheckpointError

        with pytest.raises(CheckpointError):
            ranking_from_payload({"metric": "AHN", "entries": [[1]]})


class TestStoreBackendIsNotSemantic:
    """The spill backend changes where records live, never what they
    are — so it must not perturb checkpoint or artifact-store keys."""

    def test_backend_knobs_excluded_from_keys(self):
        from repro.core.pipeline import PipelineConfig
        from repro.resilience.checkpoint import SEMANTIC_KNOBS, config_knobs

        assert "store_backend" not in SEMANTIC_KNOBS
        assert "spill_dir" not in SEMANTIC_KNOBS
        assert config_knobs(
            PipelineConfig(store_backend="mmap", spill_dir="/tmp/x")
        ) == config_knobs(PipelineConfig())
