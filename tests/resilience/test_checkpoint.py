"""Tests for content-keyed checkpoints and the resume equivalence."""

import json

from repro.core.pipeline import PipelineConfig
from repro.core.ranking import RankEntry, Ranking
from repro.resilience import (
    Checkpoint,
    ranking_from_payload,
    ranking_to_payload,
    sweep_key,
    trials_key,
)


def make_ranking():
    entries = [
        RankEntry(rank=1, asn=100, value=0.1 + 0.2, share=1 / 3),
        RankEntry(rank=2, asn=200, value=2e-17, share=0.25),
    ]
    return Ranking("AHN:AU", entries, "AU")


class TestCheckpoint:
    def test_put_get_roundtrip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", {"x": 1})
            assert ck.get("unit:1") == {"x": 1}
            assert ck.get("unit:2") is None

    def test_resume_recovers_units(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", [1, 2])
            ck.put("unit:2", "done")
        resumed = Checkpoint.open(path, "key-a")
        assert resumed.loaded == 2
        assert resumed.get("unit:1") == [1, 2]
        assert resumed.get("unit:2") == "done"

    def test_foreign_key_starts_fresh(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        resumed = Checkpoint.open(path, "key-B")
        assert resumed.loaded == 0
        assert resumed.get("unit:1") is None

    def test_resume_false_ignores_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        fresh = Checkpoint.open(path, "key-a", resume=False)
        assert fresh.loaded == 0

    def test_torn_tail_keeps_prefix(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
            ck.put("unit:2", 2)
        with open(path, "at", encoding="utf-8") as handle:
            handle.write('{"type": "unit", "unit": "unit:3", "payl')
        resumed = Checkpoint.open(path, "key-a")
        assert resumed.loaded == 2
        assert resumed.get("unit:3") is None

    def test_missing_file_is_empty(self, tmp_path):
        ck = Checkpoint.open(tmp_path / "absent.jsonl", "key-a")
        assert ck.loaded == 0

    def test_fresh_open_truncates_on_first_put(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with Checkpoint.open(path, "key-a") as ck:
            ck.put("unit:1", 1)
        with Checkpoint.open(path, "key-B") as ck:
            ck.put("other", 2)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["key"] == "key-B"
        assert all("unit:1" not in line for line in lines)

    def test_float_payloads_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        values = [0.1 + 0.2, 2e-17, 1 / 3, 1e300]
        with Checkpoint.open(path, "key-a") as ck:
            for index, value in enumerate(values):
                ck.put(f"trial:{index}", value)
        resumed = Checkpoint.open(path, "key-a")
        for index, value in enumerate(values):
            assert resumed.get(f"trial:{index}") == value  # exact, not approx


class TestContentKeys:
    def test_sweep_key_tracks_semantic_knobs(self):
        base = PipelineConfig(seed=0)
        other = PipelineConfig(seed=0, trim=0.2)
        metrics = ("AHN", "CCI")
        assert sweep_key("small", base, metrics, None) != sweep_key(
            "small", other, metrics, None
        )
        assert sweep_key("small", base, metrics, None) == sweep_key(
            "small", PipelineConfig(seed=0), metrics, None
        )

    def test_sweep_key_ignores_resilience_knobs(self):
        from repro.resilience import RetryPolicy

        base = PipelineConfig(seed=0)
        tweaked = PipelineConfig(
            seed=0, workers=8, retry=RetryPolicy(max_attempts=5)
        )
        metrics = ("AHN",)
        assert sweep_key("small", base, metrics, None) == sweep_key(
            "small", tweaked, metrics, None
        )

    def test_sweep_key_tracks_request(self):
        config = PipelineConfig(seed=0)
        assert sweep_key("small", config, ("AHN",), ("AU",)) != sweep_key(
            "small", config, ("AHN",), ("JP",)
        )
        assert sweep_key("small", config, ("AHN",), None) != sweep_key(
            "small", config, ("CCI",), None
        )

    def test_trials_key_tracks_grid(self):
        config = PipelineConfig(seed=0)
        a = trials_key("small", config, "AHN", "AU", [1, 2], 8, 0, 10)
        b = trials_key("small", config, "AHN", "AU", [1, 2, 4], 8, 0, 10)
        assert a != b


class TestRankingPayload:
    def test_roundtrip_is_value_exact(self):
        ranking = make_ranking()
        payload = json.loads(json.dumps(ranking_to_payload(ranking)))
        rebuilt = ranking_from_payload(payload)
        assert rebuilt == ranking

    def test_malformed_payload_rejected(self):
        import pytest

        from repro.resilience import CheckpointError

        with pytest.raises(CheckpointError):
            ranking_from_payload({"metric": "AHN", "entries": [[1]]})
