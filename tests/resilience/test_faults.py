"""Tests for the deterministic fault-injection plan."""

import pytest

from repro.resilience import FaultPlan, InjectedFault


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="segfault")

    def test_fail_rate_range(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_rate=1.5)

    def test_corrupt_rate_range(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_attempts_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(attempts=0)

    def test_crash_after_units_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_after_units=0)


class TestDeterminism:
    def test_default_plan_injects_nothing(self):
        plan = FaultPlan()
        assert not any(plan.chosen("propagate", i) for i in range(100))
        assert not any(plan.corrupts_line(i) for i in range(100))

    def test_same_seed_same_choices(self):
        a = FaultPlan(seed=7, fail_rate=0.3)
        b = FaultPlan(seed=7, fail_rate=0.3)
        picks = [(s, i) for s in ("propagate", "stability") for i in range(50)]
        assert [a.chosen(*p) for p in picks] == [b.chosen(*p) for p in picks]

    def test_different_seeds_differ(self):
        picks = [("propagate", i) for i in range(200)]
        a = [FaultPlan(seed=1, fail_rate=0.5).chosen(*p) for p in picks]
        b = [FaultPlan(seed=2, fail_rate=0.5).chosen(*p) for p in picks]
        assert a != b

    def test_rate_roughly_respected(self):
        plan = FaultPlan(seed=3, fail_rate=0.25)
        hits = sum(plan.chosen("propagate", i) for i in range(1000))
        assert 150 < hits < 350

    def test_corruption_is_deterministic(self):
        a = FaultPlan(seed=11, corrupt_rate=0.2)
        b = FaultPlan(seed=11, corrupt_rate=0.2)
        lines = list(range(1, 500))
        assert [a.corrupts_line(n) for n in lines] == [
            b.corrupts_line(n) for n in lines
        ]
        assert any(a.corrupts_line(n) for n in lines)


class TestBehavior:
    def test_explicit_chunks_always_fail(self):
        plan = FaultPlan(fail_chunks=frozenset({("propagate", 2)}))
        assert plan.fails("propagate", 2, attempt=0)
        assert not plan.fails("propagate", 1, attempt=0)
        assert not plan.fails("stability", 2, attempt=0)

    def test_failures_stop_after_attempts(self):
        plan = FaultPlan(fail_chunks=frozenset({("s", 0)}), attempts=2)
        assert plan.fails("s", 0, attempt=0)
        assert plan.fails("s", 0, attempt=1)
        assert not plan.fails("s", 0, attempt=2)

    def test_stage_restriction(self):
        plan = FaultPlan(
            fail_chunks=frozenset({("propagate", 0), ("stability", 0)}),
            stages=("stability",),
        )
        assert not plan.fails("propagate", 0, attempt=0)
        assert plan.fails("stability", 0, attempt=0)

    def test_stall_only_on_first_attempt(self):
        plan = FaultPlan(
            delay_chunks=frozenset({("s", 1)}), delay_s=5.0
        )
        assert plan.stall_s("s", 1, attempt=0) == 5.0
        assert plan.stall_s("s", 1, attempt=1) == 0.0
        assert plan.stall_s("s", 0, attempt=0) == 0.0

    def test_apply_raises_injected_fault(self):
        plan = FaultPlan(fail_chunks=frozenset({("s", 0)}), kind="raise")
        with pytest.raises(InjectedFault):
            plan.apply("s", 0, attempt=0)
        plan.apply("s", 0, attempt=1)  # no-op past the fault window

    def test_corrupt_breaks_json(self):
        import json

        plan = FaultPlan(corrupt_rate=1.0)
        line = '{"type": "rib", "peer_ip": "10.0.0.1", "path": [1, 2]}'
        mangled = plan.corrupt(line)
        assert mangled != line
        with pytest.raises(json.JSONDecodeError):
            json.loads(mangled)

    def test_crashes_after(self):
        plan = FaultPlan(crash_after_units=3)
        assert not plan.crashes_after(2)
        assert plan.crashes_after(3)
        assert plan.crashes_after(4)
        assert not FaultPlan().crashes_after(1000)
