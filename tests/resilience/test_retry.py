"""Tests for the retry/timeout/recovery fan-out wrapper.

The contract under test: whatever faults a plan injects — raised
exceptions, killed workers, hung chunks — ``resilient_map`` returns
exactly what the fault-free run returns, in payload order.
"""

import pytest

from repro.obs.trace import Tracer
from repro.resilience import (
    ChunkFailedError,
    FaultPlan,
    RetryPolicy,
    resilient_map,
)


def double(value):
    """Top-level worker (picklable)."""
    return value * 2


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.3)
        assert policy.backoff_s(0) == 0.0
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(5) == pytest.approx(0.3)  # capped

    def test_no_backoff_by_default(self):
        assert RetryPolicy().backoff_s(2) == 0.0


class TestFaultFree:
    def test_plain_map(self):
        assert resilient_map("s", double, [1, 2, 3], workers=2) == [2, 4, 6]

    def test_single_worker(self):
        assert resilient_map("s", double, [5], workers=1) == [10]

    def test_empty_payloads(self):
        assert resilient_map("s", double, [], workers=2) == []

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            resilient_map("s", double, [1], workers=0)


class TestRecovery:
    def test_soft_fault_retried(self):
        tracer = Tracer()
        faults = FaultPlan(fail_chunks=frozenset({("s", 1)}), kind="raise")
        out = resilient_map(
            "s", double, [1, 2, 3], workers=2, tracer=tracer, faults=faults
        )
        assert out == [2, 4, 6]
        counters = tracer.metrics.counters()
        assert counters["resilience.injected_fault"] == 1
        assert counters["resilience.retry"] == 1

    def test_killed_worker_respawns_pool(self):
        tracer = Tracer()
        faults = FaultPlan(fail_chunks=frozenset({("s", 0)}), kind="exit")
        out = resilient_map(
            "s", double, [1, 2, 3, 4], workers=2, tracer=tracer, faults=faults
        )
        assert out == [2, 4, 6, 8]
        counters = tracer.metrics.counters()
        assert counters["resilience.pool_respawn"] >= 1

    def test_timeout_recovers_quickly(self):
        tracer = Tracer()
        faults = FaultPlan(
            delay_chunks=frozenset({("s", 1)}), delay_s=30.0
        )
        policy = RetryPolicy(timeout_s=0.5)
        out = resilient_map(
            "s", double, [1, 2, 3], workers=2,
            policy=policy, tracer=tracer, faults=faults,
        )
        assert out == [2, 4, 6]
        counters = tracer.metrics.counters()
        assert counters["resilience.timeout"] == 1
        assert counters["resilience.pool_respawn"] >= 1

    def test_serial_fallback_after_exhaustion(self):
        tracer = Tracer()
        # the chunk fails on every pool attempt the policy allows
        faults = FaultPlan(
            fail_chunks=frozenset({("s", 0)}), kind="raise", attempts=10
        )
        policy = RetryPolicy(max_attempts=2)
        out = resilient_map(
            "s", double, [7, 8], workers=2,
            policy=policy, tracer=tracer, faults=faults,
        )
        assert out == [14, 16]
        assert tracer.metrics.counters()["resilience.serial_fallback"] == 1

    def test_no_fallback_raises(self):
        faults = FaultPlan(
            fail_chunks=frozenset({("s", 0)}), kind="raise", attempts=10
        )
        policy = RetryPolicy(max_attempts=2, serial_fallback=False)
        with pytest.raises(ChunkFailedError):
            resilient_map(
                "s", double, [1, 2], workers=2,
                policy=policy, faults=faults,
            )

    def test_output_matches_fault_free_run(self):
        payloads = list(range(8))
        clean = resilient_map("s", double, payloads, workers=3)
        faults = FaultPlan(seed=5, fail_rate=0.5, attempts=1)
        faulty = resilient_map(
            "s", double, payloads, workers=3, faults=faults
        )
        assert faulty == clean
