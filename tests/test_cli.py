"""Tests for the repro-rank command-line interface."""

import json

import pytest

from repro.cli import build_world, main
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.sanitize import REJECT_CATEGORIES
from repro.obs.export import validate_jsonl


class TestBuildWorld:
    def test_named_worlds(self):
        assert build_world("small", 0).summary()["ases"] < 100
        assert build_world("paper2021", 0).name == "paper:2021-04"
        assert build_world("paper2023", 0).name == "paper:2023-03"

    def test_unknown_world(self):
        with pytest.raises(ValueError):
            build_world("tiny", 0)


class TestCommands:
    def test_world_summary(self, capsys):
        assert main(["--world", "small", "world"]) == 0
        out = capsys.readouterr().out
        assert "ases" in out and "vps" in out

    def test_rank(self, capsys):
        assert main(["--world", "small", "rank", "AHN", "AU", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "AHN:AU" in out

    def test_filter_report(self, capsys):
        assert main(["--world", "small", "filter"]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out

    def test_case_study(self, capsys):
        assert main(["--world", "small", "case-study", "AU"]) == 0
        out = capsys.readouterr().out
        assert "CCI" in out and "AHN" in out

    def test_census(self, capsys):
        assert main(["--world", "small", "census"]) == 0
        assert "VP IPs" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["--world", "small", "report", "AU"]) == 0
        out = capsys.readouterr().out
        assert "# Internet profile: AU" in out
        assert "Market concentration" in out

    def test_release(self, capsys, tmp_path):
        target = tmp_path / "bundle"
        assert main([
            "--world", "small", "release", str(target), "--countries", "AU",
        ]) == 0
        assert (target / "manifest.json").exists()

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main(["--world", "small"])


class TestTraceCommand:
    def test_stage_report_drops_match_filter_report(self, capsys):
        assert main(["--world", "small", "trace"]) == 0
        out = capsys.readouterr().out
        assert "pipeline stage report" in out
        assert "sanitize" in out

        # The same world/seed, run directly: the report's Table-1 drop
        # counts must match the FilterReport exactly.
        result = run_pipeline(build_world("small", 0), PipelineConfig(seed=0))
        report = result.paths.report
        section = out.split("-- sanitize drops")[1].split("\n--")[0]
        drop_lines = {
            parts[0]: int(parts[1])
            for parts in (line.split() for line in section.splitlines())
            if parts and parts[0] in REJECT_CATEGORIES
        }
        for category in REJECT_CATEGORIES:
            assert drop_lines[category] == report.rejected[category], category

    def test_json_mode_emits_schema_valid_spans(self, capsys):
        assert main(["--world", "small", "trace", "--json"]) == 0
        out = capsys.readouterr().out
        assert validate_jsonl(out) == []
        events = [json.loads(line) for line in out.splitlines() if line.strip()]
        stages = {e["name"] for e in events if e["type"] == "span"}
        required = {
            "ribs", "sanitize", "geolocate", "views", "cone", "hegemony",
            "ahc", "cti", "ranking",
        }
        assert required <= stages
        assert len(stages) >= 8

    def test_prom_mode(self, capsys):
        assert main(["--world", "small", "trace", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sanitize_input_total counter" in out
        assert "repro_sanitize_accepted_total" in out

    def test_country_option(self, capsys):
        assert main(["--world", "small", "trace", "--country", "AU"]) == 0
        assert "stage report" in capsys.readouterr().out


class TestSweep:
    def test_default_metrics(self, capsys):
        assert main(["--world", "small", "sweep", "--countries", "AU", "-k", "3"]) == 0
        out = capsys.readouterr().out
        for metric in ("CCI", "CCN", "AHI", "AHN"):
            assert f"{metric}:AU" in out

    def test_metric_and_country_lists(self, capsys):
        assert main([
            "--world", "small", "sweep",
            "--metrics", "cti,ahi", "--countries", "AU,US", "-k", "2",
        ]) == 0
        out = capsys.readouterr().out
        for header in ("CTI:AU", "CTI:US", "AHI:AU", "AHI:US"):
            assert header in out

    def test_unknown_metric(self, capsys):
        assert main(["--world", "small", "sweep", "--metrics", "CCI,NOPE"]) == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_unknown_country(self, capsys):
        assert main(["--world", "small", "sweep", "--countries", "AU,??"]) == 2
        assert "unknown country" in capsys.readouterr().err


class TestSweepCheckpoint:
    ARGS = [
        "--world", "small", "sweep",
        "--metrics", "AHN", "--countries", "AU", "-k", "2",
    ]

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        path = tmp_path / "sweep.ck"
        assert main(self.ARGS + ["--checkpoint", str(path)]) == 0
        first = capsys.readouterr().out
        assert path.is_file()
        assert main(self.ARGS + ["--checkpoint", str(path), "--resume"]) == 0
        assert capsys.readouterr().out == first  # byte-identical resume

    def test_resume_requires_checkpoint(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_torn_checkpoint_resume_byte_identical(self, capsys, tmp_path):
        """A crash mid-append leaves a torn trailing line; the resumed
        sweep must still produce byte-identical output."""
        import warnings

        args = [
            "--world", "small", "sweep",
            "--metrics", "AHN,CCI", "--countries", "AU", "-k", "2",
        ]
        path = tmp_path / "sweep.ck"
        assert main(args + ["--checkpoint", str(path)]) == 0
        first = capsys.readouterr().out
        raw = path.read_bytes()
        torn_at = raw.rstrip(b"\n").rfind(b"\n") + 1
        path.write_bytes(raw[: (torn_at + len(raw)) // 2])  # tear mid-line
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert main(args + ["--checkpoint", str(path), "--resume"]) == 0
        assert capsys.readouterr().out == first


class TestWatch:
    ARGS = ["watch", "small@0", "small@1", "--metrics", "AHN", "--countries", "AU"]

    def test_summary_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "== watch ==" in out
        assert "small@0 -> small@1" in out

    def test_json_mode_emits_schema_valid_events(self, capsys):
        from repro.monitor import validate_watch_jsonl

        assert main(self.ARGS + ["--json"]) == 0
        out = capsys.readouterr().out
        assert validate_watch_jsonl(out) == []
        kinds = {json.loads(line)["type"] for line in out.splitlines() if line.strip()}
        assert {"snapshot", "ranking", "drift"} <= kinds

    def test_prom_mode(self, capsys):
        assert main(self.ARGS + ["--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_monitor_events_total counter" in out
        assert "repro_monitor_drifts_total" in out

    def test_trace_mode_appends_monitor_section(self, capsys):
        assert main(self.ARGS + ["--trace"]) == 0
        out = capsys.readouterr().out
        assert "watch stage report" in out
        assert "monitor (watch run stats)" in out

    def test_checkpoint_then_resume_byte_identical(self, capsys, tmp_path):
        path = tmp_path / "watch.ck"
        args = self.ARGS + ["--json", "--checkpoint", str(path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert path.is_file()
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_metric(self, capsys):
        assert main(["watch", "small@0", "small@1", "--metrics", "XXX"]) == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_bad_country_shape(self, capsys):
        assert main(self.ARGS[:-1] + ["AUS"]) == 2
        assert "two-letter" in capsys.readouterr().err

    def test_unresolvable_snapshot(self, capsys):
        assert main(["watch", "small@0", "nonexistent.jsonl"]) == 2
        assert "not a known world" in capsys.readouterr().err

    def test_bad_seed(self, capsys):
        assert main(["watch", "small@x", "small@1"]) == 2
        assert "not an integer" in capsys.readouterr().err

    def test_too_few_snapshots(self, capsys):
        assert main(["watch", "small@0"]) == 2
        assert "at least 2" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_bad_threshold(self, capsys):
        assert main(self.ARGS + ["--tau-threshold", "3.0"]) == 2
        assert "tau threshold" in capsys.readouterr().err

    def test_non_replayable_metric_on_release(self, capsys, tmp_path):
        day = tmp_path / "day.jsonl"
        day.write_text("")
        assert main(["watch", "small@0", str(day), "--metrics", "CTI"]) == 2
        assert "cannot be replayed" in capsys.readouterr().err


class TestValidation:
    def test_unknown_metric(self, capsys):
        assert main(["--world", "small", "rank", "XXX"]) == 2
        err = capsys.readouterr().err
        assert "unknown metric 'XXX'" in err
        assert "CCI" in err  # lists the valid choices

    def test_unknown_country(self, capsys):
        assert main(["--world", "small", "rank", "AHN", "ZZ"]) == 2
        assert "unknown country 'ZZ'" in capsys.readouterr().err

    def test_country_metric_without_country(self, capsys):
        assert main(["--world", "small", "rank", "AHN"]) == 2
        assert "requires a country" in capsys.readouterr().err

    def test_lowercase_inputs_accepted(self, capsys):
        assert main(["--world", "small", "rank", "ahg", "-k", "2"]) == 0
        assert "AHG" in capsys.readouterr().out

    def test_case_study_unknown_country(self, capsys):
        assert main(["--world", "small", "case-study", "QQ"]) == 2
        assert "unknown country" in capsys.readouterr().err

    def test_stability_unknown_metric(self, capsys):
        assert main(["--world", "small", "stability", "AU", "BOGUS"]) == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_concentration_unknown_country(self, capsys):
        assert main(["--world", "small", "concentration", "AU,??"]) == 2
        assert "unknown country" in capsys.readouterr().err

    def test_disconnect_bad_target(self, capsys):
        assert main(["--world", "small", "disconnect", "1,2,x"]) == 2
        assert "neither a country code nor" in capsys.readouterr().err

    def test_disconnect_unknown_country(self, capsys):
        assert main(["--world", "small", "disconnect", "qq"]) == 2
        assert "unknown country" in capsys.readouterr().err

    def test_trace_unknown_country(self, capsys):
        assert main(["--world", "small", "trace", "--country", "ZZ"]) == 2
        assert "unknown country" in capsys.readouterr().err

    def test_replay_unknown_metric(self, capsys):
        assert main(["replay", "nonexistent.jsonl", "NOPE"]) == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_sweep_empty_metrics(self, capsys):
        assert main(["--world", "small", "sweep", "--metrics", ""]) == 2
        assert "--metrics needs at least one" in capsys.readouterr().err

    def test_sweep_empty_countries(self, capsys):
        assert main(["--world", "small", "sweep", "--countries", ","]) == 2
        assert "--countries needs at least one" in capsys.readouterr().err

    def test_release_unknown_country(self, capsys, tmp_path):
        target = tmp_path / "bundle"
        assert main([
            "--world", "small", "release", str(target), "--countries", "AU,ZZ",
        ]) == 2
        assert "unknown country 'ZZ'" in capsys.readouterr().err
        assert not target.exists()  # nothing written before the failure

    def test_replay_unplayable_metric(self, capsys):
        assert main(["replay", "nonexistent.jsonl", "AHC"]) == 2
        assert "cannot be replayed" in capsys.readouterr().err

    def test_replay_country_metric_without_country(self, capsys, tmp_path):
        paths_file = self._release_paths(tmp_path)
        assert main(["replay", paths_file, "AHN"]) == 2
        assert "requires a country" in capsys.readouterr().err

    def test_replay_unknown_country(self, capsys, tmp_path):
        paths_file = self._release_paths(tmp_path)
        assert main(["replay", paths_file, "AHN", "ZZ"]) == 2
        err = capsys.readouterr().err
        assert "unknown country 'ZZ'" in err

    def test_replay_known_country_accepted(self, capsys, tmp_path):
        paths_file = self._release_paths(tmp_path)
        assert main(["replay", paths_file, "AHN", "au", "-k", "2"]) == 0
        assert "AHN:AU" in capsys.readouterr().out

    @staticmethod
    def _release_paths(tmp_path):
        target = tmp_path / "bundle"
        assert main([
            "--world", "small", "release", str(target), "--countries", "AU",
        ]) == 0
        return str(target / "paths.jsonl")


class TestFlagSanity:
    """Malformed numeric flags exit 2 with a message, never a traceback."""

    @pytest.mark.parametrize("argv,message", [
        (["--world", "small", "rank", "AHN", "AU", "-k", "0"],
         "-k must be >= 1"),
        (["--world", "small", "sweep", "--countries", "AU", "-k", "-3"],
         "-k must be >= 1"),
        (["replay", "nonexistent.jsonl", "AHN", "AU", "-k", "0"],
         "-k must be >= 1"),  # rejected before the paths file is touched
        (["--world", "small", "stability", "AU", "--trials", "0"],
         "--trials must be >= 1"),
        (["--world", "small", "--workers", "0", "rank", "AHN", "AU"],
         "--workers must be >= 1"),
        (["watch", "small@0", "small@1", "--top", "0"],
         "top must be >= 1"),
        (["--workers", "0", "watch", "small@0", "small@1"],
         "--workers must be >= 1"),
    ])
    def test_exit_2_with_message(self, capsys, argv, message):
        assert main(argv) == 2
        assert message in capsys.readouterr().err


class TestServeValidation:
    """The serve flags follow the same exit-2 discipline."""

    @pytest.mark.parametrize("argv,message", [
        (["serve", "--port", "70000"], "--port must be in 0..65535"),
        (["serve", "--port", "-1"], "--port must be in 0..65535"),
        (["serve", "--max-requests", "0"], "--max-requests must be >= 1"),
        (["serve", "--no-resume"], "--no-resume requires --store"),
        (["serve", "--precompute", ""],
         "--precompute needs at least one metric"),
        (["serve", "--precompute", "NOPE"], "unknown metric 'NOPE'"),
        (["serve", "--precompute", "AHN", "--countries", ","],
         "--countries needs at least one country"),
        (["serve", "--precompute", "AHN", "--countries", "AU,ZZ"],
         "unknown country 'ZZ'"),
    ])
    def test_exit_2_with_message(self, capsys, argv, message):
        assert main(["--world", "small"] + argv) == 2
        err = capsys.readouterr().err
        assert "repro-rank: error:" in err
        assert message in err

    def test_workers_validated_before_serving(self, capsys):
        assert main(["--world", "small", "--workers", "0", "serve"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_standalone_entry_point(self, capsys):
        from repro.serve.cli import main as serve_main

        assert serve_main(["--port", "99999"]) == 2
        assert "repro-serve: error:" in capsys.readouterr().err
