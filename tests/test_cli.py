"""Tests for the repro-rank command-line interface."""

import pytest

from repro.cli import build_world, main


class TestBuildWorld:
    def test_named_worlds(self):
        assert build_world("small", 0).summary()["ases"] < 100
        assert build_world("paper2021", 0).name == "paper:2021-04"
        assert build_world("paper2023", 0).name == "paper:2023-03"

    def test_unknown_world(self):
        with pytest.raises(ValueError):
            build_world("tiny", 0)


class TestCommands:
    def test_world_summary(self, capsys):
        assert main(["--world", "small", "world"]) == 0
        out = capsys.readouterr().out
        assert "ases" in out and "vps" in out

    def test_rank(self, capsys):
        assert main(["--world", "small", "rank", "AHN", "AU", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "AHN:AU" in out

    def test_filter_report(self, capsys):
        assert main(["--world", "small", "filter"]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out

    def test_case_study(self, capsys):
        assert main(["--world", "small", "case-study", "AU"]) == 0
        out = capsys.readouterr().out
        assert "CCI" in out and "AHN" in out

    def test_census(self, capsys):
        assert main(["--world", "small", "census"]) == 0
        assert "VP IPs" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["--world", "small", "report", "AU"]) == 0
        out = capsys.readouterr().out
        assert "# Internet profile: AU" in out
        assert "Market concentration" in out

    def test_release(self, capsys, tmp_path):
        target = tmp_path / "bundle"
        assert main([
            "--world", "small", "release", str(target), "--countries", "AU",
        ]) == 0
        assert (target / "manifest.json").exists()

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main(["--world", "small"])
