"""PathIndex / ViewSlicer equivalence with the naive view builders.

The batch engine's contract is that indexed construction is invisible:
same view names, same countries, same records in the same order as
:mod:`repro.core.views`. These tests pin that down on a full small-world
pipeline plus hand-built corner cases.
"""

import random

import pytest

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline, small_profiles
from repro.bgp.collectors import VantagePoint
from repro.core.sanitize import FilterReport, PathRecord, PathSet
from repro.core.views import (
    View,
    destination_view,
    global_view,
    international_view,
    ip_sort_key,
    national_view,
    outbound_view,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.perf import PathIndex, ViewSlicer

SMALL = GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"))

NAIVE_BUILDERS = {
    "national": national_view,
    "international": international_view,
    "outbound": outbound_view,
}


@pytest.fixture(scope="module")
def result():
    return run_pipeline(generate_world(SMALL, seed=1, name="small"))


@pytest.fixture(scope="module")
def index(result):
    return PathIndex.from_paths(result.paths)


def record(vp_ip, vp_country, prefix, prefix_country, path):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country=vp_country,
        prefix=Prefix.parse(prefix),
        prefix_country=prefix_country,
        path=ASPath.parse(path),
        addresses=Prefix.parse(prefix).num_addresses(),
    )


class TestIndexedViews:
    def test_country_views_match_naive(self, result, index):
        for country in result.paths.countries():
            for kind, build in NAIVE_BUILDERS.items():
                naive = build(result.paths, country)
                indexed = index.view(kind, country)
                assert indexed.name == naive.name
                assert indexed.country == naive.country
                assert indexed.records == naive.records

    def test_global_view_matches_naive(self, result, index):
        naive = global_view(result.paths)
        indexed = index.view("global")
        assert indexed.name == naive.name
        assert indexed.country is None
        assert indexed.records == naive.records

    def test_unknown_kind_rejected_before_country_check(self, index):
        with pytest.raises(ValueError, match="unknown view kind"):
            index.view("bogus")

    def test_country_required_for_country_kinds(self, index):
        with pytest.raises(ValueError, match="requires a country"):
            index.view("national")

    def test_countries_and_vps_match_pathset(self, result, index):
        assert index.countries() == result.paths.countries()
        assert index.vp_ips() == [vp.ip for vp in result.paths.vps()]

    def test_destination_view_matches_naive(self, result, index):
        origins = sorted(index.origin_prefixes)[:3]
        naive = destination_view(result.paths, origins)
        indexed = index.destination_view(origins)
        assert indexed.name == naive.name
        assert indexed.records == naive.records

    def test_lazy_maps_match_records(self, result, index):
        prefixes = {}
        origin_prefixes = {}
        for rec in result.paths.records:
            prefixes[rec.prefix] = rec.addresses
            origin_prefixes.setdefault(rec.origin, set()).add(rec.prefix)
        assert index.prefix_addresses == prefixes
        assert index.origin_prefixes == origin_prefixes


class TestVPOrdering:
    def test_vps_sorted_numerically_not_lexicographically(self):
        records = [
            record("10.0.0.1", "AU", "1.0.0.0/16", "AU", "1 2 3"),
            record("9.0.0.1", "AU", "1.0.0.0/16", "AU", "4 2 3"),
        ]
        view = View(name="national:AU", country="AU", records=tuple(records))
        ips = [vp.ip for vp in view.vps()]
        # lexicographically "10.0.0.1" < "9.0.0.1"; numerically not
        assert ips == ["9.0.0.1", "10.0.0.1"]
        paths = PathSet(records=records, report=FilterReport())
        assert [vp.ip for vp in paths.vps()] == ["9.0.0.1", "10.0.0.1"]

    def test_ip_sort_key_handles_both_families(self):
        assert ip_sort_key("9.0.0.1") < ip_sort_key("10.0.0.1")
        assert ip_sort_key("10.0.0.1") < ip_sort_key("::1")


class TestViewSlicer:
    def test_restrict_matches_naive_restrict_vps(self, result):
        view = result.view("global")
        slicer = ViewSlicer(view)
        ips = [vp.ip for vp in view.vps()]
        rng = random.Random(7)
        for size in (1, 2, max(1, len(ips) // 2), len(ips)):
            sample = rng.sample(ips, size)
            naive = view.restrict_vps(sample)
            fast = slicer.restrict(sample)
            assert fast.name == naive.name
            assert fast.country == naive.country
            assert fast.records == naive.records

    def test_vp_ips_match_view(self, result):
        view = result.view("global")
        slicer = ViewSlicer(view)
        assert slicer.vp_ips() == [vp.ip for vp in view.vps()]
