"""Fan-out determinism: any worker count yields the serial result.

These run the real ``ProcessPoolExecutor`` path (workers=2) against the
in-process serial path on a small world and require exact equality —
same routes, same NDCG scores, same rankings. Also pins down the
``chunked`` splitting contract the fan-out relies on.
"""

import pytest

from repro import (
    GeneratorConfig,
    PipelineConfig,
    generate_world,
    run_pipeline,
    small_profiles,
)
from repro.analysis.stability import stability_curve
from repro.bgp.propagation import propagate_all
from repro.perf.parallel import CHUNKS_PER_WORKER, chunk_count, chunked
from repro.perf.pool import WorkerPool

SMALL = GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"))


@pytest.fixture(scope="module")
def world():
    return generate_world(SMALL, seed=1, name="small")


@pytest.fixture(scope="module")
def result(world):
    return run_pipeline(world)


class TestChunked:
    def test_concatenation_reproduces_input(self):
        items = list(range(17))
        for chunks in (1, 2, 3, 5, 16, 17, 40):
            parts = chunked(items, chunks)
            assert [x for part in parts for x in part] == items
            assert len(parts) <= chunks
            assert all(parts)  # no empty chunks

    def test_near_equal_sizes(self):
        parts = chunked(list(range(10)), 3)
        sizes = sorted(len(part) for part in parts)
        assert sizes == [3, 3, 4]

    def test_empty_input(self):
        assert chunked([], 4) == []

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestChunkCount:
    def test_oversplits_for_balance(self):
        # plenty of work: more chunks than workers, so a slow chunk
        # cannot serialize the whole sweep behind it
        assert chunk_count(1000, 4) == 4 * CHUNKS_PER_WORKER

    def test_never_exceeds_items(self):
        assert chunk_count(3, 4) == 3
        assert chunk_count(1, 8) == 1

    def test_floor_of_one(self):
        assert chunk_count(0, 4) == 1


class TestPropagationFanOut:
    def test_workers_match_serial(self, world):
        origins = [
            asn for asn in world.graph.asns() if world.graph.node(asn).prefixes
        ][:8]
        serial = propagate_all(world.graph, origins=origins, workers=1)
        fanned = propagate_all(world.graph, origins=origins, workers=2)
        assert fanned.routes == serial.routes

    def test_keep_filter_matches_serial(self, world):
        origins = [
            asn for asn in world.graph.asns() if world.graph.node(asn).prefixes
        ][:8]
        keep = set(list(world.graph.asns())[:5])
        serial = propagate_all(world.graph, origins=origins, keep=keep, workers=1)
        fanned = propagate_all(world.graph, origins=origins, keep=keep, workers=2)
        assert fanned.routes == serial.routes

    def test_rejects_bad_workers(self, world):
        with pytest.raises(ValueError, match="workers"):
            propagate_all(world.graph, workers=0)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_persistent_pool_matches_serial(self, world, workers):
        origins = [
            asn for asn in world.graph.asns() if world.graph.node(asn).prefixes
        ][:8]
        serial = propagate_all(world.graph, origins=origins, workers=1)
        with WorkerPool(workers) as pool:
            first = propagate_all(
                world.graph, origins=origins, workers=workers, pool=pool
            )
            again = propagate_all(
                world.graph, origins=origins, workers=workers, pool=pool
            )
            assert first.routes == serial.routes
            assert again.routes == serial.routes
            if workers > 1:
                # one spawn serves both sweeps: the adjacency broadcast
                # is identity-memoized, so the second call reuses it
                assert pool.stats["spawns"] == 1
                assert pool.stats["broadcasts"] == 1


class TestStabilityFanOut:
    def test_workers_match_serial(self, result):
        country = result.countries_with_national_view()[0]
        view = result.view("national", country)
        serial = stability_curve(
            result, "CCN", view, sizes=[3, 5], trials=3, seed=9, workers=1
        )
        fanned = stability_curve(
            result, "CCN", view, sizes=[3, 5], trials=3, seed=9, workers=2
        )
        assert fanned == serial

    def test_rejects_bad_workers(self, result):
        country = result.countries_with_national_view()[0]
        view = result.view("national", country)
        with pytest.raises(ValueError, match="workers"):
            stability_curve(result, "CCN", view, sizes=[3], trials=1, workers=0)


class TestRankAll:
    def test_matches_individual_rankings(self, result):
        countries = result.countries_with_national_view()[:2]
        sweep = result.rank_all(("CCI", "AHN", "CTI"), countries)
        assert set(sweep) == {
            (metric, country)
            for metric in ("CCI", "AHN", "CTI")
            for country in countries
        }
        for (metric, country), ranking in sweep.items():
            assert ranking == result.ranking(metric, country)

    def test_global_metric_keyed_once(self, result):
        sweep = result.rank_all(("CCG",), ["US", "SE"])
        assert list(sweep) == [("CCG", None)]
        assert sweep[("CCG", None)] == result.ranking("CCG")

    def test_rejects_unknown_metric(self, result):
        with pytest.raises(ValueError, match="unknown metric"):
            result.rank_all(("XXX",))

    def test_config_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            PipelineConfig(workers=0)
