"""The SoA path store must be invisible: every product it feeds —
primed suffix tables, origin buckets — must be value-identical to what
the record-walking code builds, on both the numpy and the stdlib-array
backends."""

import pytest

from repro import (
    GeneratorConfig,
    generate_world,
    run_pipeline,
    small_profiles,
)
from repro.net.aspath import ASPath
from repro.perf.cache import SuffixCache
from repro.perf.index import PathIndex
from repro.perf.pathstore import PathStore
import repro.perf.pathstore as pathstore_mod

SMALL = GeneratorConfig(
    profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
)


@pytest.fixture(scope="module")
def result():
    return run_pipeline(generate_world(SMALL, seed=4, name="small"))


@pytest.fixture(scope="module")
def store(result):
    return result.paths.store()


@pytest.fixture(params=["numpy", "fallback"])
def backend(request, monkeypatch):
    """Run a test under both array backends (skip numpy if absent)."""
    if request.param == "fallback":
        monkeypatch.setattr(pathstore_mod, "_np", None)
    elif not pathstore_mod.HAVE_NUMPY:
        pytest.skip("numpy not installed")
    return request.param


class TestLayout:
    def test_tokens_roundtrip_distinct_paths(self, result, store):
        records = result.paths.records
        assert store.record_count == len(records)
        assert len(store) == len({record.path for record in records})
        for pid, path in enumerate(store.paths):
            offset = int(store.offsets[pid])
            length = int(store.lengths[pid])
            assert tuple(store.tokens[offset:offset + length]) == path.asns

    def test_record_columns_match_records(self, result, store):
        records = result.paths.records
        for position, record in enumerate(records):
            assert store.paths[int(store.record_path[position])] == record.path
            assert int(store.record_origin[position]) == record.path.origin
            assert store.record_addresses[position] == record.addresses

    def test_addresses_survive_beyond_int64(self):
        class Rec:
            def __init__(self, path, addresses):
                self.path = path
                self.addresses = addresses

        huge = 2 ** 96  # an IPv6 /32's address count
        built = PathStore([Rec(ASPath.trusted((1, 2)), huge)])
        assert built.record_addresses[0] == huge

    def test_shared_via_pathset(self, result):
        assert result.paths.store() is result.paths.store()


class TestSuffixStarts:
    def test_matches_suffix_cache_compute(self, result, backend):
        built = PathStore(result.paths.records)
        cache = SuffixCache(result.oracle)
        assert cache._p2c is not None
        starts = built.suffix_starts(cache._p2c)
        for pid, path in enumerate(built.paths):
            expected = cache._compute(path)
            assert tuple(path.asns[starts[pid]:]) == expected

    def test_edge_cases(self, backend):
        class Rec:
            def __init__(self, path):
                self.path = path
                self.addresses = 1

        paths = [
            ASPath.trusted((5,)),           # single hop: suffix is itself
            ASPath.trusted((1, 2, 3)),      # full p2c chain: start 0
            ASPath.trusted((9, 1, 2)),      # tail-only chain
            ASPath.trusted((2, 1, 9)),      # no p2c tail: origin only
        ]
        built = PathStore([Rec(p) for p in paths])
        p2c = frozenset({(1, 2), (2, 3)})
        assert built.suffix_starts(p2c) == [0, 0, 1, 2]
        assert built.suffix_starts(frozenset()) == [0, 2, 2, 2]

    def test_empty_store(self, backend):
        built = PathStore([])
        assert built.suffix_starts(frozenset({(1, 2)})) == []
        assert built.origin_buckets() == {}


class TestPrimedCache:
    def test_prime_matches_lazy_warm(self, result, backend):
        built = PathStore(result.paths.records)
        primed = SuffixCache(result.oracle)
        installed = built.prime_suffix_cache(primed)
        assert installed == len(built)
        lazy = SuffixCache(result.oracle)
        for record in result.paths.records:
            lazy(record.path)
        assert primed.table == lazy.table

    def test_primed_values_are_plain_ints(self, result, store):
        primed = SuffixCache(result.oracle)
        store.prime_suffix_cache(primed)
        for suffix in primed.table.values():
            assert all(type(asn) is int for asn in suffix)

    def test_prime_skips_oracle_without_edges(self, result, store):
        class Opaque:
            def relationship(self, left, right):
                return None

        cache = SuffixCache(Opaque())
        assert store.prime_suffix_cache(cache) == 0
        assert cache.table == {}

    def test_pipeline_cache_is_store_backed(self, result):
        cache = result.suffix_cache()
        store = result.paths.store()
        assert cache._store is store
        # resolving through the store slices the shared token column and
        # matches the per-path backward scan exactly, with plain ints
        lone = SuffixCache(result.oracle)
        for path in store.paths[:50]:
            suffix = cache(path)
            assert suffix == lone(path)
            assert all(type(token) is int for token in suffix)


class TestOriginBuckets:
    def test_matches_naive_scan(self, result, backend):
        records = result.paths.records
        built = PathStore(records)
        naive = {}
        for position, record in enumerate(records):
            naive.setdefault(record.path.origin, []).append(position)
        got = built.origin_buckets()
        assert got == naive
        assert list(got) == list(naive)  # first-appearance key order
        assert all(type(key) is int for key in got)

    def test_index_buckets_identical_with_and_without_store(self, result):
        records = result.paths.records
        plain = PathIndex(records)
        backed = PathIndex(records, store=result.paths.store())
        assert plain._origin_buckets() == backed._origin_buckets()
        assert list(plain._origin_buckets()) == list(backed._origin_buckets())
        assert plain.origin_prefixes == backed.origin_prefixes
