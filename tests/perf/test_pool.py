"""WorkerPool lifecycle: ship-once broadcast, persistence across
fan-outs, poisoned-pool respawn, and registry cleanup on close."""

import pytest

from repro.perf.pool import WorkerPool, _BROADCAST, broadcast_get
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import resilient_map


def _double(x):
    return 2 * x


def _resolve_len(token):
    return len(broadcast_get(token))


class TestBroadcast:
    def test_token_resolves_parent_side(self):
        with WorkerPool(2) as pool:
            token = pool.broadcast("blob", [1, 2, 3])
            assert broadcast_get(token) == [1, 2, 3]

    def test_same_object_is_memoized(self):
        blob = {"k": 1}
        with WorkerPool(2) as pool:
            first = pool.broadcast("blob", blob)
            again = pool.broadcast("blob", blob)
            assert first == again
            assert pool.stats["broadcasts"] == 1

    def test_distinct_objects_get_distinct_tokens(self):
        with WorkerPool(2) as pool:
            one = pool.broadcast("blob", [1])
            two = pool.broadcast("blob", [2])
            assert one != two

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError, match="not installed"):
            broadcast_get("nope#0")

    def test_close_drops_registrations(self):
        pool = WorkerPool(2)
        token = pool.broadcast("blob", [1, 2])
        assert token in _BROADCAST
        pool.close()
        assert token not in _BROADCAST

    def test_workers_resolve_broadcast_state(self):
        with WorkerPool(2) as pool:
            token = pool.broadcast("blob", [10, 20, 30])
            future = pool.executor().submit(_resolve_len, token)
            assert future.result(timeout=60) == 3


class TestLifecycle:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(0)

    def test_executor_persists_across_uses(self):
        with WorkerPool(2) as pool:
            first = pool.executor()
            second = pool.executor()
            assert first is second
            assert pool.stats["spawns"] == 1

    def test_new_broadcast_marks_live_pool_stale(self):
        with WorkerPool(2) as pool:
            before = pool.executor()
            pool.broadcast("blob", [1])
            after = pool.executor()
            assert after is not before
            assert pool.stats["spawns"] == 2

    def test_broadcast_before_start_does_not_respawn(self):
        with WorkerPool(2) as pool:
            pool.broadcast("blob", [1])
            pool.broadcast("blob2", [2])
            pool.executor()
            assert pool.stats["spawns"] == 1

    def test_invalidate_respawns_fresh(self):
        with WorkerPool(2) as pool:
            before = pool.executor()
            pool.invalidate()
            assert pool.stats["respawns"] == 1
            after = pool.executor()
            assert after is not before
            assert after.submit(_double, 21).result(timeout=60) == 42


class TestResilientMapIntegration:
    def test_external_pool_is_reused_across_calls(self):
        with WorkerPool(2) as pool:
            for _ in range(3):
                out = resilient_map(
                    "s", _double, [1, 2, 3], workers=2, pool=pool
                )
                assert out == [2, 4, 6]
            assert pool.stats["spawns"] == 1
            assert pool.stats["respawns"] == 0

    def test_injected_raise_is_retried_on_external_pool(self):
        faults = FaultPlan(fail_chunks=frozenset({("s", 1)}), kind="raise")
        with WorkerPool(2) as pool:
            out = resilient_map(
                "s", _double, [1, 2, 3], workers=2, faults=faults, pool=pool
            )
            assert out == [2, 4, 6]

    def test_killed_worker_respawns_external_pool(self):
        faults = FaultPlan(fail_chunks=frozenset({("s", 0)}), kind="exit")
        with WorkerPool(2) as pool:
            out = resilient_map(
                "s", _double, [1, 2, 3, 4], workers=2, faults=faults, pool=pool
            )
            assert out == [2, 4, 6, 8]
            assert pool.stats["respawns"] >= 1
            # the pool survives the fault and keeps serving
            again = resilient_map("s", _double, [5], workers=2, pool=pool)
            assert again == [10]
