"""Tests for the batch ranking engine (path index, caches, fan-out)."""
