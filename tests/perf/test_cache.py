"""SuffixCache / ViewComputation equivalence with the naive metric path.

A cache may change how often something is computed, never what: every
product must equal the object the plain :mod:`repro.core` functions
build from the same view. Exercised on a full small-world pipeline and
on synthetic corner cases (MOAS fallback, trim edges).
"""

import pytest

from repro import GeneratorConfig, Tracer, generate_world, run_pipeline, small_profiles
from repro.bgp.collectors import VantagePoint
from repro.core.ahc import ahc_ranking, ahc_scores, ahc_scores_cached
from repro.core.cone import (
    cone_addresses,
    cones_from_suffixes,
    customer_cones,
    transit_suffix,
)
from repro.core.cti import cti_scores, per_vp_transit
from repro.core.hegemony import (
    hegemony_scores,
    per_vp_scores,
    trimmed_scores,
    trimmed_scores_sparse,
)
from repro.core.sanitize import FilterReport, PathRecord, PathSet
from repro.core.views import View, international_view
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.perf import SuffixCache, ViewComputation
from repro.relationships.inference import infer_relationships

SMALL = GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"))


@pytest.fixture(scope="module")
def result():
    return run_pipeline(generate_world(SMALL, seed=1, name="small"))


@pytest.fixture(scope="module")
def view(result):
    country = result.countries_with_national_view()[0]
    return international_view(result.paths, country)


def record(vp_ip, prefix, path, prefix_country="AU", vp_country="US"):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country=vp_country,
        prefix=Prefix.parse(prefix),
        prefix_country=prefix_country,
        path=ASPath.parse(path),
        addresses=Prefix.parse(prefix).num_addresses(),
    )


class TestSuffixCache:
    def test_matches_transit_suffix(self, result):
        cache = SuffixCache(result.oracle)
        for rec in result.paths.records:
            assert cache(rec.path) == transit_suffix(rec.path, result.oracle)

    def test_resolve_many_aligned(self, result, view):
        cache = SuffixCache(result.oracle)
        suffixes = cache.resolve_many(view.records)
        assert len(suffixes) == len(view.records)
        for rec, suffix in zip(view.records, suffixes):
            assert suffix == transit_suffix(rec.path, result.oracle)

    def test_unique_suffixes(self, result, view):
        cache = SuffixCache(result.oracle)
        expected = {transit_suffix(r.path, result.oracle) for r in view.records}
        assert cache.unique_suffixes(view.records) == expected

    def test_hit_miss_counters(self, result):
        tracer = Tracer()
        cache = SuffixCache(result.oracle, tracer)
        path = result.paths.records[0].path
        cache(path)
        cache(path)
        counters = tracer.metrics.counters()
        assert counters["perf.suffix.miss"] == 1
        assert counters["perf.suffix.hit"] == 1

    def test_p2c_edges_match_oracle(self, result):
        graph = result.world.graph
        edges = graph.p2c_edges()
        for rec in result.paths.records[:200]:
            asns = rec.path.asns
            for left, right in zip(asns, asns[1:]):
                assert ((left, right) in edges) == (
                    graph.relationship(left, right) == "p2c"
                )

    def test_inferred_p2c_edges_match_oracle(self, result):
        inferred = infer_relationships(r.path for r in result.paths.records)
        edges = inferred.p2c_edges()
        for (low, high) in list(inferred.labels)[:200]:
            assert ((low, high) in edges) == (
                inferred.relationship(low, high) == "p2c"
            )
            assert ((high, low) in edges) == (
                inferred.relationship(high, low) == "p2c"
            )


class TestViewComputation:
    def test_total_addresses(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.total_addresses() == view.total_addresses()

    def test_cones_match_customer_cones(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.cones() == customer_cones(view.records, result.oracle)

    def test_cones_from_unique_suffixes_identical(self, result, view):
        suffixes = [transit_suffix(r.path, result.oracle) for r in view.records]
        assert cones_from_suffixes(suffixes) == cones_from_suffixes(set(suffixes))

    def test_cone_addresses_match_naive(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.cone_addresses() == cone_addresses(
            view.records, result.oracle
        )

    def test_moas_view_falls_back_exactly(self, result):
        # same prefix announced by two different origins: member prefix
        # sets overlap, so the closure must not double count
        records = (
            record("9.0.0.1", "1.0.0.0/16", "10 20 30"),
            record("9.0.0.2", "1.0.0.0/16", "10 20 31"),
            record("9.0.0.2", "1.1.0.0/16", "10 31"),
        )
        view = View(name="international:AU", country="AU", records=records)
        compute = ViewComputation(view, result.oracle)
        assert compute.cone_addresses() == cone_addresses(records, result.oracle)
        assert compute.total_addresses() == view.total_addresses()

    def test_per_vp_hegemony_matches(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.per_vp_hegemony() == per_vp_scores(view.records)

    def test_hegemony_matches_naive(self, result, view):
        compute = ViewComputation(view, result.oracle)
        for trim in (0.0, 0.1, 0.25):
            assert compute.hegemony(trim) == hegemony_scores(view.records, trim)

    def test_cti_matches_naive(self, result, view):
        compute = ViewComputation(view, result.oracle)
        total = view.total_addresses()
        for trim in (0.0, 0.1):
            assert compute.cti(trim) == cti_scores(
                view.records, result.oracle, total, trim
            )

    def test_view_cache_counters(self, result, view):
        tracer = Tracer()
        compute = ViewComputation(view, result.oracle, tracer=tracer)
        compute.cones()
        compute.cones()
        counters = tracer.metrics.counters()
        assert counters["perf.view.miss"] >= 1
        assert counters["perf.view.hit"] >= 1


class TestTrimmedScoresSparse:
    def test_matches_dense_on_pipeline_data(self, result, view):
        per_vp, universe = per_vp_scores(view.records)
        for trim in (0.0, 0.1, 0.3, 0.49):
            assert trimmed_scores_sparse(per_vp, universe, trim) == trimmed_scores(
                per_vp, universe, trim
            )

    def test_single_vp(self):
        per_vp = {"vp": {1: 0.5}}
        assert trimmed_scores_sparse(per_vp, {1, 2}, 0.1) == trimmed_scores(
            per_vp, {1, 2}, 0.1
        )

    def test_all_zero_as(self):
        per_vp = {"a": {1: 0.5}, "b": {1: 0.25}, "c": {}}
        assert trimmed_scores_sparse(per_vp, {1, 9}, 0.1) == trimmed_scores(
            per_vp, {1, 9}, 0.1
        )

    def test_rejects_bad_trim(self):
        with pytest.raises(ValueError):
            trimmed_scores_sparse({}, set(), 0.5)


class TestPerVpTransit:
    def test_presupplied_suffixes_identical(self, result, view):
        suffixes = [transit_suffix(r.path, result.oracle) for r in view.records]
        direct = per_vp_transit(view.records, result.oracle)
        fed = per_vp_transit(view.records, result.oracle, suffixes=suffixes)
        assert fed == direct


class TestAhcThroughCache:
    """AHC routed through ViewComputation equals the naive path exactly."""

    @pytest.fixture(scope="class")
    def global_view(self, result):
        return result.view("global")

    @pytest.fixture(scope="class")
    def origins(self, result):
        code = result.countries_with_national_view()[0]
        return sorted(result.world.graph.by_registry_country(code))

    def test_origin_records_match_manual_bucketing(self, result, global_view):
        compute = ViewComputation(global_view, result.oracle)
        buckets = compute.origin_records()
        manual = {}
        for rec in global_view.records:
            manual.setdefault(rec.origin, []).append(rec)
        assert buckets == {o: tuple(rs) for o, rs in manual.items()}

    def test_local_hegemony_matches_naive(self, result, global_view, origins):
        compute = ViewComputation(global_view, result.oracle)
        buckets = compute.origin_records()
        for origin in origins:
            expected = hegemony_scores(buckets.get(origin, ()), 0.1)
            assert compute.local_hegemony(origin, 0.1) == expected

    def test_scores_cached_equals_naive(self, result, global_view, origins):
        compute = ViewComputation(global_view, result.oracle)
        for weighting in ("as_count", "addresses"):
            naive = ahc_scores(
                global_view.records, origins, 0.1, weighting=weighting
            )
            cached = ahc_scores_cached(compute, origins, 0.1, weighting=weighting)
            assert cached == naive  # bit-identical, not approx

    def test_ranking_with_compute_equals_without(self, result, global_view, origins):
        code = result.countries_with_national_view()[0]
        compute = ViewComputation(global_view, result.oracle)
        plain = ahc_ranking(result.paths, code, origins, 0.1)
        routed = ahc_ranking(
            global_view, code, origins, 0.1, compute=compute
        )
        assert routed.entries == plain.entries
        assert routed.metric == plain.metric

    def test_pipeline_ahc_memoised_and_cached(self, result):
        code = result.countries_with_national_view()[0]
        assert result.ranking("AHC", code) is result.ranking("AHC", code)

    def test_perf_counters_count_ahc_hits(self, result, global_view, origins):
        tracer = Tracer()
        compute = ViewComputation(global_view, result.oracle, tracer=tracer)
        ahc_scores_cached(compute, origins, 0.1)
        before = tracer.metrics.counters()["perf.view.hit"]
        ahc_scores_cached(compute, origins, 0.1)  # every lookup now hits
        after = tracer.metrics.counters()["perf.view.hit"]
        assert after > before

    def test_local_hegemony_rejects_bad_trim(self, result, global_view):
        compute = ViewComputation(global_view, result.oracle)
        with pytest.raises(ValueError):
            compute.local_hegemony(1, 0.5)

    def test_unknown_weighting_rejected(self, result, global_view, origins):
        compute = ViewComputation(global_view, result.oracle)
        with pytest.raises(ValueError, match="weighting"):
            ahc_scores_cached(compute, origins, 0.1, weighting="magic")
