"""SuffixCache / ViewComputation equivalence with the naive metric path.

A cache may change how often something is computed, never what: every
product must equal the object the plain :mod:`repro.core` functions
build from the same view. Exercised on a full small-world pipeline and
on synthetic corner cases (MOAS fallback, trim edges).
"""

import pytest

from repro import GeneratorConfig, Tracer, generate_world, run_pipeline, small_profiles
from repro.bgp.collectors import VantagePoint
from repro.core.cone import (
    cone_addresses,
    cones_from_suffixes,
    customer_cones,
    transit_suffix,
)
from repro.core.cti import cti_scores, per_vp_transit
from repro.core.hegemony import (
    hegemony_scores,
    per_vp_scores,
    trimmed_scores,
    trimmed_scores_sparse,
)
from repro.core.sanitize import FilterReport, PathRecord, PathSet
from repro.core.views import View, international_view
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.perf import SuffixCache, ViewComputation
from repro.relationships.inference import infer_relationships

SMALL = GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP"))


@pytest.fixture(scope="module")
def result():
    return run_pipeline(generate_world(SMALL, seed=1, name="small"))


@pytest.fixture(scope="module")
def view(result):
    country = result.countries_with_national_view()[0]
    return international_view(result.paths, country)


def record(vp_ip, prefix, path, prefix_country="AU", vp_country="US"):
    return PathRecord(
        vp=VantagePoint(vp_ip, int(path.split()[0]), "c"),
        vp_country=vp_country,
        prefix=Prefix.parse(prefix),
        prefix_country=prefix_country,
        path=ASPath.parse(path),
        addresses=Prefix.parse(prefix).num_addresses(),
    )


class TestSuffixCache:
    def test_matches_transit_suffix(self, result):
        cache = SuffixCache(result.oracle)
        for rec in result.paths.records:
            assert cache(rec.path) == transit_suffix(rec.path, result.oracle)

    def test_resolve_many_aligned(self, result, view):
        cache = SuffixCache(result.oracle)
        suffixes = cache.resolve_many(view.records)
        assert len(suffixes) == len(view.records)
        for rec, suffix in zip(view.records, suffixes):
            assert suffix == transit_suffix(rec.path, result.oracle)

    def test_unique_suffixes(self, result, view):
        cache = SuffixCache(result.oracle)
        expected = {transit_suffix(r.path, result.oracle) for r in view.records}
        assert cache.unique_suffixes(view.records) == expected

    def test_hit_miss_counters(self, result):
        tracer = Tracer()
        cache = SuffixCache(result.oracle, tracer)
        path = result.paths.records[0].path
        cache(path)
        cache(path)
        counters = tracer.metrics.counters()
        assert counters["perf.suffix.miss"] == 1
        assert counters["perf.suffix.hit"] == 1

    def test_p2c_edges_match_oracle(self, result):
        graph = result.world.graph
        edges = graph.p2c_edges()
        for rec in result.paths.records[:200]:
            asns = rec.path.asns
            for left, right in zip(asns, asns[1:]):
                assert ((left, right) in edges) == (
                    graph.relationship(left, right) == "p2c"
                )

    def test_inferred_p2c_edges_match_oracle(self, result):
        inferred = infer_relationships(r.path for r in result.paths.records)
        edges = inferred.p2c_edges()
        for (low, high) in list(inferred.labels)[:200]:
            assert ((low, high) in edges) == (
                inferred.relationship(low, high) == "p2c"
            )
            assert ((high, low) in edges) == (
                inferred.relationship(high, low) == "p2c"
            )


class TestViewComputation:
    def test_total_addresses(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.total_addresses() == view.total_addresses()

    def test_cones_match_customer_cones(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.cones() == customer_cones(view.records, result.oracle)

    def test_cones_from_unique_suffixes_identical(self, result, view):
        suffixes = [transit_suffix(r.path, result.oracle) for r in view.records]
        assert cones_from_suffixes(suffixes) == cones_from_suffixes(set(suffixes))

    def test_cone_addresses_match_naive(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.cone_addresses() == cone_addresses(
            view.records, result.oracle
        )

    def test_moas_view_falls_back_exactly(self, result):
        # same prefix announced by two different origins: member prefix
        # sets overlap, so the closure must not double count
        records = (
            record("9.0.0.1", "1.0.0.0/16", "10 20 30"),
            record("9.0.0.2", "1.0.0.0/16", "10 20 31"),
            record("9.0.0.2", "1.1.0.0/16", "10 31"),
        )
        view = View(name="international:AU", country="AU", records=records)
        compute = ViewComputation(view, result.oracle)
        assert compute.cone_addresses() == cone_addresses(records, result.oracle)
        assert compute.total_addresses() == view.total_addresses()

    def test_per_vp_hegemony_matches(self, result, view):
        compute = ViewComputation(view, result.oracle)
        assert compute.per_vp_hegemony() == per_vp_scores(view.records)

    def test_hegemony_matches_naive(self, result, view):
        compute = ViewComputation(view, result.oracle)
        for trim in (0.0, 0.1, 0.25):
            assert compute.hegemony(trim) == hegemony_scores(view.records, trim)

    def test_cti_matches_naive(self, result, view):
        compute = ViewComputation(view, result.oracle)
        total = view.total_addresses()
        for trim in (0.0, 0.1):
            assert compute.cti(trim) == cti_scores(
                view.records, result.oracle, total, trim
            )

    def test_view_cache_counters(self, result, view):
        tracer = Tracer()
        compute = ViewComputation(view, result.oracle, tracer=tracer)
        compute.cones()
        compute.cones()
        counters = tracer.metrics.counters()
        assert counters["perf.view.miss"] >= 1
        assert counters["perf.view.hit"] >= 1


class TestTrimmedScoresSparse:
    def test_matches_dense_on_pipeline_data(self, result, view):
        per_vp, universe = per_vp_scores(view.records)
        for trim in (0.0, 0.1, 0.3, 0.49):
            assert trimmed_scores_sparse(per_vp, universe, trim) == trimmed_scores(
                per_vp, universe, trim
            )

    def test_single_vp(self):
        per_vp = {"vp": {1: 0.5}}
        assert trimmed_scores_sparse(per_vp, {1, 2}, 0.1) == trimmed_scores(
            per_vp, {1, 2}, 0.1
        )

    def test_all_zero_as(self):
        per_vp = {"a": {1: 0.5}, "b": {1: 0.25}, "c": {}}
        assert trimmed_scores_sparse(per_vp, {1, 9}, 0.1) == trimmed_scores(
            per_vp, {1, 9}, 0.1
        )

    def test_rejects_bad_trim(self):
        with pytest.raises(ValueError):
            trimmed_scores_sparse({}, set(), 0.5)


class TestPerVpTransit:
    def test_presupplied_suffixes_identical(self, result, view):
        suffixes = [transit_suffix(r.path, result.oracle) for r in view.records]
        direct = per_vp_transit(view.records, result.oracle)
        fed = per_vp_transit(view.records, result.oracle, suffixes=suffixes)
        assert fed == direct
