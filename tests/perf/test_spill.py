"""The mmap-backed spill store must be invisible: rankings, suffix
caches, and index buckets computed over it must be value-identical to
the in-memory backends (numpy and stdlib-array), and a crash mid-
ingestion must resume to a byte-identical spill."""

import pickle

import pytest

from repro import PipelineConfig, run_pipeline
from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import geolocate_prefixes
from repro.geo.vp_geo import VPGeolocator
from repro.perf.cache import SuffixCache
from repro.perf.index import PathIndex
from repro.perf.spill import (
    MmapPathStore,
    SpillFormatError,
    open_spill,
    sanitize_to_store,
)
import repro.perf.pathstore as pathstore_mod
from repro.topology.catalog import build_world

#: a cross-family spot-check sweep — four metric families, the four
#: countries the paper's case studies use
METRICS = ("CCI", "AHN", "AHC", "CTI")
COUNTRIES = ("US", "NL", "JP", "BR")


@pytest.fixture(scope="module")
def world():
    return build_world("default", 0)


@pytest.fixture(scope="module")
def memory_result(world):
    result = run_pipeline(world, PipelineConfig(seed=0))
    yield result
    result.close()


@pytest.fixture(scope="module")
def mmap_result(world):
    result = run_pipeline(world, PipelineConfig(seed=0, store_backend="mmap"))
    yield result
    result.close()


def _sanitize_inputs(world, seed=0):
    """The (records, kwargs) the pipeline hands to sanitization, built
    stage by stage so tests can drive ``sanitize_to_store`` directly."""
    from repro.bgp.propagation import propagate_all
    from repro.bgp.rib import RibGenerationConfig, generate_rib_days

    outcome = propagate_all(
        world.graph, keep=world.vp_asns(), tiebreak="hash", salt=0
    )
    ribs = generate_rib_days(world, [outcome], RibGenerationConfig(), seed)
    geodb = GeoDatabase.from_world(world, 0.02, 0.005, seed + 1, 4)
    prefix_geo = geolocate_prefixes(
        world.announced_prefixes(), geodb, 0.5, version=4
    )
    records = [r for r in ribs.records() if r.prefix.version == 4]
    kwargs = dict(
        clique=world.graph.clique(),
        is_allocated=world.graph.asn_registry.is_allocated,
        route_servers=world.graph.route_servers(),
        vp_geo=VPGeolocator(world.collectors),
        prefix_geo=prefix_geo,
    )
    return records, kwargs


class TestBackendParity:
    def test_filter_reports_identical(self, memory_result, mmap_result):
        assert (
            memory_result.paths.report.render()
            == mmap_result.paths.report.render()
        )
        assert len(memory_result.paths.records) == len(mmap_result.paths.records)

    def test_records_identical(self, memory_result, mmap_result):
        records = memory_result.paths.records
        lazy = mmap_result.paths.records
        assert list(lazy[:100]) == list(records[:100])
        assert lazy[-1] == records[-1]
        assert lazy[len(lazy) // 2] == records[len(records) // 2]

    def test_rankings_byte_identical(self, memory_result, mmap_result):
        baseline = memory_result.rank_all(METRICS, COUNTRIES)
        spilled = mmap_result.rank_all(METRICS, COUNTRIES)
        assert baseline.keys() == spilled.keys()
        for key, ranking in baseline.items():
            assert spilled[key].entries == ranking.entries, key
            assert (
                spilled[key].render(10, mmap_result.as_name)
                == ranking.render(10, memory_result.as_name)
            ), key

    def test_suffix_cache_contents_identical(self, memory_result, mmap_result):
        dense_store = memory_result.paths.store()
        mapped_store = mmap_result.paths.store()
        baseline = SuffixCache(memory_result.oracle, store=dense_store)
        dense_store.prime_suffix_cache(baseline)
        spilled = SuffixCache(mmap_result.oracle, store=mapped_store)
        mapped_store.prime_suffix_cache(spilled)
        assert baseline.table == spilled.table
        assert len(baseline.table) == len(dense_store)

    def test_index_buckets_identical(self, memory_result, mmap_result):
        baseline = PathIndex.from_paths(memory_result.paths)
        spilled = PathIndex.from_paths(mmap_result.paths)
        base_pairs = baseline._by_pair
        spill_pairs = spilled._by_pair
        assert list(base_pairs) == list(spill_pairs)  # first-appearance order
        for pair in base_pairs:
            assert list(spill_pairs[pair]) == list(base_pairs[pair]), pair
        base_origin = baseline._origin_buckets()
        spill_origin = spilled._origin_buckets()
        assert list(base_origin) == list(spill_origin)
        for origin in base_origin:
            assert list(spill_origin[origin]) == list(base_origin[origin])
        assert baseline.origin_prefixes == spilled.origin_prefixes

    def test_store_columns_identical(self, memory_result, mmap_result):
        dense = memory_result.paths.store()
        mapped = mmap_result.paths.store()
        assert isinstance(mapped, MmapPathStore)
        for column in ("tokens", "offsets", "lengths",
                       "record_path", "record_origin"):
            assert (
                [int(v) for v in getattr(mapped, column)]
                == [int(v) for v in getattr(dense, column)]
            ), column
        assert mapped.paths == dense.paths
        assert mapped.path_ids == dense.path_ids


class TestFallbackParity:
    def test_rankings_identical_without_numpy(self, world, memory_result,
                                              monkeypatch):
        monkeypatch.setattr(pathstore_mod, "_np", None)
        result = run_pipeline(
            world, PipelineConfig(seed=0, store_backend="mmap")
        )
        try:
            baseline = memory_result.rank_all(METRICS, COUNTRIES)
            spilled = result.rank_all(METRICS, COUNTRIES)
            for key, ranking in baseline.items():
                assert spilled[key].entries == ranking.entries, key
        finally:
            result.close()


class TestCrashResume:
    @pytest.fixture(scope="class")
    def inputs(self):
        return _sanitize_inputs(build_world("small", 0))

    def _ingest(self, records, kwargs, directory, **extra):
        return sanitize_to_store(
            iter(records), directory=str(directory),
            flush_every=500, **kwargs, **extra,
        )

    def _spill_bytes(self, directory):
        return {
            path.name: path.read_bytes()
            for path in sorted(directory.iterdir())
            if path.name != "progress.json"  # removed on seal
        }

    def test_resume_is_byte_identical(self, inputs, tmp_path):
        records, kwargs = inputs
        clean_dir = tmp_path / "clean"
        torn_dir = tmp_path / "torn"
        clean = self._ingest(records, kwargs, clean_dir)

        crash_after = len(records) // 2

        def torn_stream():
            for index, record in enumerate(records):
                if index == crash_after:
                    raise OSError("injected crash")
                yield record

        with pytest.raises(OSError):
            sanitize_to_store(
                torn_stream(), directory=str(torn_dir),
                flush_every=500, **kwargs,
            )
        assert not (torn_dir / "manifest.json").exists()
        resumed = self._ingest(records, kwargs, torn_dir)
        assert self._spill_bytes(torn_dir) == self._spill_bytes(clean_dir)
        assert resumed.report.total == clean.report.total
        assert resumed.report.accepted == clean.report.accepted
        assert resumed.report.rejected == clean.report.rejected
        assert list(resumed.records[:50]) == list(clean.records[:50])

    def test_reopen_sealed_spill(self, inputs, tmp_path):
        records, kwargs = inputs
        first = self._ingest(records, kwargs, tmp_path / "spill")
        again = open_spill(str(tmp_path / "spill"))
        assert len(again.records) == len(first.records)
        assert again.report.total == first.report.total
        # a second sanitize_to_store on a sealed directory reopens it
        # without consuming the input stream at all
        def exploding():
            raise AssertionError("sealed spill must not re-ingest")
            yield  # pragma: no cover

        reopened = self._ingest(exploding(), kwargs, tmp_path / "spill")
        assert len(reopened.records) == len(first.records)

    def test_open_rejects_unsealed_directory(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{}")
        with pytest.raises(SpillFormatError):
            MmapPathStore(str(tmp_path))


class TestWorkerTransport:
    def test_store_pickles_as_directory(self, mmap_result):
        store = mmap_result.paths.store()
        payload = pickle.dumps(store)
        # the payload must be the path, not the mapped pages
        assert len(payload) < 4096
        clone = pickle.loads(payload)
        assert isinstance(clone, MmapPathStore)
        assert clone.record_count == store.record_count
        assert [int(v) for v in clone.offsets[:10]] == [
            int(v) for v in store.offsets[:10]
        ]

    def test_sweep_with_workers_matches_serial(self, world, memory_result):
        result = run_pipeline(
            world, PipelineConfig(seed=0, workers=2, store_backend="mmap")
        )
        try:
            baseline = memory_result.rank_all(("CCI",), ("US", "NL"))
            fanned = result.rank_all(("CCI",), ("US", "NL"))
            for key, ranking in baseline.items():
                assert fanned[key].entries == ranking.entries, key
        finally:
            result.close()


class TestLifecycle:
    def test_close_removes_run_scoped_spill(self, world):
        result = run_pipeline(world, PipelineConfig(seed=0, store_backend="mmap"))
        spill_dir = result.paths.store().directory
        import os

        assert os.path.isdir(spill_dir)
        result.close()
        assert not os.path.exists(spill_dir)

    def test_named_spill_dir_persists(self, world, tmp_path):
        spill = tmp_path / "kept"
        result = run_pipeline(
            world,
            PipelineConfig(seed=0, store_backend="mmap", spill_dir=str(spill)),
        )
        result.close()
        assert (spill / "manifest.json").exists()
