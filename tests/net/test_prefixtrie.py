"""Unit and property tests for repro.net.prefixtrie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.prefix import Prefix, PrefixError
from repro.net.prefixtrie import PrefixTrie


def p(text):
    return Prefix.parse(text)


class TestBasics:
    def test_insert_get(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.get(p("10.0.0.0/8")) == "a"
        assert trie.get(p("10.0.0.0/16")) is None
        assert len(trie) == 1

    def test_overwrite_keeps_size(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.0.0.0/8"), "b")
        assert trie.get(p("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.remove(p("10.0.0.0/8")) == "a"
        assert len(trie) == 0
        with pytest.raises(KeyError):
            trie.remove(p("10.0.0.0/8"))

    def test_version_mismatch(self):
        trie = PrefixTrie(4)
        with pytest.raises(PrefixError):
            trie.insert(p("2001:db8::/32"), "x")

    def test_bad_version(self):
        with pytest.raises(PrefixError):
            PrefixTrie(5)


class TestLongestMatch:
    def test_most_specific_wins(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "big")
        trie.insert(p("10.1.0.0/16"), "small")
        assert trie.longest_match(p("10.1.2.0/24")) == (p("10.1.0.0/16"), "small")
        assert trie.longest_match(p("10.2.0.0/16")) == (p("10.0.0.0/8"), "big")

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.longest_match(p("11.0.0.0/8")) is None

    def test_lookup_address(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        hit = trie.lookup_address(4, (10 << 24) + 99)
        assert hit == (p("10.0.0.0/8"), "a")
        assert trie.lookup_address(4, 11 << 24) is None
        assert trie.lookup_address(6, 10 << 24) is None


class TestSubtree:
    def test_subtree_and_more_specifics(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9", "11.0.0.0/8"):
            trie.insert(p(text), text)
        subtree = dict(trie.subtree(p("10.0.0.0/8")))
        assert set(subtree) == {p("10.0.0.0/8"), p("10.0.0.0/9"), p("10.128.0.0/9")}
        more = dict(trie.more_specifics(p("10.0.0.0/8")))
        assert set(more) == {p("10.0.0.0/9"), p("10.128.0.0/9")}

    def test_items_ordered(self):
        trie = PrefixTrie()
        for text in ("11.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"):
            trie.insert(p(text), text)
        keys = [str(k) for k, _ in trie.items()]
        assert keys == ["10.0.0.0/8", "10.0.0.0/16", "11.0.0.0/8"]


class TestCoveredByMoreSpecifics:
    def test_fully_covered(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9"):
            trie.insert(p(text), text)
        assert trie.is_covered_by_more_specifics(p("10.0.0.0/8"))

    def test_partially_covered(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.0.0.0/9"):
            trie.insert(p(text), text)
        assert not trie.is_covered_by_more_specifics(p("10.0.0.0/8"))

    def test_deep_cover(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "root")
        for sub in p("10.0.0.0/8").subnets(10):
            trie.insert(sub, str(sub))
        assert trie.is_covered_by_more_specifics(p("10.0.0.0/8"))

    def test_no_specifics(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        assert not trie.is_covered_by_more_specifics(p("10.0.0.0/8"))


@st.composite
def prefix_sets(draw):
    base = p("10.0.0.0/8")
    count = draw(st.integers(min_value=1, max_value=24))
    out = set()
    for _ in range(count):
        length = draw(st.integers(min_value=8, max_value=20))
        value = draw(st.integers(min_value=0, max_value=(1 << 12) - 1))
        mask_bits = length - 8
        chunk = value & (((1 << mask_bits) - 1) if mask_bits else 0)
        out.add(Prefix(4, (10 << 24) | (chunk << (32 - length)), length))
    return sorted(out, key=Prefix.sort_key)


class TestDecomposeProperties:
    @settings(max_examples=60)
    @given(prefix_sets())
    def test_decompose_partitions_stored_space(self, prefixes):
        trie = PrefixTrie()
        for prefix in prefixes:
            trie.insert(prefix, prefix)
        blocks = list(trie.decompose())
        # Blocks never overlap.
        for i, (left, _) in enumerate(blocks):
            for right, _ in blocks[i + 1 :]:
                assert not left.overlaps(right)
        # Owners are stored prefixes containing their block.
        for block, owner in blocks:
            assert owner in set(prefixes)
            assert owner.contains(block)
        # Total block addresses == addresses of the union of prefixes
        # (computed independently via toplevel prefixes).
        tops = [
            q for q in prefixes
            if not any(o.contains(q) and o != q for o in prefixes)
        ]
        expected = sum(t.num_addresses() for t in tops)
        assert sum(b.num_addresses() for b, _ in blocks) == expected

    @settings(max_examples=60)
    @given(prefix_sets())
    def test_decompose_owner_is_most_specific(self, prefixes):
        trie = PrefixTrie()
        for prefix in prefixes:
            trie.insert(prefix, prefix)
        for block, owner in trie.decompose():
            for other in prefixes:
                if other.contains(block):
                    assert other.length <= owner.length
