"""Unit tests for repro.net.blocks (the §3.2.1 block splitter)."""

from repro.net.blocks import (
    Block,
    covered_by_more_specifics,
    split_into_blocks,
    total_addresses,
)
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


class TestCoveredByMoreSpecifics:
    def test_simple_cover(self):
        prefixes = [p("10.0.0.0/8"), p("10.0.0.0/9"), p("10.128.0.0/9")]
        assert covered_by_more_specifics(prefixes) == {p("10.0.0.0/8")}

    def test_no_cover(self):
        prefixes = [p("10.0.0.0/8"), p("10.0.0.0/9")]
        assert covered_by_more_specifics(prefixes) == set()

    def test_nested_cover(self):
        # /8 covered by /9 + two /10s.
        prefixes = [
            p("10.0.0.0/8"),
            p("10.0.0.0/9"),
            p("10.128.0.0/10"),
            p("10.192.0.0/10"),
        ]
        assert covered_by_more_specifics(prefixes) == {p("10.0.0.0/8")}

    def test_empty(self):
        assert covered_by_more_specifics([]) == set()


class TestSplitIntoBlocks:
    def test_single_prefix(self):
        blocks = split_into_blocks([p("10.0.0.0/8")])
        assert blocks == [Block(p("10.0.0.0/8"), p("10.0.0.0/8"))]

    def test_more_specific_carves_hole(self):
        blocks = split_into_blocks([p("10.0.0.0/8"), p("10.0.0.0/9")])
        owners = {str(b.prefix): str(b.owner) for b in blocks}
        assert owners == {
            "10.0.0.0/9": "10.0.0.0/9",
            "10.128.0.0/9": "10.0.0.0/8",
        }

    def test_deep_more_specific(self):
        blocks = split_into_blocks([p("10.0.0.0/8"), p("10.64.0.0/16")])
        by_owner = {}
        for block in blocks:
            by_owner.setdefault(str(block.owner), []).append(block)
        # /16 owns exactly its own addresses.
        assert total_addresses(by_owner["10.64.0.0/16"]) == 1 << 16
        # /8 owns the rest.
        assert total_addresses(by_owner["10.0.0.0/8"]) == (1 << 24) - (1 << 16)

    def test_covered_prefix_owns_nothing(self):
        prefixes = [p("10.0.0.0/8"), p("10.0.0.0/9"), p("10.128.0.0/9")]
        blocks = split_into_blocks(prefixes)
        owners = {block.owner for block in blocks}
        assert p("10.0.0.0/8") not in owners
        assert total_addresses(blocks) == 1 << 24

    def test_disjoint_prefixes(self):
        blocks = split_into_blocks([p("10.0.0.0/8"), p("11.0.0.0/8")])
        assert len(blocks) == 2
        assert total_addresses(blocks) == 2 << 24

    def test_duplicates_ignored(self):
        blocks = split_into_blocks([p("10.0.0.0/8"), p("10.0.0.0/8")])
        assert len(blocks) == 1

    def test_empty(self):
        assert split_into_blocks([]) == []

    def test_v6_filtered_out_in_v4_mode(self):
        assert split_into_blocks([p("2001:db8::/32")]) == []

    def test_blocks_sorted_and_disjoint(self):
        prefixes = [p("10.0.0.0/8"), p("10.32.0.0/11"), p("10.32.0.0/16"),
                    p("9.0.0.0/8")]
        blocks = split_into_blocks(prefixes)
        for left, right in zip(blocks, blocks[1:]):
            assert left.prefix.sort_key() < right.prefix.sort_key()
            assert not left.prefix.overlaps(right.prefix)
