"""Unit and property tests for PrefixSet CIDR algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.prefix import Prefix, PrefixError
from repro.net.prefixset import PrefixSet


def ps(*texts):
    return PrefixSet.parse(*texts)


class TestCanonicalisation:
    def test_adjacent_halves_aggregate(self):
        assert ps("10.0.0.0/9", "10.128.0.0/9").blocks() == (Prefix.parse("10.0.0.0/8"),)

    def test_overlap_deduplicates(self):
        a = ps("10.0.0.0/8", "10.1.0.0/16")
        assert a.blocks() == (Prefix.parse("10.0.0.0/8"),)

    def test_disjoint_stay_separate(self):
        a = ps("10.0.0.0/8", "12.0.0.0/8")
        assert len(a.blocks()) == 2

    def test_equality_by_addresses(self):
        assert ps("10.0.0.0/9", "10.128.0.0/9") == ps("10.0.0.0/8")
        assert hash(ps("10.0.0.0/8")) == hash(ps("10.0.0.0/9", "10.128.0.0/9"))

    def test_empty(self):
        empty = PrefixSet()
        assert empty.is_empty() and not empty and empty.num_addresses() == 0

    def test_version_mismatch_rejected(self):
        with pytest.raises(PrefixError):
            PrefixSet([Prefix.parse("2001:db8::/32")], version=4)


class TestQueries:
    def test_num_addresses(self):
        assert ps("10.0.0.0/24", "10.1.0.0/24").num_addresses() == 512

    def test_contains_address(self):
        a = ps("10.0.0.0/24")
        assert a.contains_address(10 << 24)
        assert a.contains_address((10 << 24) + 255)
        assert not a.contains_address((10 << 24) + 256)

    def test_contains_prefix(self):
        a = ps("10.0.0.0/8")
        assert a.contains(Prefix.parse("10.9.0.0/16"))
        assert not a.contains(Prefix.parse("11.0.0.0/16"))
        assert not a.contains(Prefix.parse("8.0.0.0/7"))

    def test_contains_spanning_adjacent_blocks(self):
        # 10.0.0.0/8 + 11.0.0.0/8 cannot aggregate (unaligned), but a
        # spanning /7-sized query of addresses is still fully inside.
        a = ps("10.0.0.0/8", "11.0.0.0/8")
        assert a.contains(Prefix.parse("10.0.0.0/8"))
        assert a.contains(Prefix.parse("11.128.0.0/9"))


class TestAlgebra:
    def test_union(self):
        assert (ps("10.0.0.0/9") | ps("10.128.0.0/9")) == ps("10.0.0.0/8")

    def test_intersection(self):
        assert (ps("10.0.0.0/8") & ps("10.64.0.0/10")) == ps("10.64.0.0/10")
        assert (ps("10.0.0.0/8") & ps("11.0.0.0/8")).is_empty()

    def test_difference(self):
        result = ps("10.0.0.0/8") - ps("10.0.0.0/9")
        assert result == ps("10.128.0.0/9")

    def test_difference_carves_hole(self):
        result = ps("10.0.0.0/8") - ps("10.64.0.0/16")
        assert result.num_addresses() == (1 << 24) - (1 << 16)
        assert not result.contains_address((10 << 24) + (64 << 16))

    def test_mixed_family_rejected(self):
        v6 = PrefixSet([Prefix.parse("2001:db8::/32")], version=6)
        with pytest.raises(PrefixError):
            ps("10.0.0.0/8") | v6

    def test_type_check(self):
        with pytest.raises(TypeError):
            ps("10.0.0.0/8") | "10.0.0.0/8"


@st.composite
def prefix_sets(draw):
    count = draw(st.integers(min_value=0, max_value=10))
    prefixes = []
    for _ in range(count):
        length = draw(st.integers(min_value=4, max_value=20))
        chunk = draw(st.integers(min_value=0, max_value=(1 << 16) - 1))
        mask = chunk & ((1 << (length - 4)) - 1 if length > 4 else 0)
        prefixes.append(Prefix(4, (1 << 28) | (mask << (32 - length)), length))
    return PrefixSet(prefixes)


class TestAlgebraProperties:
    @settings(max_examples=80)
    @given(prefix_sets(), prefix_sets())
    def test_inclusion_exclusion(self, a, b):
        assert (a | b).num_addresses() == (
            a.num_addresses() + b.num_addresses() - (a & b).num_addresses()
        )

    @settings(max_examples=80)
    @given(prefix_sets(), prefix_sets())
    def test_difference_partitions(self, a, b):
        assert (a - b).num_addresses() + (a & b).num_addresses() == a.num_addresses()
        assert ((a - b) & b).is_empty()

    @settings(max_examples=80)
    @given(prefix_sets(), prefix_sets())
    def test_commutativity(self, a, b):
        assert (a | b) == (b | a)
        assert (a & b) == (b & a)

    @settings(max_examples=50)
    @given(prefix_sets())
    def test_identities(self, a):
        empty = PrefixSet()
        assert (a | empty) == a
        assert (a & a) == a
        assert (a - a).is_empty()

    @settings(max_examples=50)
    @given(prefix_sets())
    def test_blocks_disjoint_and_sorted(self, a):
        blocks = a.blocks()
        for left, right in zip(blocks, blocks[1:]):
            assert left.last_address() < right.first_address()
