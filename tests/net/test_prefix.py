"""Unit and property tests for repro.net.prefix."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import Prefix, PrefixError, format_address, parse_address


class TestParseAddress:
    def test_v4_basic(self):
        assert parse_address("10.0.0.1") == (4, (10 << 24) + 1)

    def test_v4_extremes(self):
        assert parse_address("0.0.0.0") == (4, 0)
        assert parse_address("255.255.255.255") == (4, (1 << 32) - 1)

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "01.2.3.4", "a.b.c.d", "1.2.3.-4"]
    )
    def test_v4_invalid(self, bad):
        with pytest.raises(PrefixError):
            parse_address(bad)

    def test_v6_full(self):
        version, value = parse_address("2001:db8:0:0:0:0:0:1")
        assert version == 6
        assert value == (0x20010DB8 << 96) + 1

    def test_v6_compressed(self):
        assert parse_address("2001:db8::1") == parse_address("2001:db8:0:0:0:0:0:1")
        assert parse_address("::") == (6, 0)
        assert parse_address("::1") == (6, 1)

    def test_v6_embedded_v4(self):
        version, value = parse_address("::ffff:1.2.3.4")
        assert version == 6
        assert value == (0xFFFF << 32) + (1 << 24) + (2 << 16) + (3 << 8) + 4

    @pytest.mark.parametrize("bad", ["::1::2", "1:2:3", "2001:db8:::1", "g::1"])
    def test_v6_invalid(self, bad):
        with pytest.raises(PrefixError):
            parse_address(bad)


class TestFormatAddress:
    def test_v4(self):
        assert format_address(4, (192 << 24) + (168 << 16) + 1) == "192.168.0.1"

    def test_v6_compression(self):
        assert format_address(6, 1) == "::1"
        assert format_address(6, 0x20010DB8 << 96) == "2001:db8::"

    def test_out_of_range(self):
        with pytest.raises(PrefixError):
            format_address(4, 1 << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_v4_roundtrip(self, value):
        assert parse_address(format_address(4, value)) == (4, value)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_v6_roundtrip(self, value):
        assert parse_address(format_address(6, value)) == (6, value)


class TestPrefixConstruction:
    def test_parse(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert (prefix.version, prefix.value, prefix.length) == (4, 10 << 24, 8)

    def test_host_bits_rejected(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/8")

    def test_from_host_masks(self):
        assert Prefix.from_host("10.1.2.3", 8) == Prefix.parse("10.0.0.0/8")

    def test_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/33")
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/-1")

    def test_v4_helper_rejects_v6(self):
        with pytest.raises(PrefixError):
            Prefix.v4("2001:db8::/32")

    def test_str_roundtrip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "2001:db8::/32"):
            assert str(Prefix.parse(text)) == text


class TestPrefixArithmetic:
    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/8").num_addresses() == 1 << 24
        assert Prefix.parse("10.0.0.1/32").num_addresses() == 1

    def test_first_last(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert prefix.first_address() == 10 << 24
        assert prefix.last_address() == (10 << 24) + 255

    def test_contains_prefix(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.0.0/16")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_contains_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/8"))

    def test_contains_cross_family(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("::/8"))

    def test_contains_address(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert prefix.contains_address(4, (10 << 24) + 7)
        assert not prefix.contains_address(4, (10 << 24) + 256)
        assert not prefix.contains_address(6, 10 << 24)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.5.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_split(self):
        low, high = Prefix.parse("10.0.0.0/8").split()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_split_host_rejected(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/32").split()

    def test_subnets(self):
        subs = Prefix.parse("10.0.0.0/22").subnets(24)
        assert [str(s) for s in subs] == [
            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
        ]

    def test_subnets_invalid(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/24").subnets(8)

    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet()) == "10.0.0.0/8"
        assert str(Prefix.parse("10.1.2.0/24").supernet(8)) == "10.0.0.0/8"

    def test_bit_at(self):
        prefix = Prefix.parse("128.0.0.0/1")
        assert prefix.bit_at(0) == 1
        assert Prefix.parse("0.0.0.0/0").bit_at(0) == 0

    def test_ordering(self):
        prefixes = [
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [str(p) for p in ordered] == ["9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"]


@st.composite
def prefixes_v4(draw, max_length=28):
    length = draw(st.integers(min_value=0, max_value=max_length))
    value = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return Prefix(4, value & mask, length)


class TestPrefixProperties:
    @given(prefixes_v4())
    def test_parse_str_roundtrip(self, prefix):
        assert Prefix.parse(str(prefix)) == prefix

    @given(prefixes_v4(max_length=27))
    def test_split_partitions(self, prefix):
        low, high = prefix.split()
        assert prefix.contains(low) and prefix.contains(high)
        assert low.num_addresses() + high.num_addresses() == prefix.num_addresses()
        assert low.last_address() + 1 == high.first_address()
        assert not low.overlaps(high)

    @given(prefixes_v4(max_length=24))
    def test_supernet_contains(self, prefix):
        if prefix.length > 0:
            assert prefix.supernet().contains(prefix)

    @given(prefixes_v4(), prefixes_v4())
    def test_contains_antisymmetric(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(prefixes_v4())
    def test_netmask_hostmask_disjoint(self, prefix):
        assert prefix.netmask() & prefix.hostmask() == 0
        assert prefix.netmask() | prefix.hostmask() == (1 << 32) - 1
