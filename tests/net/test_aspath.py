"""Unit and property tests for repro.net.aspath."""

import pytest
from hypothesis import given, strategies as st

from repro.net.aspath import ASPath, ASPathError


class TestConstruction:
    def test_of(self):
        path = ASPath.of(3356, 1299, 4826)
        assert path.asns == (3356, 1299, 4826)

    def test_parse(self):
        assert ASPath.parse("3356 1299 4826") == ASPath.of(3356, 1299, 4826)

    def test_parse_invalid(self):
        with pytest.raises(ASPathError):
            ASPath.parse("")
        with pytest.raises(ASPathError):
            ASPath.parse("12 abc")

    def test_empty_rejected(self):
        with pytest.raises(ASPathError):
            ASPath(())

    def test_negative_rejected(self):
        with pytest.raises(ASPathError):
            ASPath((1, -2))


class TestAccessors:
    def test_endpoints(self):
        path = ASPath.of(10, 20, 30)
        assert path.collector_side == 10
        assert path.origin == 30

    def test_links(self):
        assert list(ASPath.of(1, 2, 3).links()) == [(1, 2), (2, 3)]

    def test_container_protocol(self):
        path = ASPath.of(1, 2, 3)
        assert len(path) == 3
        assert 2 in path
        assert path[1] == 2
        assert list(path) == [1, 2, 3]


class TestHygiene:
    def test_collapse_prepending(self):
        assert ASPath.of(1, 1, 2, 2, 2, 3).collapse_prepending() == ASPath.of(1, 2, 3)

    def test_collapse_noop(self):
        path = ASPath.of(1, 2, 3)
        assert path.collapse_prepending() == path

    def test_loop_detection(self):
        assert ASPath.of(1, 2, 1).has_loop()
        assert ASPath.of(1, 2, 3, 2).has_loop()
        assert not ASPath.of(1, 2, 3).has_loop()

    def test_prepending_is_not_loop(self):
        assert not ASPath.of(1, 1, 2, 2).has_loop()

    def test_without(self):
        assert ASPath.of(1, 99, 2).without({99}) == ASPath.of(1, 2)

    def test_without_keeps_others(self):
        path = ASPath.of(1, 2, 3)
        assert path.without({42}) == path

    def test_without_all_rejected(self):
        with pytest.raises(ASPathError):
            ASPath.of(1, 2).without({1, 2})

    def test_prepended(self):
        assert ASPath.of(2, 3).prepended(1) == ASPath.of(1, 2, 3)
        assert ASPath.of(2,).prepended(9, times=3) == ASPath.of(9, 9, 9, 2)

    def test_prepended_invalid(self):
        with pytest.raises(ASPathError):
            ASPath.of(1).prepended(2, times=0)


paths = st.lists(st.integers(min_value=1, max_value=2**16), min_size=1, max_size=12).map(
    lambda asns: ASPath(tuple(asns))
)


class TestProperties:
    @given(paths)
    def test_collapse_idempotent(self, path):
        once = path.collapse_prepending()
        assert once.collapse_prepending() == once

    @given(paths)
    def test_collapse_preserves_endpoints(self, path):
        collapsed = path.collapse_prepending()
        assert collapsed.collector_side == path.collector_side
        assert collapsed.origin == path.origin

    @given(paths, st.integers(min_value=1, max_value=4))
    def test_loop_invariant_under_prepending(self, path, times):
        prepended = path.prepended(path.collector_side, times)
        assert prepended.has_loop() == path.has_loop()

    @given(paths)
    def test_parse_str_roundtrip(self, path):
        assert ASPath.parse(str(path)) == path
