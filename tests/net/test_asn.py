"""Unit tests for repro.net.asn."""

import pytest

from repro.net.asn import (
    AS_TRANS,
    ASNRegistry,
    is_documentation_asn,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
)


class TestClassification:
    def test_reserved(self):
        for asn in (0, 112, AS_TRANS, 65535, 4294967295):
            assert is_reserved_asn(asn)
            assert not is_public_asn(asn)

    def test_private_ranges(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert is_private_asn(4200000000)
        assert not is_private_asn(64511)

    def test_documentation_ranges(self):
        assert is_documentation_asn(64496)
        assert is_documentation_asn(65551)
        assert not is_documentation_asn(65552)

    def test_public(self):
        for asn in (1, 3356, 1299, 6939, 174):
            assert is_public_asn(asn)
        assert not is_public_asn(-5)
        assert not is_public_asn(2**33)


class TestRegistry:
    def test_allocate_specific(self):
        registry = ASNRegistry()
        assert registry.allocate(3356) == 3356
        assert registry.is_allocated(3356)
        assert 3356 in registry

    def test_allocate_duplicate_rejected(self):
        registry = ASNRegistry()
        registry.allocate(42)
        with pytest.raises(ValueError):
            registry.allocate(42)

    def test_allocate_reserved_rejected(self):
        registry = ASNRegistry()
        for asn in (0, 112, 64512, 64496):
            with pytest.raises(ValueError):
                registry.allocate(asn)

    def test_allocate_auto_skips_taken(self):
        registry = ASNRegistry()
        registry.allocate(1)
        registry.allocate(2)
        assert registry.allocate() == 3

    def test_allocate_many(self):
        registry = ASNRegistry()
        asns = registry.allocate_many(5)
        assert asns == [1, 2, 3, 4, 5]
        assert len(registry) == 5

    def test_unallocated_sample_avoids_allocated(self):
        registry = ASNRegistry()
        registry.allocate(100000)
        sample = registry.unallocated_sample(3, start=100000)
        assert 100000 not in sample
        assert len(sample) == 3
        assert all(not registry.is_allocated(asn) for asn in sample)

    def test_update_bulk(self):
        registry = ASNRegistry()
        registry.update([3356, 1299])
        assert registry.is_allocated(3356) and registry.is_allocated(1299)

    def test_update_rejects_reserved(self):
        registry = ASNRegistry()
        with pytest.raises(ValueError):
            registry.update([0])

    def test_iteration_sorted(self):
        registry = ASNRegistry()
        registry.update([30, 10, 20])
        assert list(registry) == [10, 20, 30]
