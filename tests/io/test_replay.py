"""Tests for dataset replay: release → reload → identical rankings."""

import json

import pytest

from repro import run_pipeline
from repro.core.ndcg import ndcg
from repro.core.registry import get_spec
from repro.core.registry import specs as registry_specs
from repro.io.export import export_pathset_jsonl
from repro.io.replay import ReplayError, ReplaySession, load_pathset_jsonl
from repro.topology.paper_world import build_paper_world


@pytest.fixture(scope="module")
def result():
    return run_pipeline(build_paper_world())


@pytest.fixture(scope="module")
def released(result, tmp_path_factory):
    path = tmp_path_factory.mktemp("release") / "paths.jsonl"
    export_pathset_jsonl(result.paths, path)
    return path


class TestLoad:
    def test_round_trip_records(self, result, released):
        paths = load_pathset_jsonl(released)
        assert len(paths) == len(result.paths)
        original = result.paths.records[0]
        loaded = paths.records[0]
        assert loaded.vp.ip == original.vp.ip
        assert loaded.prefix == original.prefix
        assert loaded.path == original.path
        assert loaded.addresses == original.addresses

    def test_bad_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        with pytest.raises(ReplayError):
            load_pathset_jsonl(bad)

    def test_missing_fields_rejected(self, tmp_path):
        bad = tmp_path / "incomplete.jsonl"
        bad.write_text(json.dumps({"vp_ip": "10.0.0.1"}) + "\n")
        with pytest.raises(ReplayError):
            load_pathset_jsonl(bad)

    def test_blank_lines_ignored(self, result, released, tmp_path):
        padded = tmp_path / "padded.jsonl"
        padded.write_text(released.read_text() + "\n\n")
        assert len(load_pathset_jsonl(padded)) == len(result.paths)


class TestReplayRankings:
    def test_hegemony_replays_exactly(self, result, released):
        session = ReplaySession.from_file(released)
        for metric, country in (("AHI", "AU"), ("AHN", "RU"), ("AHG", None)):
            original = result.ranking(metric, country)
            replayed = session.ranking(metric, country)
            assert replayed.top_asns(10) == original.top_asns(10), metric
            for entry in replayed.top(10):
                assert entry.value == pytest.approx(original.value_of(entry.asn))

    def test_cones_replay_approximately(self, result, released):
        """Cone metrics rely on inferred relationships: close, not exact."""
        session = ReplaySession.from_file(released)
        original = result.ranking("CCI", "AU")
        replayed = session.ranking("CCI", "AU")
        assert ndcg(original, replayed) > 0.6

    def test_cones_exact_with_supplied_oracle(self, result, released):
        session = ReplaySession(load_pathset_jsonl(released),
                                oracle=result.world.graph)
        original = result.ranking("CCI", "AU")
        replayed = session.ranking("CCI", "AU")
        assert replayed.top_asns(10) == original.top_asns(10)

    def test_ahc_not_replayable(self, released):
        session = ReplaySession.from_file(released)
        with pytest.raises(ValueError):
            session.ranking("AHC", "AU")

    def test_country_required(self, released):
        session = ReplaySession.from_file(released)
        with pytest.raises(ValueError):
            session.ranking("AHI")

    def test_rankings_memoised(self, released):
        session = ReplaySession.from_file(released)
        assert session.ranking("AHG") is session.ranking("AHG")

    def test_country_codes_normalised(self, result, released):
        session = ReplaySession.from_file(released)
        assert session.ranking("ahn", "au") is session.ranking("AHN", "AU")
        assert session.ranking("AHN", " AU ").metric == "AHN:AU"


class TestRegistryReplayParity:
    """Every ``replayable`` spec replays value-exactly.

    Registry-driven: a newly registered replayable metric is covered
    here automatically. The session gets the pipeline's oracle (the
    released bundle carries no relationship labels), so cone metrics
    are exact too — the suite pins value identity, not approximation.
    """

    @pytest.mark.parametrize(
        "name", [spec.name for spec in registry_specs(replayable=True)]
    )
    def test_replay_matches_pipeline_value_exactly(
        self, result, released, name
    ):
        spec = get_spec(name)
        country = "AU" if spec.needs_country else None
        session = ReplaySession(
            load_pathset_jsonl(released), oracle=result.oracle
        )
        original = result.ranking(spec.name, country)
        replayed = session.ranking(spec.name, country)
        assert replayed.metric == original.metric
        assert replayed.country == original.country
        assert replayed.entries == original.entries

    def test_every_non_replayable_spec_is_rejected(self, released):
        session = ReplaySession.from_file(released)
        for spec in registry_specs(replayable=False):
            with pytest.raises(ValueError, match="cannot be replayed"):
                session.ranking(spec.name, "AU")
