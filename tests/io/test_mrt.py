"""Tests for the MRT-style RIB dump format."""

import gzip
import json

import pytest

from repro import GeneratorConfig, generate_world, small_profiles
from repro.bgp.announcement import Announcement
from repro.bgp.collectors import VantagePoint
from repro.bgp.propagation import propagate_all
from repro.bgp.rib import generate_rib_days
from repro.io.mrt import (
    MrtFormatError,
    dump_rib,
    dump_series,
    load_rib,
    read_header,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def sample_announcements(n=5):
    return [
        Announcement(
            vp=VantagePoint(f"192.0.2.{i}", 100 + i, "test-ix"),
            prefix=Prefix.parse(f"10.{i}.0.0/16"),
            path=ASPath.of(100 + i, 50, i + 1),
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_dump_and_load(self, tmp_path):
        announcements = sample_announcements()
        path = dump_rib(announcements, tmp_path / "rib.jsonl.gz", day=2)
        assert read_header(path).day == 2
        loaded = list(load_rib(path))
        assert loaded == announcements

    def test_empty_dump(self, tmp_path):
        path = dump_rib([], tmp_path / "empty.jsonl.gz")
        assert list(load_rib(path)) == []

    def test_series_round_trip(self, tmp_path):
        world = generate_world(
            GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
            seed=3,
        )
        outcome = propagate_all(world.graph, keep=world.vp_asns())
        series = generate_rib_days(world, outcome, seed=1)
        written = dump_series(series, tmp_path / "dumps")
        assert len(written) == series.config.days
        for day, path in enumerate(written):
            loaded = sum(1 for _ in load_rib(path))
            original = sum(1 for _ in series.announcements(day))
            assert loaded == original


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"type": "header", "format": "other"}) + "\n")
        with pytest.raises(MrtFormatError):
            read_header(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps(
                {"type": "header", "format": "repro-mrt", "version": 99, "day": 0}
            ) + "\n")
        with pytest.raises(MrtFormatError):
            read_header(path)

    def test_missing_trailer_rejected(self, tmp_path):
        path = tmp_path / "truncated.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps(
                {"type": "header", "format": "repro-mrt", "version": 1, "day": 0}
            ) + "\n")
        with pytest.raises(MrtFormatError):
            list(load_rib(path))

    def test_corrupt_count_rejected(self, tmp_path):
        path = dump_rib(sample_announcements(3), tmp_path / "rib.jsonl.gz")
        text = gzip.decompress(path.read_bytes()).decode()
        text = text.replace('"entries": 3', '"entries": 7')
        path.write_bytes(gzip.compress(text.encode()))
        with pytest.raises(MrtFormatError):
            list(load_rib(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "void.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("")
        with pytest.raises(MrtFormatError):
            list(load_rib(path))


class TestCorruptInputWrapped:
    """Malformed input never escapes as a raw EOFError /
    JSONDecodeError — always MrtFormatError with ``path:line``."""

    def test_truncated_gzip_stream(self, tmp_path):
        whole = dump_rib(sample_announcements(20), tmp_path / "rib.jsonl.gz")
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(whole.read_bytes()[:-20])  # drop the gzip tail
        with pytest.raises(MrtFormatError) as excinfo:
            list(load_rib(cut))
        assert str(cut) in str(excinfo.value)

    def test_not_gzip_at_all(self, tmp_path):
        path = tmp_path / "plain.jsonl.gz"
        path.write_text('{"type": "header"}\n')
        with pytest.raises(MrtFormatError) as excinfo:
            list(load_rib(path))
        assert str(path) in str(excinfo.value)
        with pytest.raises(MrtFormatError):
            read_header(path)

    def test_invalid_json_line_carries_line_number(self, tmp_path):
        path = dump_rib(sample_announcements(3), tmp_path / "rib.jsonl.gz")
        text = gzip.decompress(path.read_bytes()).decode()
        lines = text.splitlines()
        lines[2] = '{"type": "rib", "peer_ip":'  # mangle line 3
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode()))
        with pytest.raises(MrtFormatError) as excinfo:
            list(load_rib(path))
        assert f"{path}:3" in str(excinfo.value)

    def test_malformed_entry_carries_line_number(self, tmp_path):
        path = dump_rib(sample_announcements(3), tmp_path / "rib.jsonl.gz")
        text = gzip.decompress(path.read_bytes()).decode()
        lines = text.splitlines()
        lines[1] = json.dumps({"type": "rib", "peer_ip": "10.0.0.1"})
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode()))
        with pytest.raises(MrtFormatError) as excinfo:
            list(load_rib(path))
        assert f"{path}:2" in str(excinfo.value)

    def test_corrupt_header_fatal_even_lenient(self, tmp_path):
        path = tmp_path / "rib.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write('{"type": "header", "for\n')
        with pytest.raises(MrtFormatError):
            list(load_rib(path, strict=False))

    def test_header_errors_name_line_one(self, tmp_path):
        path = tmp_path / "rib.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not json\n")
        with pytest.raises(MrtFormatError) as excinfo:
            read_header(path)
        assert f"{path}:1" in str(excinfo.value)


class TestWindowedLoading:
    def test_batches_cover_the_stream_in_order(self, tmp_path):
        from repro.io.mrt import load_rib_windows

        announcements = sample_announcements(17)
        path = dump_rib(announcements, tmp_path / "rib.jsonl.gz")
        batches = list(load_rib_windows(path, window=5))
        assert [len(batch) for batch in batches] == [5, 5, 5, 2]
        flattened = [a for batch in batches for a in batch]
        assert flattened == announcements

    def test_single_batch_when_window_exceeds_stream(self, tmp_path):
        from repro.io.mrt import load_rib_windows

        announcements = sample_announcements(3)
        path = dump_rib(announcements, tmp_path / "rib.jsonl.gz")
        assert list(load_rib_windows(path, window=100)) == [announcements]

    def test_empty_dump_yields_no_batches(self, tmp_path):
        from repro.io.mrt import load_rib_windows

        path = dump_rib([], tmp_path / "empty.jsonl.gz")
        assert list(load_rib_windows(path, window=4)) == []

    def test_window_must_be_positive(self, tmp_path):
        from repro.io.mrt import load_rib_windows

        path = dump_rib(sample_announcements(), tmp_path / "rib.jsonl.gz")
        with pytest.raises(ValueError):
            list(load_rib_windows(path, window=0))


class TestQuarantineCounters:
    def _broken_dump(self, tmp_path):
        """A lenient-mode dump with one bad JSON line and one bad entry."""
        path = dump_rib(sample_announcements(4), tmp_path / "rib.jsonl.gz")
        lines = gzip.decompress(path.read_bytes()).decode().splitlines()
        lines[2] = "{not json"
        lines[3] = json.dumps({"type": "mystery"})
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode()))
        return path

    def test_diverted_lines_surface_as_counters(self, tmp_path):
        from repro.obs.trace import Tracer
        from repro.resilience.quarantine import Quarantine

        tracer = Tracer()
        sink = Quarantine()
        loaded = list(load_rib(
            self._broken_dump(tmp_path), strict=False, quarantine=sink,
            tracer=tracer,
        ))
        assert len(loaded) == 2
        counters = tracer.metrics.counters()
        assert counters["io.quarantine.invalid-json"] == 1
        assert counters["io.quarantine.bad-entry"] == 1
        # counters mirror the sink, they do not replace it
        assert len(sink) == 2

    def test_counters_appear_in_stage_report(self, tmp_path):
        from repro.obs.export import stage_report
        from repro.obs.trace import Tracer

        tracer = Tracer()
        list(load_rib(self._broken_dump(tmp_path), strict=False, tracer=tracer))
        report = stage_report(tracer)
        assert "-- io quarantine" in report
        assert "io.quarantine.invalid-json" in report

    def test_strict_mode_counts_nothing(self, tmp_path):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        path = dump_rib(sample_announcements(2), tmp_path / "rib.jsonl.gz")
        list(load_rib(path, strict=True, tracer=tracer))
        assert not any(
            key.startswith("io.quarantine.")
            for key in tracer.metrics.counters()
        )
