"""Tests for dataset export."""

import csv
import json

import pytest

from repro import GeneratorConfig, generate_world, run_pipeline, small_profiles
from repro.io.export import (
    export_filter_report,
    export_ixp_csv,
    export_pathset_jsonl,
    export_rankings_csv,
    export_vp_locations_csv,
    release_dataset,
)


@pytest.fixture(scope="module")
def result():
    world = generate_world(
        GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
        seed=8,
    )
    return run_pipeline(world)


class TestExports:
    def test_rankings_csv(self, result, tmp_path):
        path = export_rankings_csv(
            [result.ranking("CCG"), result.ranking("AHN", "AU")],
            tmp_path / "rankings.csv", k=5,
        )
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        metrics = {row["metric"] for row in rows}
        assert metrics == {"CCG", "AHN:AU"}
        assert all(int(row["rank"]) <= 5 for row in rows)
        ccg_rows = [row for row in rows if row["metric"] == "CCG"]
        assert [int(r["rank"]) for r in ccg_rows] == sorted(
            int(r["rank"]) for r in ccg_rows
        )

    def test_pathset_jsonl(self, result, tmp_path):
        path = export_pathset_jsonl(result.paths, tmp_path / "paths.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(result.paths)
        record = json.loads(lines[0])
        assert {"vp_ip", "prefix", "path", "prefix_country"} <= set(record)
        assert isinstance(record["path"], list)

    def test_vp_locations(self, result, tmp_path):
        path = export_vp_locations_csv(result, tmp_path / "vps.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.world.collectors.all_vps())
        multihop = [row for row in rows if row["multihop"] == "True"]
        assert multihop and all(row["vp_country"] == "" for row in multihop)

    def test_filter_report(self, result, tmp_path):
        path = export_filter_report(result.paths.report, tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["total"] == result.paths.report.total
        assert payload["accepted"] + sum(payload["rejected"].values()) == payload["total"]

    def test_ixp_csv(self, result, tmp_path):
        path = export_ixp_csv(result, tmp_path / "ixps.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(list(result.world.collectors))
        with_rs = [row for row in rows if row["route_server_asn"]]
        assert with_rs  # small world has route-server IXPs

    def test_release_bundle(self, result, tmp_path):
        written = release_dataset(result, tmp_path / "release", countries=["AU"])
        assert set(written) == {"rankings", "paths", "vps", "ixps",
                                "filter_report", "manifest"}
        manifest = json.loads(written["manifest"].read_text())
        assert "CCI:AU" in manifest["metrics"]
        for path in written.values():
            assert path.exists()
