"""Table 13: percentage of each country's prefixes dropped by the 50 %
geolocation threshold.

Paper: the case-study countries lose at most 0.1 % of prefixes, while
the worst-split countries (Isle of Man, Guernsey, Martinique, Namibia)
lose 1.0–1.4 %. Our engineered split-geography countries take the
worst-filtered slots while the case studies stay near zero.
"""

from conftest import once

from repro.analysis.filtering_stats import filtering_table, render_filtering_table


def test_table13_filtered_prefixes(benchmark, paper2021, emit):
    result = paper2021
    rows = once(
        benchmark,
        lambda: filtering_table(result.prefix_geo, worst=4, by_addresses=False),
    )
    emit("table13_filtered_prefixes", render_filtering_table(rows, by_addresses=False))

    by_code = {row.country: row for row in rows}
    # Case-study countries lose (almost) nothing.
    for code in ("RU", "TW", "US", "AU", "JP"):
        if code in by_code:
            assert by_code[code].pct_prefixes_filtered < 2.0, code
    # The worst-filtered countries are the engineered split ones.
    worst = [row.country for row in rows if row.country not in
             ("RU", "TW", "UA", "US", "AU", "JP")]
    assert worst, "no worst-filtered tail"
    split = {"GG", "HR", "NA", "LT", "MU", "AF", "GB", "AT", "ZA", "LV", "IN"}
    assert set(worst) & split
    assert max(by_code[c].pct_prefixes_filtered for c in worst) > 1.0
