"""Table 12: which countries' ASes provide international connectivity
(AHI > 0.1) across each continent.

Paper: the U.S. serves 76 % of the world's countries; Sweden (Arelion)
is second; France/UK/Italy serve Africa along colonial-era lines;
Australia dominates Oceania; Spain serves Spanish-speaking South
America; Russia serves Central Asia.
"""

from conftest import once

from repro.analysis.regions import continental_dominance, render_dominance_table


def test_table12_continents(benchmark, paper2021, emit):
    result = paper2021
    rows = once(benchmark, lambda: continental_dominance(result, threshold=0.1))
    emit("table12_continents", render_dominance_table(rows, result))

    by_country = {row.serving_country: row for row in rows}
    # The U.S. serves the most countries, on every continent.
    assert rows[0].serving_country == "US"
    us = by_country["US"]
    assert us.total() >= 2 * rows[2].total() if len(rows) > 2 else True
    continents_served = sum(1 for count in us.by_continent.values() if count)
    assert continents_served >= 5
    # Regional hegemons appear with their home continents.
    assert by_country["SE"].total() >= 3          # Arelion
    assert by_country["ES"].by_continent.get("South America", 0) >= 2
    assert by_country["GB"].by_continent.get("Africa", 0) >= 1   # Liquid
    assert by_country["FR"].by_continent.get("Africa", 0) >= 1   # Orange
    assert by_country["RU"].by_continent.get("Asia", 0) >= 2     # ex-Soviet
    # Each row's top AS actually serves at least one country.
    for row in rows[:8]:
        assert row.top_as is not None and row.top_as[1] >= 1
