"""Ablation: the hegemony trim fraction (§1.2's 10 % choice).

Without trimming, VPs inside (or right next to) an AS inflate its
score; with too much trimming the estimator throws information away.
We sweep the trim and check that (a) trimming changes scores for
VP-local ASes and (b) the paper's 10 % keeps the AU top-2 stable.
"""

from conftest import once

from repro.core.hegemony import hegemony_ranking


def test_ablation_trim(benchmark, paper2021, emit, name_of):
    result = paper2021
    view = result.view("international", "AU")

    def sweep():
        return {
            trim: hegemony_ranking(view, f"AHI:AU@{trim}", trim)
            for trim in (0.0, 0.05, 0.1, 0.2, 0.3)
        }

    rankings = once(benchmark, sweep)
    lookup = name_of(result)
    lines = []
    for trim, ranking in sorted(rankings.items()):
        tops = ", ".join(
            f"{entry.rank}.{lookup(entry.asn)}({entry.share_pct():.0f}%)"
            for entry in ranking.top(3)
        )
        lines.append(f"trim={trim:<5} {tops}")
    emit("ablation_trim", "\n".join(lines))

    # Trimming matters: scores differ between 0 % and 10 %.
    untrimmed = rankings[0.0]
    trimmed = rankings[0.1]
    changed = sum(
        1 for entry in trimmed.top(10)
        if abs(untrimmed.value_of(entry.asn) - entry.value) > 1e-6
    )
    assert changed > 0
    # The paper's headline AU result is robust across moderate trims.
    for trim in (0.05, 0.1, 0.2):
        assert set(rankings[trim].top_asns(3)) & {1221, 4637}
