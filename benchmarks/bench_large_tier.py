"""Out-of-core gate: the ``large`` tier must rank under a bounded RSS.

Runs the full pipeline on the catalog's ``large`` world (5M+ RIB
records at the default scale factors) with the mmap spill backend
(``store_backend="mmap"``), sweeps a cross-family set of rankings, and
enforces two gates:

* **record floor** — the ingested record stream must be at least
  ``--min-records`` (the tier must actually be large, not silently
  shrunken by a profile regression);
* **RSS ceiling** — the process peak RSS over the whole run must stay
  under ``--rss-ceiling`` bytes. This is the out-of-core contract: the
  record set never lives in memory, so peak RSS is bounded by the
  streaming working set (interning tables, propagation state, bucket
  arrays), not by record volume.

``--smoke`` swaps in an unscaled profile set (the default world's
shape through the same spill path) with proportionally reduced gates —
the mechanism check ``make test`` runs on every change; ``make
bench-large`` runs the real tier.

The result is merged into ``BENCH_pipeline.json`` (schema
``bench_pipeline/4``) under the ``large_tier`` key, preserving
whatever the scaling benchmark already recorded there.

Run:  PYTHONPATH=src python benchmarks/bench_large_tier.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline
from repro.obs.trace import Tracer, peak_rss_bytes
from repro.topology.profiles import large_profiles

REPO_ROOT = Path(__file__).resolve().parent.parent

#: one metric per family, over the paper's case-study countries — wide
#: enough to touch every engine path (index, suffix cache, cones,
#: hegemony betweenness, CTI) without a full 60-country sweep
SWEEP_METRICS = ("CCI", "AHN", "AHC", "CTI")
SWEEP_COUNTRIES = ("US", "GB", "NL", "JP", "BR")

#: full-tier gates: the tier definition (>= 5M records) and a ceiling
#: ~35% above the measured peak on the reference container (1.26GB at
#: seed 0), so real regressions (records materializing in RAM would
#: add gigabytes) trip it while allocator noise does not
FULL_MIN_RECORDS = 5_000_000
FULL_RSS_CEILING = 1_700_000_000

#: smoke gates: default-world volume through the same spill machinery
#: (measured peak 0.31GB; the ceiling leaves ~2.5x for interpreter
#: noise across hosts)
SMOKE_MIN_RECORDS = 200_000
SMOKE_RSS_CEILING = 800_000_000


def bench_large(seed: int, smoke: bool) -> dict:
    if smoke:
        profiles = large_profiles(vp_scale=1, block_scale=1)
        name = "large-smoke"
    else:
        profiles = large_profiles()
        name = "large"
    world = generate_world(
        GeneratorConfig(profiles=profiles), seed=seed, name=name
    )

    stream_records = None
    if not smoke:
        # the tier definition is "at least --min-records deduplicated
        # RIB records"; count the stream itself (lazily — this is the
        # exact iterator the pipeline consumes, so it never costs RAM)
        from repro.topology.generator import iter_world_records

        t0 = time.perf_counter()
        stream_records = sum(
            1 for _ in iter_world_records(world=world, seed=seed)
        )
        print(
            f"[large:full] stream: {stream_records} records in "
            f"{time.perf_counter() - t0:.1f}s",
            flush=True,
        )

    tracer = Tracer()
    t0 = time.perf_counter()
    result = run_pipeline(
        world, PipelineConfig(seed=seed, store_backend="mmap"), tracer=tracer
    )
    pipeline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    rankings = result.rank_all(SWEEP_METRICS, SWEEP_COUNTRIES)
    sweep_s = time.perf_counter() - t0
    if not rankings:
        raise AssertionError("large-tier sweep produced no rankings")

    report = result.paths.report
    peak = peak_rss_bytes() or 0
    entry = {
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "store_backend": "mmap",
        #: deduplicated RIB records in the world's stream (full mode
        #: only — the number the tier's >= 5M definition is about)
        "stream_records": stream_records,
        #: Table-1 announcement units in/out of sanitization
        "world_records": report.total,
        "accepted_records": report.accepted,
        "rankings": len(rankings),
        "pipeline_s": round(pipeline_s, 2),
        "sweep_s": round(sweep_s, 2),
        "peak_rss_bytes": peak,
        "per_stage_peak_rss_bytes": dict(sorted(tracer.rss_peaks.items())),
    }
    result.close()
    return entry


def merge_report(path: Path, entry: dict) -> None:
    """Fold the large-tier entry into the shared benchmark report."""
    report: dict = {}
    if path.exists():
        report = json.loads(path.read_text())
    report.setdefault("schema", "bench_pipeline/4")
    report["large_tier"] = entry
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="unscaled profiles through the same spill path, with "
             "proportionally reduced gates (the make-test mode)",
    )
    parser.add_argument(
        "--min-records", type=int, default=None,
        help="fail when the ingested record stream is smaller than this "
             f"(default {FULL_MIN_RECORDS} full, {SMOKE_MIN_RECORDS} smoke)",
    )
    parser.add_argument(
        "--rss-ceiling", type=int, default=None,
        help="fail when process peak RSS exceeds this many bytes "
             f"(default {FULL_RSS_CEILING} full, {SMOKE_RSS_CEILING} smoke)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_pipeline.json")
    )
    args = parser.parse_args(argv)

    min_records = args.min_records if args.min_records is not None else (
        SMOKE_MIN_RECORDS if args.smoke else FULL_MIN_RECORDS
    )
    rss_ceiling = args.rss_ceiling if args.rss_ceiling is not None else (
        SMOKE_RSS_CEILING if args.smoke else FULL_RSS_CEILING
    )

    mode = "smoke" if args.smoke else "full"
    print(f"[large:{mode}] running …", flush=True)
    entry = bench_large(args.seed, args.smoke)

    failures: list[str] = []
    measured_records = (
        entry["stream_records"] if entry["stream_records"] is not None
        else entry["world_records"]
    )
    if measured_records < min_records:
        failures.append(
            f"record stream {measured_records} is below the "
            f"{min_records} floor"
        )
    if entry["peak_rss_bytes"] > rss_ceiling:
        failures.append(
            f"peak RSS {entry['peak_rss_bytes']} exceeds the "
            f"{rss_ceiling} ceiling"
        )
    entry["gates"] = {
        "min_records": min_records,
        "rss_ceiling_bytes": rss_ceiling,
        "status": "failed" if failures else "passed",
    }
    merge_report(Path(args.output), entry)

    print(
        f"[large:{mode}] {measured_records} records  "
        f"pipeline {entry['pipeline_s']:.1f}s  sweep {entry['sweep_s']:.1f}s  "
        f"peak RSS {entry['peak_rss_bytes'] / 1e9:.2f}GB "
        f"(ceiling {rss_ceiling / 1e9:.2f}GB)  "
        f"{entry['rankings']} rankings  gate "
        f"{entry['gates']['status']}",
        flush=True,
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
