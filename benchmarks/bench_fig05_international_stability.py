"""Figure 5: NDCG of international rankings (AHI, CCI) vs out-of-country
VPs.

Paper: both metrics stabilise (NDCG ≥ 0.9) once at least ~91 external
VPs remain, and every country has enough external VPs for a stable
international ranking — unlike the national case. We sweep the
case-study countries on the generated world and check that (a) the
international curves stabilise and (b) every case-study country's
external VP pool exceeds the stability threshold.
"""

from conftest import once

from repro.analysis.stability import international_stability

COUNTRIES = ("AU", "JP", "RU", "US")
SIZES = [5, 10, 20, 40, 80, 120, 180, 240]


def test_fig05_international_stability(benchmark, default_result, emit):
    def sweep():
        curves = {}
        for metric in ("AHI", "CCI"):
            for country in COUNTRIES:
                curves[(metric, country)] = international_stability(
                    default_result, country, metric,
                    sizes=SIZES, trials=6, seed=5,
                )
        return curves

    curves = once(benchmark, sweep)
    lines = []
    for (metric, country), curve in sorted(curves.items()):
        series = "  ".join(
            f"{size}:{mean:.2f}" for size, mean, _ in curve.as_rows()
        )
        lines.append(
            f"{metric} {country} (of {curve.total_vps} VPs)  {series}"
            f"   [>=0.9 @ {curve.min_vps_for(0.9)}]"
        )
    emit("fig05_international_stability", "\n".join(lines))

    for (metric, country), curve in curves.items():
        threshold = curve.min_vps_for(0.9)
        assert threshold is not None, (metric, country)
        # Every country has far more external VPs than the threshold —
        # the paper's argument for international rankings being
        # universally computable.
        assert curve.total_vps > threshold
