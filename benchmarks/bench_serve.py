"""Serving-layer benchmark: latency, QPS, and the warm-hit floor.

Starts a real ``repro-serve`` daemon (ephemeral port, in-process
``ThreadingHTTPServer``) over one pipeline run, then drives it with a
stdlib HTTP client in two phases:

* **cold** — the first ``/rank`` per registry metric: every response
  must report ``source: computed`` (store miss → registry compute →
  banked);
* **warm** — ``--rounds`` round-robin repeats of the same queries:
  every response must report ``source: store``, i.e. answered from the
  artifact store without re-running propagation, view construction, or
  metric math.

Client-side p50/p99 latency, throughput, and the store hit rate land
in ``BENCH_serve.json`` (override with ``--output``). The gate:
``--warm-floor R`` fails (exit 1) when cold-mean / warm-p50 falls
below R — the "a warm hit must be at least R× faster than a cold
compute" contract. The cold side is the *mean*, not the p50: the
first cold query pays the view/cone/suffix construction that later
cold metrics then share (cross-metric caches), so the median cold
query is artificially cheap — the mean charges that warm-up to the
cold side, where it belongs. A wrong ``source`` on any response is a
correctness failure and exits 1 regardless of timing.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro import (
    GeneratorConfig,
    PipelineConfig,
    generate_world,
    run_pipeline,
    small_profiles,
)
from repro.core.registry import iter_specs
from repro.serve import ArtifactStore, RankingServer, RankingService, store_key

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_world(kind: str, seed: int):
    if kind == "small":
        config = GeneratorConfig(
            profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
        )
        return generate_world(config, seed=seed, name="small")
    if kind == "medium":
        return generate_world(seed=seed, name="medium")
    raise ValueError(f"unknown bench world {kind!r}")


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def phase_stats(latencies_ms: list[float], total_s: float) -> dict:
    return {
        "requests": len(latencies_ms),
        "p50_ms": round(percentile(latencies_ms, 0.50), 3),
        "p99_ms": round(percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(sum(latencies_ms) / len(latencies_ms), 3),
        "qps": round(len(latencies_ms) / total_s, 1) if total_s else None,
        "total_s": round(total_s, 4),
    }


def drive(base: str, paths: list[str], expect_source: str) -> list[float]:
    """Issue every query once; return per-request latencies (ms).

    Raises ``AssertionError`` when a ``/rank`` response's ``source``
    is not what the phase demands — a wrong source means the store or
    the daemon is lying about where the answer came from.
    """
    latencies: list[float] = []
    for path in paths:
        t0 = time.perf_counter()
        with urllib.request.urlopen(base + path) as response:
            payload = json.loads(response.read())
        latencies.append((time.perf_counter() - t0) * 1000.0)
        source = payload.get("source")
        if source != expect_source:
            raise AssertionError(
                f"{path}: expected source={expect_source!r}, got {source!r}"
            )
    return latencies


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--world", default="medium",
                        choices=("small", "medium"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--rounds", type=int, default=20,
        help="warm round-robin repeats of the full query set",
    )
    parser.add_argument(
        "--warm-floor", type=float, default=0.0,
        help="fail (exit 1) when cold-p50/warm-p50 is below this "
             "ratio (0 disables)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serve.json"))
    args = parser.parse_args(argv)

    world = build_world(args.world, args.seed)
    print(f"[{args.world}] pipeline …", flush=True)
    t0 = time.perf_counter()
    result = run_pipeline(world, PipelineConfig(seed=args.seed))
    startup_s = time.perf_counter() - t0

    country = (result.countries_with_national_view() or ["US"])[0]
    queries = []
    for spec in iter_specs():
        path = f"/rank?metric={spec.name}"
        if spec.needs_country:
            path += f"&country={country}"
        queries.append(path)

    store = ArtifactStore(store_key(world, result.config))
    service = RankingService(result, store)
    server = RankingServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.port}"

    try:
        print(f"[cold] {len(queries)} queries …", flush=True)
        t0 = time.perf_counter()
        cold = drive(base, queries, "computed")
        cold_total = time.perf_counter() - t0

        print(f"[warm] {args.rounds} rounds …", flush=True)
        t0 = time.perf_counter()
        warm: list[float] = []
        for _ in range(args.rounds):
            warm.extend(drive(base, queries, "store"))
        warm_total = time.perf_counter() - t0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        result.close()

    cold_stats = phase_stats(cold, cold_total)
    warm_stats = phase_stats(warm, warm_total)
    warm_speedup = (
        cold_stats["mean_ms"] / warm_stats["p50_ms"]
        if warm_stats["p50_ms"] else float("inf")
    )
    lookups = store.hits + store.misses
    gate: dict = {"floor": args.warm_floor}
    if not args.warm_floor:
        gate["status"] = "disabled"
    else:
        gate["measured"] = round(warm_speedup, 2)
        gate["status"] = (
            "passed" if warm_speedup >= args.warm_floor else "failed"
        )

    report = {
        "schema": "bench_serve/1",
        "world": args.world,
        "seed": args.seed,
        "country": country,
        "fingerprint": service.fingerprint,
        "queries": len(queries),
        "startup_s": round(startup_s, 4),
        "cold": cold_stats,
        "warm": warm_stats,
        "warm_speedup": round(warm_speedup, 2),
        "store": {
            "hits": store.hits,
            "misses": store.misses,
            "entries": len(store),
            "hit_rate": round(store.hits / lookups, 4) if lookups else None,
        },
        "gate": gate,
    }
    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"[serve] cold p50 {cold_stats['p50_ms']:.1f}ms  "
        f"warm p50 {warm_stats['p50_ms']:.2f}ms  "
        f"warm p99 {warm_stats['p99_ms']:.2f}ms  "
        f"{warm_stats['qps']:.0f} qps  "
        f"hit rate {report['store']['hit_rate']:.2%}  "
        f"speedup {warm_speedup:.0f}x",
        flush=True,
    )
    print(f"wrote {out}")

    if gate["status"] == "failed":
        print(
            f"FAIL: warm-hit speedup {warm_speedup:.2f}x is below the "
            f"{args.warm_floor:.2f}x floor", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
