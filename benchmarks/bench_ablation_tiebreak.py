"""Ablation: route tie-break policy ("hash" hot-potato diversity vs
"asn" lowest-next-hop).

With the "asn" policy every AS resolves equal-cost ties identically, so
inbound paths funnel through the lowest-numbered upstreams and their
hegemony inflates; the "hash" policy (our default) spreads ties like
real geographic tie-breaking. The cone metrics, being set-based, should
move far less than the path-fraction metrics.
"""

from conftest import once

from repro import PipelineConfig, run_pipeline
from repro.core.ndcg import ndcg
from repro.topology.paper_world import build_paper_world


def test_ablation_tiebreak(benchmark, paper2021, emit):
    world = build_paper_world()

    asn_result = once(
        benchmark,
        lambda: run_pipeline(world, PipelineConfig(tiebreak="asn")),
    )
    hash_result = paper2021

    lines = []
    agreements = {}
    for metric in ("AHI", "CCI"):
        a = hash_result.ranking(metric, "AU")
        b = asn_result.ranking(metric, "AU")
        agreements[metric] = ndcg(a, b)
        lines.append(f"{metric}:AU NDCG(hash vs asn) = {agreements[metric]:.3f}")
        lines.append(f"  hash top-5: {a.top_asns(5)}")
        lines.append(f"  asn  top-5: {b.top_asns(5)}")
    emit("ablation_tiebreak", "\n".join(lines))

    # Cone rankings are more robust to the tie-break than hegemony
    # (sets vs path fractions).
    assert agreements["CCI"] >= agreements["AHI"] - 0.05
    assert agreements["CCI"] > 0.8
