"""Table 9: Australia's country rankings vs CCG/AHG/AHC.

Paper's argument: culling Australian ASes out of a global ranking
misorders them (CCG ranks Telstra Global above the domestically
critical ASes), and IHR's AHC confounds the national and international
roles that AHI/AHN separate — plus Amazon appears in AHN but not AHC.
"""

from conftest import once

from repro.analysis.case_studies import (
    global_comparison_table,
    render_global_comparison,
)


def test_table09_global_vs_country(benchmark, paper2021, emit):
    result = paper2021
    rows = once(benchmark, lambda: global_comparison_table(result, "AU"))
    emit("table09_global_vs_country", render_global_comparison(rows, "AU"))

    # Arelion leads CCI and holds the 2nd-largest global cone.
    assert rows[0].cci_asn == 1299
    assert rows[0].cci_ccg_rank == 2
    # The global cone ranking misorders Australia: Telstra Global above
    # the domestically dominant Telstra AS (paper §5.1.1).
    ccg = result.ranking("CCG")
    assert ccg.rank_of(4637) < ccg.rank_of(1221)
    # AHC mixes the AHI and AHN leaders into one list (paper §5.1.2).
    ahc_top = set(result.ranking("AHC", "AU").top_asns(6))
    assert set(result.ranking("AHI", "AU").top_asns(2)) & ahc_top
    assert set(result.ranking("AHN", "AU").top_asns(2)) & ahc_top
    # Amazon: present in AHN (prefix geolocation) with a larger share
    # than AHC (AS registration) gives it.
    ahn = result.ranking("AHN", "AU")
    ahc = result.ranking("AHC", "AU")
    assert ahn.rank_of(16509) is not None
    assert (ahc.share_of(16509) or 0.0) < (ahn.share_of(16509) or 0.0)
