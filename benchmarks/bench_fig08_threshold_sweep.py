"""Figure 8: countries' prefix-geolocation success vs the majority
threshold.

Paper: at the 50 % threshold nearly every country keeps > 99 % of its
prefixes; only a handful (Guernsey, Martinique, Namibia) fall below.
Raising the threshold pushes more countries into the lower bands.
"""

from conftest import once

from repro.analysis.filtering_stats import threshold_sweep

THRESHOLDS = (0.05, 0.25, 0.45, 0.5, 0.65, 0.8, 0.95)
BANDS = ((0.99, 1.01), (0.9, 0.99), (0.5, 0.9), (-0.01, 0.5))


def test_fig08_threshold_sweep(benchmark, paper2021, emit):
    result = paper2021
    points = once(
        benchmark,
        lambda: threshold_sweep(
            result.world.announced_prefixes(), result.geodb, THRESHOLDS
        ),
    )

    lines = [f"{'threshold':>10} " + " ".join(f"{low:.2f}-{high:.2f}" for low, high in BANDS)]
    for point in points:
        counts = [point.countries_in_band(low, high) for low, high in BANDS]
        lines.append(f"{point.threshold:>10.2f} " + " ".join(f"{c:>9}" for c in counts))
    emit("fig08_threshold_sweep", "\n".join(lines))

    by_threshold = {p.threshold: p for p in points}
    # At 50 %, most countries keep nearly all their prefixes.
    at_half = by_threshold[0.5]
    top_band = at_half.countries_in_band(0.99, 1.01)
    assert top_band >= 0.6 * len(at_half.assigned_fraction)
    # The split countries fall below the top band at 50 %.
    assert any(
        at_half.assigned_fraction[code] < 0.99
        for code in ("GG", "HR", "NA", "LT") if code in at_half.assigned_fraction
    )
    # Tightening the threshold shrinks the fully-assigned band.
    assert by_threshold[0.95].countries_in_band(0.99, 1.01) <= top_band
