"""Figure 6: the end-to-end pipeline (RIBs → sanitize → geolocate →
views → rankings).

Figure 6 is the paper's pipeline diagram; the benchmark measures the
real thing: a full pipeline execution on the small world, with
per-stage record counts emitted as the "diagram"."""

from repro import GeneratorConfig, PipelineConfig, generate_world, run_pipeline, small_profiles


def test_fig06_pipeline(benchmark, emit):
    world = generate_world(
        GeneratorConfig(profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")),
        seed=1, name="small",
    )

    result = benchmark.pedantic(
        lambda: run_pipeline(world, PipelineConfig()), rounds=3, iterations=1
    )

    stages = [
        ("announcements (5 days)", result.ribs.total_announcements()),
        ("deduplicated records", result.ribs.num_records()),
        ("accepted paths", len(result.paths)),
        ("located VPs", len(result.vp_geo.located())),
        ("geolocated prefixes", len(result.prefix_geo.country_of)),
        ("countries with national view (>=7 VPs)",
         len(result.countries_with_national_view())),
    ]
    text = "\n".join(f"{label:<42}{value:>10}" for label, value in stages)
    emit("fig06_pipeline", text)

    assert len(result.paths) > 0
    assert result.ribs.num_records() <= result.ribs.total_announcements()
    assert len(result.prefix_geo.country_of) > 0
