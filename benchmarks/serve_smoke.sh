#!/bin/sh
# Serving gate: a real repro-serve daemon (ephemeral port) on the
# small world under a hard time ceiling, driven cold then warm by the
# bench_serve load generator. Fails loudly when a response's `source`
# is wrong (a warm query that recomputed, or a cold one that claimed a
# store hit), when the warm-hit speedup drops below the floor, or when
# the run regresses past the ceiling.
#
# Usage:  sh benchmarks/serve_smoke.sh [ceiling-seconds]
#
# The floor is left at 1.0 here: on the small world a cold compute is
# ~2 ms, so HTTP/JSON overhead dominates both sides and sharper ratios
# are noise — `make bench-serve` runs the medium world with the real
# 100x warm-hit floor.
set -eu

CEILING="${1:-120}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/benchmarks/output"
mkdir -p "$OUT"

status=0
timeout "$CEILING" env PYTHONPATH="$ROOT/src" python \
    "$ROOT/benchmarks/bench_serve.py" \
    --world small --rounds 5 --warm-floor 1.0 \
    --output "$OUT/BENCH_serve_smoke.json" || status=$?

if [ "$status" -eq 124 ]; then
    echo "FAIL: serve smoke exceeded the ${CEILING}s ceiling" >&2
    exit 1
elif [ "$status" -ne 0 ]; then
    echo "FAIL: serve smoke exited with status $status" >&2
    exit "$status"
fi
echo "serve smoke OK (ceiling ${CEILING}s)"
