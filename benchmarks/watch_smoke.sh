#!/bin/sh
# Watch smoke: a 3-snapshot small-world monitoring run under a hard
# time ceiling, followed by a schema check of the emitted event stream
# (the validate_events-style gate for the watch JSONL).
#
# Usage:  sh benchmarks/watch_smoke.sh [ceiling-seconds]
set -eu

CEILING="${1:-120}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/benchmarks/output"
mkdir -p "$OUT"

status=0
timeout "$CEILING" env PYTHONPATH="$ROOT/src" python -m repro.cli \
    watch small@0 small@1 small@2 \
    --metrics AHN,CCI --countries AU --json \
    > "$OUT/watch_smoke.jsonl" || status=$?

if [ "$status" -eq 124 ]; then
    echo "FAIL: watch smoke exceeded the ${CEILING}s ceiling" >&2
    exit 1
elif [ "$status" -ne 0 ]; then
    echo "FAIL: watch smoke exited with status $status" >&2
    exit "$status"
fi

PYTHONPATH="$ROOT/src" python - "$OUT/watch_smoke.jsonl" <<'EOF'
import sys
from repro.monitor import validate_watch_jsonl

text = open(sys.argv[1]).read()
problems = validate_watch_jsonl(text)
if problems:
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    raise SystemExit(1)
events = [line for line in text.splitlines() if line.strip()]
kinds = {line.split('"type": "')[1].split('"')[0] for line in events}
missing = {"snapshot", "ranking", "drift"} - kinds
if missing:
    print(f"FAIL: event stream missing types {sorted(missing)}", file=sys.stderr)
    raise SystemExit(1)
print(f"watch smoke: {len(events)} events, schema valid")
EOF
echo "watch smoke OK (ceiling ${CEILING}s)"
