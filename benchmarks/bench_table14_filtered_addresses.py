"""Table 14: percentage of each country's addresses dropped by the 50 %
geolocation threshold.

Paper: case studies lose ≤ 7.6 % of addresses (US/RU/TW: 0); the worst
countries (Afghanistan, Croatia, India, Lithuania) lose 15–18 %.
"""

from conftest import once

from repro.analysis.filtering_stats import filtering_table, render_filtering_table


def test_table14_filtered_addresses(benchmark, paper2021, emit):
    result = paper2021
    rows = once(
        benchmark,
        lambda: filtering_table(result.prefix_geo, worst=4, by_addresses=True),
    )
    emit("table14_filtered_addresses", render_filtering_table(rows, by_addresses=True))

    by_code = {row.country: row for row in rows}
    for code in ("US", "RU", "TW"):
        if code in by_code:
            assert by_code[code].pct_addresses_filtered < 1.0, code
    worst = [row for row in rows if row.country not in
             ("RU", "TW", "UA", "US", "AU", "JP")]
    assert worst
    # The tail loses a double-digit share of addresses (paper: 15–18 %).
    assert max(row.pct_addresses_filtered for row in worst) > 10.0
