"""Table 4: every country with ≥ 7 in-country VPs, with its VP, ASN,
prefix and address footprint.

The paper's 16-country table (NL 141 … JP 7) gates which countries get
national rankings. We regenerate it on the generated default world,
whose VP plan follows the paper's ordering.
"""

from conftest import once

from repro.analysis.vp_distribution import render_census, vp_census


def test_table04_vp_countries(benchmark, default_result, emit):
    rows = once(benchmark, lambda: vp_census(default_result, min_vps=7))
    emit("table04_vp_countries", render_census(rows))

    by_code = {row.country: row for row in rows}
    # The paper's leaders, in order.
    codes = [row.country for row in rows]
    assert codes[:5] == ["NL", "GB", "US", "DE", "BR"]
    # Case-study countries make the >= 7 VP cut (paper §5).
    for code in ("AU", "JP", "RU", "US"):
        assert code in by_code, code
        assert by_code[code].vp_ips >= 7
    for row in rows:
        assert row.prefixes > 0 and row.addresses > 0
