"""Micro-overhead guard for the observability layer.

The instrumentation contract is that a pipeline run with tracing
*disabled* (the default no-op tracer on every hook) stays within noise
of the pre-instrumentation runtime — the hooks are attribute lookups
and no-op method calls, never conditionals or allocations in hot
loops. This benchmark measures both modes on the small world and emits
the ratio; the tier-1 equivalent with generous bounds lives in
``tests/obs/test_overhead.py``.
"""

import time

from conftest import once

from repro.cli import build_world
from repro.core.pipeline import PipelineConfig, run_pipeline


def _time_run(world, trace: bool, repeats: int = 3) -> float:
    """Best-of-N wall time of one full pipeline run (best-of suppresses
    scheduler noise better than a mean for second-scale workloads)."""
    best = float("inf")
    for index in range(repeats):
        config = PipelineConfig(seed=0, trace=trace)
        start = time.perf_counter()
        run_pipeline(world, config)
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_overhead(benchmark, emit):
    world = build_world("small", 0)
    # Warm caches before timing either mode.
    run_pipeline(world, PipelineConfig(seed=0))

    disabled = once(benchmark, lambda: _time_run(world, trace=False))
    enabled = _time_run(world, trace=True)

    ratio = enabled / disabled if disabled else 1.0
    emit(
        "obs_overhead",
        "\n".join([
            "== tracing overhead (small world, best of 3) ==",
            f"trace disabled: {disabled * 1000.0:8.1f}ms",
            f"trace enabled:  {enabled * 1000.0:8.1f}ms",
            f"enabled/disabled ratio: {ratio:.3f}",
        ]),
    )
    # Enabled tracing records ~30 spans and a few dozen metric updates
    # per run — it must stay cheap too (well under 2x on any machine).
    assert ratio < 2.0
