"""Extension: destructive validation of the dependence findings.

The paper (§7) notes public BGP data cannot support resilience
assessments because backup paths are invisible; the simulator can. We
remove whole countries' carrier sets and re-propagate:

* removing Russia's ASes strands exactly the Central-Asian dependents
  Figure 7 identifies, and nobody else;
* removing China's ASes leaves Taiwan essentially untouched (§6.2);
* removing Lumen alone forces global rerouting but almost no blackout
  (tier-1 redundancy), stranding only its single-homed dependents.
"""

from conftest import once

from repro.analysis.resilience import ases_registered_in, disconnection_impact


def test_ext_resilience(benchmark, paper2021, emit):
    world = paper2021.world

    def run_scenarios():
        return {
            "RU": disconnection_impact(world, ases_registered_in(world, "RU")),
            "CN": disconnection_impact(world, ases_registered_in(world, "CN")),
            "AS3356": disconnection_impact(world, {3356}),
        }

    impacts = once(benchmark, run_scenarios)
    emit("ext_resilience", "\n\n".join(
        f"[{name}]\n" + impact.render(8) for name, impact in impacts.items()
    ))

    russia = impacts["RU"]
    stranded = set(russia.stranded_countries())
    assert stranded <= {"RU", "KZ", "KG", "TJ", "TM"}
    assert {"KG", "TM"} <= stranded
    assert russia.by_country["UA"].lost_share < 0.05
    assert russia.by_country["DE"].lost_share < 0.05

    china = impacts["CN"]
    assert china.by_country["TW"].lost_share < 0.05

    lumen = impacts["AS3356"]
    total = sum(i.total_addresses for i in lumen.by_country.values())
    lost = sum(i.lost_addresses for i in lumen.by_country.values())
    rerouted = sum(i.rerouted_addresses for i in lumen.by_country.values())
    assert lost / total < 0.1
    assert rerouted / total > 0.02
