"""Extension: quantifying §3.3's "the four metrics capture different
properties" with rank-agreement statistics.

Computes Kendall τ / Spearman ρ / rank-biased overlap between every
pair of country metrics for the case-study countries. The measured
structure is subtle and worth stating precisely: the two cone views
agree perfectly on the *relative order* of the ASes they share
(τ(CCI, CCN) = 1 — cone containment is view-independent) while their
*top memberships* differ sharply (low RBO — multinationals top CCI,
domestic carriers top CCN). That is exactly the paper's argument for
needing both views.
"""

from conftest import once

from repro.analysis.rank_correlation import metric_matrix, render_matrix

COUNTRIES = ("AU", "JP", "RU", "US")


def test_ext_metric_correlation(benchmark, paper2021, emit):
    result = paper2021

    def build():
        return {country: metric_matrix(result, country) for country in COUNTRIES}

    matrices = once(benchmark, build)
    emit("ext_metric_correlation", "\n\n".join(
        f"[{country}]\n" + render_matrix(matrix)
        for country, matrix in matrices.items()
    ))

    for country, matrix in matrices.items():
        # Cone views: shared ASes keep their relative order…
        cone_pair = matrix[("CCI", "CCN")]
        assert cone_pair.kendall_tau == max(
            pair.kendall_tau for pair in matrix.values()
        ), country
        # …yet the views disagree about *who* is at the top (the whole
        # point of having both): RBO never exceeds the τ agreement.
        assert cone_pair.rbo <= cone_pair.kendall_tau + 1e-9, country
        for pair in matrix.values():
            assert -1.0 <= pair.kendall_tau <= 1.0
            assert 0.0 <= pair.rbo <= 1.0
