"""Ablation: hegemony path weighting (addresses vs unweighted paths).

The paper's AH weights each path by the addresses it leads to
(Figure 2); the unweighted variant treats each (VP, prefix) path
equally. In worlds where carriers announce similarly-sized prefixes the
two agree closely (measured NDCG ≈ 0.99); the weighting matters exactly
when prefix sizes are heterogeneous — which is why the paper specifies
it rather than leaving it implicit.
"""

from conftest import once

from repro.core.hegemony import hegemony_ranking
from repro.core.ndcg import ndcg


def test_ablation_weighting(benchmark, paper2021, emit, name_of):
    result = paper2021
    view = result.view("international", "AU")

    def build():
        return (
            hegemony_ranking(view, "AHI:AU@addresses", weighting="addresses"),
            hegemony_ranking(view, "AHI:AU@prefixes", weighting="prefixes"),
        )

    by_addresses, by_prefixes = once(benchmark, build)
    lookup = name_of(result)
    lines = [
        "address-weighted top-5: "
        + ", ".join(f"{lookup(a)}" for a in by_addresses.top_asns(5)),
        "path-count top-5:       "
        + ", ".join(f"{lookup(a)}" for a in by_prefixes.top_asns(5)),
        f"NDCG(addresses vs prefixes) = {ndcg(by_addresses, by_prefixes):.3f}",
    ]
    for asn in (1221, 4637, 4826):
        gain = by_addresses.value_of(asn) - by_prefixes.value_of(asn)
        lines.append(f"AS{asn} {lookup(asn)}: address-weight delta {gain:+.3f}")
    emit("ablation_weighting", "\n".join(lines))

    # Same leaders either way in this world; the weighting shifts
    # values without reordering the top (prefix sizes are homogeneous).
    assert 0.5 < ndcg(by_addresses, by_prefixes) <= 1.0
    assert by_addresses.top_asns(2) == by_prefixes.top_asns(2)
