"""Figure 7: Russian ASes' international hegemony over former-Soviet
countries.

Paper: Russian ASes held AHI > 20 % only over Turkmenistan, Russia
itself, Tajikistan, Kazakhstan, and Kyrgyzstan; the Western and Central
former republics do not depend on Russian infrastructure.
"""

from conftest import once

from repro.analysis.regions import country_hegemony_over


def test_fig07_russia_hegemony(benchmark, paper2021, emit):
    result = paper2021
    hegemony = once(benchmark, lambda: country_hegemony_over(result, "RU"))

    former_soviet = {c.code for c in result.world.countries.former_soviet()}
    lines = [f"{'country':<8}{'max RU AHI':>12}{'former soviet':>15}"]
    for code, value in sorted(hegemony.items(), key=lambda kv: -kv[1]):
        if value > 0.01:
            lines.append(
                f"{code:<8}{100 * value:>11.1f}%{'yes' if code in former_soviet else '':>15}"
            )
    emit("fig07_russia_hegemony", "\n".join(lines))

    strong = {code for code, value in hegemony.items() if value > 0.2}
    # Central-Asian former republics depend on Russian transit…
    assert "RU" in strong
    assert len({"KZ", "KG", "TJ", "TM"} & strong) >= 3
    # …while the Western former republics do not (paper Figure 7).
    for code in ("UA", "BY", "EE", "LV", "LT", "MD"):
        assert hegemony.get(code, 0.0) <= 0.2, code
    # And every strongly-dependent country is former-Soviet.
    assert strong <= former_soviet
