"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures. Worlds
and pipelines are expensive, so they are built once per session; the
benchmarked callable is the analysis step itself. Every benchmark also
writes its rendered table/series to ``benchmarks/output/`` so a run
leaves the full set of reproduced artifacts behind.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import PipelineConfig, generate_world, run_pipeline
from repro.topology.paper_world import (
    SNAPSHOT_2021,
    SNAPSHOT_2023,
    build_paper_world,
    paper_as_names,
)

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper2021():
    """Pipeline result on the curated April-2021 world."""
    return run_pipeline(build_paper_world(SNAPSHOT_2021))


@pytest.fixture(scope="session")
def paper2023():
    """Pipeline result on the curated March-2023 world."""
    return run_pipeline(build_paper_world(SNAPSHOT_2023))


@pytest.fixture(scope="session")
def default_result():
    """Pipeline result on the generated ~1000-AS world (stability work)."""
    return run_pipeline(generate_world(seed=42, name="default"))


@pytest.fixture(scope="session")
def names():
    """ASN → display name covering curated and generated ASes."""
    return paper_as_names()


@pytest.fixture(scope="session")
def name_of(names):
    def lookup(result):
        def inner(asn: int) -> str:
            return names.get(asn) or result.as_name(asn)
        return inner
    return lookup


@pytest.fixture(scope="session")
def emit():
    """Write a reproduced artifact to benchmarks/output/ and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n")

    return write


@pytest.fixture(scope="session", autouse=True)
def pipeline_trace_artifact():
    """Persist a traced small-world pipeline run after every bench
    session (``benchmarks/output/pipeline_trace.json``, JSONL events).

    This is the perf-trajectory baseline: each benchmark run leaves
    behind per-stage wall/CPU times and volume counters that future
    optimization PRs diff against.
    """
    yield
    from repro.cli import run_traced
    from repro.obs.export import to_jsonl

    _, tracer = run_traced("small", seed=0)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "pipeline_trace.json").write_text(to_jsonl(tracer) + "\n")
    tracer.close()


def once(benchmark, fn):
    """Run an analysis exactly once under the benchmark timer.

    Table regeneration is deterministic and often seconds-long; there
    is no value in pytest-benchmark's default multi-round calibration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_case_study(benchmark, result, country, emit, name, lookup):
    """Shared driver for the Table 5–8 case-study benchmarks."""
    from repro.analysis.case_studies import case_study_table, render_case_study

    rows = benchmark.pedantic(
        lambda: case_study_table(result, country), rounds=1, iterations=1
    )
    emit(name, render_case_study(rows, country))
    return rows
