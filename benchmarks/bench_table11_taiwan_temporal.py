"""Table 11: Taiwan's CCI/AHI, April 2021 vs March 2023.

Paper: Taiwanese and U.S. ISPs dominate both snapshots; China Telecom
4134 drops out of the CCI top-10 (7th → 77th) between 2021 and 2023 —
evidence of Taiwan's Internet independence from China.
"""

from conftest import once

from repro.analysis.temporal import compare_snapshots


def test_table11_taiwan_temporal(benchmark, paper2021, paper2023, emit, name_of):
    def build():
        return (
            compare_snapshots(paper2021, paper2023, "TW", "CCI",
                              before_label="20210401", after_label="20230301"),
            compare_snapshots(paper2021, paper2023, "TW", "AHI",
                              before_label="20210401", after_label="20230301"),
        )

    cone, hegemony = once(benchmark, build)
    lookup = name_of(paper2021)
    emit("table11_taiwan_temporal",
         cone.render(lookup) + "\n\n" + hegemony.render(lookup))

    # China Telecom is in the 2021 cone top-10 and gone by 2023.
    assert paper2021.ranking("CCI", "TW").rank_of(4134) <= 10
    after = paper2023.ranking("CCI", "TW").rank_of(4134)
    assert after is None or after > 10
    # Chunghwa's domestic AS tops AHI in both snapshots (paper: 3462
    # #1 in 2021 and 2023).
    assert hegemony.rows[0].before_asn == 3462
    assert hegemony.rows[0].after_asn == 3462
    # No Chinese AS anywhere in the 2023 top-10s (§6.2 self-reliance).
    graph = paper2023.world.graph
    for row in list(cone.rows) + list(hegemony.rows):
        if row.after_asn is not None:
            assert graph.node(row.after_asn).registry_country != "CN"
    # Most of the AHI top-10 is Taiwanese (paper: 7 of 10).
    taiwanese = [
        row.after_asn for row in hegemony.rows
        if row.after_asn and graph.node(row.after_asn).registry_country == "TW"
    ]
    assert len(taiwanese) >= 4
