"""Hotspot profile: cProfile over the pipeline plus a ranking sweep.

Runs one traced ``run_pipeline`` and a ``rank_all`` sweep under
cProfile and prints, in order:

1. the obs stage report (wall/cpu/in/out per pipeline stage) — the
   coarse where-does-the-time-go view;
2. the pstats top-N by cumulative time, then by total (self) time —
   the fine-grained one.

The combination answers both "which stage regressed" and "which
function inside it". A copy of the report is written to
``benchmarks/output/profile.txt``.

Run:  PYTHONPATH=src python benchmarks/profile_pipeline.py
      (or ``make profile``)
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

from repro import PipelineConfig, run_pipeline
from repro.obs.export import stage_report
from repro.obs.trace import Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_pipeline_scaling import SWEEP_METRICS, build_world, pick_countries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--world", default="small", help="small or medium")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--countries", type=int, default=5)
    parser.add_argument(
        "--top", type=int, default=25, help="rows per pstats table"
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "benchmarks/output/profile.txt")
    )
    args = parser.parse_args(argv)

    world = build_world(args.world, args.seed)
    tracer = Tracer()
    profiler = cProfile.Profile()

    profiler.enable()
    result = run_pipeline(world, PipelineConfig(seed=args.seed), tracer=tracer)
    countries = pick_countries(result, args.countries)
    result.rank_all(SWEEP_METRICS, countries)
    profiler.disable()
    tracer.close()

    sections = [stage_report(tracer, title=f"{args.world} stage report")]
    for sort, label in (("cumulative", "cumulative"), ("tottime", "self")):
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats(sort).print_stats(args.top)
        sections.append(
            f"== top {args.top} by {label} time ==\n{buffer.getvalue().rstrip()}"
        )

    report = "\n\n".join(sections) + "\n"
    print(report, end="")
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(report)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
