"""Table 5: top-2 ASes per metric in Australia.

Paper: Telstra 1221 tops AHI/AHN; Vocus 4826 tops CCN (80 %) and is
CCI #2 behind Arelion 1299; Telstra Global 4637 is AHI #2 with ~zero
AHN. Our curated world reproduces the winners and the dual-AS split.
"""

from conftest import run_case_study


def test_table05_australia(benchmark, paper2021, emit, name_of):
    result = paper2021
    rows = run_case_study(benchmark, result, "AU", emit, "table05_australia", name_of)
    by_asn = {row.asn: row for row in rows}

    # Arelion #1 / Vocus #2 by international cone (paper: 1 and 2).
    assert by_asn[1299].cells["CCI"][0] == 1
    assert by_asn[4826].cells["CCI"][0] == 2
    # Vocus #1 / Telstra #2 by national cone (paper: 1 and 2).
    assert by_asn[4826].cells["CCN"][0] == 1
    assert by_asn[1221].cells["CCN"][0] == 2
    # Telstra #1 / Vocus #2 by national hegemony (paper: 1 and 2).
    assert by_asn[1221].cells["AHN"][0] == 1
    assert by_asn[4826].cells["AHN"][0] == 2
    # The Telstra pair leads international hegemony (paper: 1 and 2).
    ahi_ranks = {asn: row.cells["AHI"][0] for asn, row in by_asn.items()}
    assert min(ahi_ranks[1221], ahi_ranks[4637]) == 1
    # Telstra Global barely exists domestically (paper: rank 140, ~0 %).
    assert (by_asn[4637].cells["AHN"][1] or 0.0) < 0.1
    # Arelion has the second-largest global cone (paper subscript).
    assert by_asn[1299].ccg_rank == 2
