#!/bin/sh
# Perf smoke: the scaling benchmark on the small world under a hard
# time ceiling. Fails loudly when the run regresses past the ceiling
# (or the benchmark itself reports a speedup below its floor).
#
# Usage:  sh benchmarks/smoke.sh [ceiling-seconds]
#
# The small world finishes in well under a second of measured work; a
# generous ceiling keeps the gate immune to interpreter start-up noise
# while still catching order-of-magnitude pipeline regressions. The
# indexed-vs-naive floor is left at 1.0 here: small-world sweeps are
# ~10 ms, too noisy for a sharper ratio — `make bench` runs the medium
# world with the real 3x floor.
set -eu

CEILING="${1:-120}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/benchmarks/output"
mkdir -p "$OUT"

# Parallel floor: at workers=2 the fan-out must not lose to serial.
# The benchmark enforces this only on hosts with >= 2 usable CPUs and
# records the gate as skipped otherwise, so a single-core CI box does
# not fail on an impossible target.
status=0
timeout "$CEILING" env PYTHONPATH="$ROOT/src" python \
    "$ROOT/benchmarks/bench_pipeline_scaling.py" \
    --worlds small --min-speedup 1.0 \
    --workers 2 --parallel-floor 1.0 \
    --output "$OUT/BENCH_smoke.json" || status=$?

if [ "$status" -eq 124 ]; then
    echo "FAIL: bench smoke exceeded the ${CEILING}s ceiling" >&2
    exit 1
elif [ "$status" -ne 0 ]; then
    echo "FAIL: bench smoke exited with status $status" >&2
    exit "$status"
fi
echo "bench smoke OK (ceiling ${CEILING}s)"
