"""Figure 9: prefix-length distribution of filtered prefixes.

Paper: 85 % of filtered prefixes are dropped because more-specifics
entirely cover them; 15 % for lack of a geolocation consensus. The
covered ones are short aggregates (their more-specifics are longer).
"""

from conftest import once

from repro.analysis.filtering_stats import filtered_length_distribution


def test_fig09_filtered_lengths(benchmark, paper2021, emit):
    result = paper2021
    histogram = once(benchmark, lambda: filtered_length_distribution(result.prefix_geo))

    lines = [f"{'length':>7}{'covered':>9}{'no-consensus':>14}"]
    for length, bucket in histogram.items():
        lines.append(
            f"/{length:<6}{bucket['covered']:>9}{bucket['no_consensus']:>14}"
        )
    emit("fig09_filtered_lengths", "\n".join(lines))

    covered = sum(bucket["covered"] for bucket in histogram.values())
    no_consensus = sum(bucket["no_consensus"] for bucket in histogram.values())
    assert covered > 0 and no_consensus > 0
    # Covered aggregates dominate the filtered set (paper: 85 / 15).
    assert covered >= no_consensus
    # Covered prefixes are the shorter (aggregate) ones on average.
    mean_covered = sum(
        length * bucket["covered"] for length, bucket in histogram.items()
    ) / covered
    mean_split = sum(
        length * bucket["no_consensus"] for length, bucket in histogram.items()
    ) / no_consensus
    assert mean_covered <= mean_split
