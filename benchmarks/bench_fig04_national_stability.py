"""Figure 4: NDCG of national rankings (AHN, CCN) vs in-country VPs.

Paper: on the five best-instrumented countries, AHN/CCN reached
NDCG ≥ 0.8 with 9/6 VPs and ≥ 0.9 with 25/19. We sweep the same five
countries on the generated world (whose VP counts scale the paper's
down ~3×) and report the same thresholds.
"""

from conftest import once

from repro.analysis.stability import national_stability

COUNTRIES = ("NL", "GB", "US", "DE", "BR")
SIZES = [2, 3, 4, 6, 9, 12, 16, 20, 25, 30, 40]


def test_fig04_national_stability(benchmark, default_result, emit):
    def sweep():
        curves = {}
        for metric in ("AHN", "CCN"):
            for country in COUNTRIES:
                curves[(metric, country)] = national_stability(
                    default_result, country, metric,
                    sizes=SIZES, trials=8, seed=4,
                )
        return curves

    curves = once(benchmark, sweep)
    lines = []
    for (metric, country), curve in sorted(curves.items()):
        series = "  ".join(
            f"{size}:{mean:.2f}" for size, mean, _ in curve.as_rows()
        )
        lines.append(
            f"{metric} {country} (of {curve.total_vps} VPs)  {series}"
            f"   [>=0.8 @ {curve.min_vps_for(0.8)}, >=0.9 @ {curve.min_vps_for(0.9)}]"
        )
    emit("fig04_national_stability", "\n".join(lines))

    for (metric, country), curve in curves.items():
        rows = curve.as_rows()
        # Full VP set reproduces the reference ranking exactly.
        full = national_stability(
            default_result, country, metric, sizes=[curve.total_vps], trials=1
        )
        assert full.points[0].mean_ndcg == 1.0
        # Stability improves from the small end to the large end.
        assert rows[-1][1] >= rows[0][1] - 0.05
        # A modest number of VPs suffices for NDCG 0.8 (paper: 6–9).
        threshold = curve.min_vps_for(0.8)
        assert threshold is not None and threshold <= curve.total_vps
