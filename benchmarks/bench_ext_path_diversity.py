"""Extension ablation: multi-plane path diversity.

Real collector ecosystems observe more distinct AS adjacencies than any
single routing plane contains (every peer resolves ties differently).
This ablation measures how adding salted routing planes enriches the
observed link set and how stable the headline rankings stay.
"""

from conftest import once

from repro import PipelineConfig, run_pipeline
from repro.core.ndcg import ndcg
from repro.topology.paper_world import build_paper_world


def observed_links(result):
    links = set()
    for record in result.paths.records:
        links.update(record.path.links())
    return links


def changed_paths(base, other):
    reference = {(r.vp.ip, r.prefix): r.path for r in base.paths.records}
    return sum(
        1 for r in other.paths.records
        if reference.get((r.vp.ip, r.prefix)) not in (None, r.path)
    )


def test_ext_path_diversity(benchmark, paper2021, emit):
    world = build_paper_world()

    def run_planes():
        return {
            planes: run_pipeline(world, PipelineConfig(path_diversity=planes))
            for planes in (2, 4)
        }

    multi = once(benchmark, run_planes)
    single = paper2021

    base_links = len(observed_links(single))
    lines = [f"planes=1  observed links {base_links}"]
    for planes, result in sorted(multi.items()):
        links = len(observed_links(result))
        moved = changed_paths(single, result)
        agreement = ndcg(single.ranking("AHN", "AU"), result.ranking("AHN", "AU"))
        lines.append(
            f"planes={planes}  observed links {links} (+{links - base_links})  "
            f"changed paths {moved}  AHN:AU NDCG vs 1 plane {agreement:.3f}"
        )
    emit("ext_path_diversity", "\n".join(lines))

    # Extra planes really do change individual routes…
    assert changed_paths(single, multi[2]) > 0
    # …never reveal fewer adjacencies…
    assert len(observed_links(multi[2])) >= base_links
    assert len(observed_links(multi[4])) >= len(observed_links(multi[2]))
    # …and the headline national ranking stays essentially put.
    assert ndcg(
        single.ranking("AHN", "AU"), multi[4].ranking("AHN", "AU")
    ) > 0.85
