"""Ablation: ground-truth vs inferred AS relationships for the cones.

The paper consumes CAIDA's inferred relationships; our substrate can
compare cones computed with the generator's ground truth against cones
computed with our re-implemented Luckie-style inference, quantifying
how much inference error perturbs the CCI ranking.
"""

from conftest import once

from repro.core.cone import cone_ranking
from repro.core.ndcg import ndcg
from repro.relationships.inference import infer_relationships
from repro.relationships.validation import validate_inference


def test_ablation_relationships(benchmark, paper2021, emit):
    result = paper2021
    view = result.view("international", "AU")

    def run():
        inferred = infer_relationships(
            record.path for record in result.paths.records
        )
        truth_ranking = cone_ranking(view, result.world.graph, "CCI:AU(truth)")
        inferred_ranking = cone_ranking(view, inferred, "CCI:AU(inferred)")
        validation = validate_inference(inferred, result.world.graph)
        return inferred_ranking, truth_ranking, validation

    inferred_ranking, truth_ranking, validation = once(benchmark, run)
    agreement = ndcg(truth_ranking, inferred_ranking)
    emit("ablation_relationships", "\n".join([
        f"link accuracy:        {validation.accuracy:.3f}",
        f"clique precision:     {validation.clique_precision:.2f}",
        f"clique recall:        {validation.clique_recall:.2f}",
        f"CCI:AU NDCG vs truth: {agreement:.3f}",
        f"truth top-5:    {truth_ranking.top_asns(5)}",
        f"inferred top-5: {inferred_ranking.top_asns(5)}",
    ]))

    assert validation.accuracy > 0.75
    assert agreement > 0.7
