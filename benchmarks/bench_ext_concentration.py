"""Extension: market-concentration indices over the national rankings.

Quantifies the paper's §5.4 aside — "the prefix coverage percentage
values of all metrics are lower in Table 8, suggesting a less
concentrated U.S. market" — as HHI / CR1 / CR4 per case-study country.
"""

from conftest import once

from repro.analysis.concentration import (
    country_concentrations,
    render_concentrations,
)

COUNTRIES = ("US", "AU", "JP", "RU", "TW")


def test_ext_concentration(benchmark, paper2021, emit):
    result = paper2021
    reports = once(
        benchmark,
        lambda: {
            metric: country_concentrations(result, COUNTRIES, metric)
            for metric in ("AHN", "CCN")
        },
    )
    text = "\n\n".join(
        f"[{metric}]\n" + render_concentrations(by_country)
        for metric, by_country in reports.items()
    )
    emit("ext_concentration", text)

    for metric in ("AHN", "CCN"):
        by_country = reports[metric]
        # The U.S. is the least concentrated market (paper §5.4).
        assert by_country["US"].hhi == min(r.hhi for r in by_country.values())
        for report in by_country.values():
            assert 0 < report.hhi <= 10000
