"""Obs-overhead guard for the watch engine.

Same contract as ``bench_obs_overhead.py``, one layer up: a watch run
with the obs layer enabled (a live ``Tracer`` collecting ``watch.*``
spans and ``monitor.*`` instruments) must stay within 5 % of the same
run against the no-op tracer. The engine emits identical events either
way (asserted here too — the tracer is observe-only), so any gap is
pure instrumentation cost.

Timing is best-of-3 per mode over an in-memory 3-snapshot stream; the
pipeline loads dominate and are identical in both modes, which is what
keeps a strict 5 % bound safe from scheduler noise.
"""

from conftest import once

from repro.monitor import WatchConfig, resolve_snapshots
from repro.monitor.bench import measure_watch
from repro.obs.trace import NULL_TRACER, Tracer


def test_watch_obs_overhead(benchmark, emit):
    refs = resolve_snapshots(["small@0", "small@1", "small@2"])
    config = WatchConfig(metrics=("CCI", "AHI"), countries=("AU",))

    disabled = once(
        benchmark, lambda: measure_watch(refs, config, NULL_TRACER)
    )
    tracer = Tracer()
    enabled = measure_watch(refs, config, tracer)

    assert enabled.run.jsonl() == disabled.run.jsonl()  # observe-only
    assert tracer.metrics.counters()["monitor.events"] > 0

    ratio = enabled.seconds / disabled.seconds if disabled.seconds else 1.0
    emit(
        "watch_overhead",
        "\n".join([
            "== watch obs overhead (3 small snapshots, best of 3) ==",
            f"obs disabled: {disabled.seconds * 1000.0:8.1f}ms  "
            f"({disabled.events_per_s:,.0f} events/s)",
            f"obs enabled:  {enabled.seconds * 1000.0:8.1f}ms  "
            f"({enabled.events_per_s:,.0f} events/s)",
            f"enabled/disabled ratio: {ratio:.3f}",
        ]),
    )
    assert ratio <= 1.05
