"""Figure 10 / Appendix C: VP concentration across ASes.

Paper: 81 % of VP ASes host exactly one VP and 96 % host at most two,
so AS-level concentration does not bias the per-VP metrics.
"""

from conftest import once

from repro.analysis.vp_distribution import single_vp_share, vp_concentration


def test_fig10_vp_concentration(benchmark, paper2021, emit):
    result = paper2021
    histogram = once(benchmark, lambda: vp_concentration(result))

    lines = []
    for country, buckets in histogram.items():
        series = "  ".join(f"{n}vp:{count}as" for n, count in buckets.items())
        lines.append(f"{country:<4} {series}")
    emit("fig10_vp_concentration", "\n".join(lines))

    star = histogram["*"]
    total_ases = sum(star.values())
    # Most VP ASes host a single VP (paper: 81 %).
    assert star.get(1, 0) / total_ases > 0.5
    # …and one-or-two VPs covers the overwhelming majority (paper: 96 %).
    assert (star.get(1, 0) + star.get(2, 0)) / total_ases > 0.8
    assert 0.5 < single_vp_share(result) <= 1.0
