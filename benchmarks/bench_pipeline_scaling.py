"""Perf trajectory: batch ranking engine scaling benchmark.

Times, per world (small / medium):

* **cold pipeline** — a full ``run_pipeline`` (propagate → RIBs →
  sanitize → geolocate), serial;
* **naive sweep** — the pre-batch-engine behaviour: every (metric,
  country) pair rebuilds its view by scanning all sanitized records
  and recomputes every intermediate (transit suffixes, cones, per-VP
  betweenness, address totals) from scratch;
* **indexed sweep** — ``PipelineResult.rank_all`` over the same pairs:
  shared path index + cross-metric intermediate caches;
* **parallel pipeline** — the cold pipeline with ``workers`` process
  fan-out on route propagation, served by one persistent broadcast
  pool (its spawn/broadcast stats land in the report; on a single-core
  box parallel is expected to be slower, not faster, and the
  ``--parallel-floor`` gate auto-skips there — recorded explicitly as
  a ``parallel_gate`` entry with ``status: skipped`` and
  ``reason: insufficient_cpus``, never silently omitted).

Each world entry also records a per-stage wall-clock breakdown and
per-stage process peak-RSS high-water marks (``peak_rss_bytes``, from
the tracer's ``getrusage`` sampling) from a traced serial run, and the
report carries host provenance (logical CPUs, *usable* CPUs via
``sched_getaffinity``, Python, platform).

Also times the monitoring engine (``repro-rank watch``) over a
3-snapshot small-world stream with the obs layer off and on, recording
events/s and the obs overhead ratio under the report's ``watch`` key.

Writes ``BENCH_pipeline.json`` at the repo root (override with
``--output``) and exits non-zero when the indexed-vs-naive speedup
falls below ``--min-speedup`` — the hook ``make bench-smoke`` uses to
fail loudly on perf regressions.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro import (
    GeneratorConfig,
    PipelineConfig,
    PipelineResult,
    generate_world,
    run_pipeline,
    small_profiles,
)
from repro.core.cone import cone_ranking
from repro.core.cti import cti_ranking
from repro.core.hegemony import hegemony_ranking
from repro.core.registry import get_spec
from repro.core.views import (
    international_view,
    national_view,
    outbound_view,
)
from repro.obs.trace import Tracer
from repro.perf.parallel import CHUNKS_PER_WORKER

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The paper's four country metrics plus the CTI baseline — the
#: composition of the Tables 9–12 sweeps.
SWEEP_METRICS = ("CCI", "CCN", "AHI", "AHN", "CTI")

#: naive (full-scan) view builders, keyed by the registry's view kind
_NAIVE_VIEW_BUILDERS = {
    "international": international_view,
    "national": national_view,
    "outbound": outbound_view,
}


def build_world(kind: str, seed: int):
    if kind == "small":
        config = GeneratorConfig(
            profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
        )
        return generate_world(config, seed=seed, name="small")
    if kind == "medium":
        return generate_world(seed=seed, name="medium")
    raise ValueError(f"unknown bench world {kind!r}")


def naive_ranking(result: PipelineResult, metric: str, country: str):
    """One (metric, country) ranking the pre-engine way: rebuild the
    view by a full-record scan, recompute every intermediate."""
    spec = get_spec(metric)
    view = _NAIVE_VIEW_BUILDERS[spec.view_kind](result.paths, country)
    trim = result.config.trim
    if spec.family == "cone":
        return cone_ranking(view, result.oracle, f"{metric}:{country}")
    if spec.family == "hegemony":
        return hegemony_ranking(view, f"{metric}:{country}", trim)
    return cti_ranking(view, result.oracle, trim)


def fresh_result(result: PipelineResult) -> PipelineResult:
    """The same pipeline products with cold engine caches, so the
    indexed sweep is timed from scratch (no warm index/suffix cache)."""
    return PipelineResult(
        result.world, result.config, result.outcome, result.ribs,
        result.geodb, result.prefix_geo, result.vp_geo, result.paths,
        result.oracle, result.inferred,
    )


def pick_countries(result: PipelineResult, want: int) -> list[str]:
    """Sweep countries: qualifying national views first, topped up with
    the biggest destination countries."""
    chosen = result.countries_with_national_view()[:want]
    if len(chosen) < want:
        by_addresses = sorted(
            result.country_addresses().items(), key=lambda kv: (-kv[1], kv[0])
        )
        for code, _ in by_addresses:
            if code not in chosen:
                chosen.append(code)
            if len(chosen) >= want:
                break
    return chosen[:want]


def usable_cpus() -> int:
    """CPUs this process may actually run on — ``sched_getaffinity``
    where available (cgroup/taskset-aware), ``cpu_count`` otherwise."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def parallel_gate_record(
    floor: float, cpus_usable: int, measured: float
) -> dict:
    """The structured ``parallel_gate`` entry for the report.

    Always present (so a reader never has to guess whether the gate
    ran), with an explicit ``status``:

    * ``disabled`` — no floor requested (``--parallel-floor 0``);
    * ``skipped`` / ``reason: insufficient_cpus`` — a floor was
      requested but the host has fewer than 2 usable CPUs, where the
      fan-out's processes time-slice one core and parallel is expected
      to trail serial: the gate cannot be meaningful, and the record
      says so instead of silently omitting the result;
    * ``passed`` / ``failed`` — the floor was enforced against the
      measured parallel-vs-serial speedup.
    """
    record: dict = {"floor": floor, "cpus_usable": cpus_usable}
    if not floor:
        return {**record, "status": "disabled"}
    if cpus_usable < 2:
        return {
            **record,
            "status": "skipped",
            "reason": "insufficient_cpus",
            "needs_cpus": 2,
        }
    record["measured"] = measured
    record["status"] = "passed" if measured >= floor else "failed"
    return record


def stage_timings(tracer: Tracer) -> dict[str, float]:
    """Wall-clock per top-level pipeline stage, from a traced run."""
    root = next(
        record for record in tracer.spans if record.name == "pipeline"
    )
    stages: dict[str, float] = {}
    for record in tracer.spans:
        if record.parent_id == root.span_id:
            stages[record.name] = round(
                stages.get(record.name, 0.0) + record.dur_s, 4
            )
    return stages


def bench_world(
    kind: str, seed: int, countries_wanted: int, workers: int
) -> dict:
    world = build_world(kind, seed)

    t0 = time.perf_counter()
    result = run_pipeline(world, PipelineConfig(seed=seed))
    pipeline_cold_s = time.perf_counter() - t0

    # a separate traced serial run feeds the per-stage breakdown, so
    # the timed runs above/below stay tracer-free
    tracer = Tracer()
    run_pipeline(world, PipelineConfig(seed=seed), tracer=tracer)
    stages = stage_timings(tracer)
    stage_rss = dict(sorted(tracer.rss_peaks.items()))

    countries = pick_countries(result, countries_wanted)
    pairs = [(m, c) for m in SWEEP_METRICS for c in countries]

    # Best-of-3 on both sides: single-shot sweep timings are noisy
    # enough on small machines to swing the speedup across the floor.
    sweep_naive_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        naive = {
            (metric, country): naive_ranking(result, metric, country)
            for metric, country in pairs
        }
        sweep_naive_s = min(sweep_naive_s, time.perf_counter() - t0)

    sweep_indexed_s = float("inf")
    for _ in range(3):
        cold = fresh_result(result)  # cold engine caches every repeat
        t0 = time.perf_counter()
        indexed = cold.rank_all(SWEEP_METRICS, countries)
        sweep_indexed_s = min(sweep_indexed_s, time.perf_counter() - t0)

    for key, ranking in naive.items():
        entries = [(e.asn, e.value, e.share) for e in ranking.entries]
        other = [(e.asn, e.value, e.share) for e in indexed[key].entries]
        if entries != other:
            raise AssertionError(f"indexed sweep diverged from naive on {key}")

    t0 = time.perf_counter()
    parallel_result = run_pipeline(
        world, PipelineConfig(seed=seed, workers=workers)
    )
    pipeline_parallel_s = time.perf_counter() - t0
    pool = parallel_result._pool
    pool_stats = dict(pool.stats) if pool is not None else None
    parallel_result.close()

    speedup = sweep_naive_s / sweep_indexed_s if sweep_indexed_s else float("inf")
    parallel_speedup = (
        pipeline_cold_s / pipeline_parallel_s
        if pipeline_parallel_s else float("inf")
    )
    return {
        "records": len(result.paths),
        "countries": countries,
        "metrics": list(SWEEP_METRICS),
        "pairs": len(pairs),
        "pipeline_cold_s": round(pipeline_cold_s, 4),
        "pipeline_stages_s": stages,
        "peak_rss_bytes": stage_rss,
        "pipeline_parallel_s": round(pipeline_parallel_s, 4),
        "speedup_parallel_vs_serial": round(parallel_speedup, 2),
        "workers": workers,
        "chunks_per_worker": CHUNKS_PER_WORKER,
        "pool": pool_stats,
        "sweep_naive_s": round(sweep_naive_s, 4),
        "sweep_indexed_s": round(sweep_indexed_s, 4),
        "speedup_indexed_vs_naive": round(speedup, 2),
        "end_to_end_serial_s": round(pipeline_cold_s + sweep_naive_s, 4),
        "end_to_end_engine_s": round(pipeline_cold_s + sweep_indexed_s, 4),
    }


def bench_watch(seed: int) -> dict:
    """Watch-mode throughput: a 3-snapshot small-world stream, timed
    with the obs layer off (NULL_TRACER) and on (live Tracer). Events/s
    and the obs overhead ratio land in ``BENCH_pipeline.json`` so the
    monitoring engine's perf trajectory is tracked alongside the
    pipeline's."""
    from repro.monitor import WatchConfig, resolve_snapshots
    from repro.monitor.bench import measure_watch
    from repro.obs.trace import NULL_TRACER, Tracer

    specs = [f"small@{seed + offset}" for offset in range(3)]
    refs = resolve_snapshots(specs)
    config = WatchConfig(metrics=("CCI", "AHI"), countries=("AU",))

    plain = measure_watch(refs, config, NULL_TRACER)
    traced = measure_watch(refs, config, Tracer())
    if plain.run.jsonl() != traced.run.jsonl():
        raise AssertionError("tracer changed the watch event stream")

    ratio = traced.seconds / plain.seconds if plain.seconds else 1.0
    return {
        "snapshots": specs,
        "metrics": list(config.metrics),
        "countries": list(config.countries),
        "events": plain.events,
        "watch_obs_off_s": round(plain.seconds, 4),
        "watch_obs_on_s": round(traced.seconds, 4),
        "events_per_s_obs_off": round(plain.events_per_s, 1),
        "events_per_s_obs_on": round(traced.events_per_s, 1),
        "obs_overhead_ratio": round(ratio, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--worlds", default="small,medium")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--countries", type=int, default=5)
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1) + 1,
        help="fan-out width for the parallel pipeline measurement",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail (exit 1) when the *last* world's indexed-vs-naive "
             "speedup is below this floor (0 disables)",
    )
    parser.add_argument(
        "--parallel-floor", type=float, default=0.0,
        help="fail (exit 1) when the *last* world's parallel-vs-serial "
             "pipeline speedup is below this floor; only enforced on "
             "hosts with >= 2 usable CPUs — on fewer the gate is "
             "recorded as skipped (0 disables)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_pipeline.json")
    )
    args = parser.parse_args(argv)

    cpus = usable_cpus()
    report = {
        "schema": "bench_pipeline/4",
        "cpus": os.cpu_count(),
        "cpus_usable": cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": args.seed,
        "worlds": {},
    }
    last_speedup = float("inf")
    last_parallel = float("inf")
    for kind in [w for w in args.worlds.split(",") if w]:
        print(f"[{kind}] running …", flush=True)
        entry = bench_world(kind, args.seed, args.countries, args.workers)
        report["worlds"][kind] = entry
        last_speedup = entry["speedup_indexed_vs_naive"]
        last_parallel = entry["speedup_parallel_vs_serial"]
        print(
            f"[{kind}] pipeline {entry['pipeline_cold_s']:.2f}s  "
            f"parallel {entry['pipeline_parallel_s']:.2f}s  "
            f"naive sweep {entry['sweep_naive_s']:.2f}s  "
            f"indexed sweep {entry['sweep_indexed_s']:.2f}s  "
            f"speedup {entry['speedup_indexed_vs_naive']:.1f}x "
            f"({entry['pairs']} pairs)",
            flush=True,
        )

    print("[watch] running …", flush=True)
    report["watch"] = bench_watch(args.seed)
    print(
        f"[watch] {report['watch']['events']} events  "
        f"{report['watch']['events_per_s_obs_off']:.0f}/s obs-off  "
        f"{report['watch']['events_per_s_obs_on']:.0f}/s obs-on  "
        f"overhead {report['watch']['obs_overhead_ratio']:.3f}x",
        flush=True,
    )

    failures: list[str] = []
    if args.min_speedup and last_speedup < args.min_speedup:
        failures.append(
            f"indexed sweep speedup {last_speedup:.2f}x is below the "
            f"{args.min_speedup:.2f}x floor"
        )
    gate = parallel_gate_record(args.parallel_floor, cpus, last_parallel)
    report["parallel_gate"] = gate
    if gate["status"] != "disabled":
        detail = (
            f"{gate['reason']} ({cpus} usable, needs {gate['needs_cpus']})"
            if gate["status"] == "skipped"
            else f"floor {gate['floor']:.2f}x, measured {gate['measured']:.2f}x"
        )
        print(f"[gate] parallel {gate['status']}: {detail}", flush=True)
    if gate["status"] == "failed":
        failures.append(
            f"parallel pipeline speedup {last_parallel:.2f}x is "
            f"below the {args.parallel_floor:.2f}x floor"
        )

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
