"""Table 6: top-2 ASes per metric in Japan.

Paper: NTT America 2914 tops both international metrics; NTT OCN 4713
and KDDI 2516 lead the national ones; GTT 3257 is CCI #2 with no
domestic presence — the same split our curated world produces.
"""

from conftest import run_case_study


def test_table06_japan(benchmark, paper2021, emit, name_of):
    result = paper2021
    rows = run_case_study(benchmark, result, "JP", emit, "table06_japan", name_of)
    by_asn = {row.asn: row for row in rows}

    # NTT America leads internationally (paper: CCI #1, AHI #1).
    assert by_asn[2914].cells["CCI"][0] == 1
    assert by_asn[2914].cells["AHI"][0] == 1
    # GTT has a top-3 international cone (paper: #2)…
    assert by_asn[3257].cells["CCI"][0] <= 3
    # …but no meaningful national standing (paper: CCN 123, AHN 236).
    assert (by_asn[3257].cells["AHN"][1] or 0.0) < 0.05
    # Domestic carriers top the national views (paper: KDDI #1).
    ccn = result.ranking("CCN", "JP")
    assert ccn.top_asns(1) == [2516]
    ahn = result.ranking("AHN", "JP")
    assert set(ahn.top_asns(3)) <= {2516, 4713, 17676, 9605}
    # NTT's domestic arm ranks top-3 nationally while its international
    # arm does not (the dual-AS division, §5.2).
    assert ahn.rank_of(4713) <= 3
    assert ahn.rank_of(2914) > 3
