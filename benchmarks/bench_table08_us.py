"""Table 8: top-2 ASes per metric in the United States.

Paper: Lumen 3356 first in every ranking except AHI, where liberally
peering Hurricane 6939 takes #1; AT&T ranks high nationally. Our world
keeps Lumen dominant with Hurricane at the top of AHI.
"""

from conftest import run_case_study


def test_table08_us(benchmark, paper2021, emit, name_of):
    result = paper2021
    rows = run_case_study(benchmark, result, "US", emit, "table08_us", name_of)

    # Lumen dominates cone metrics and national hegemony (paper).
    assert result.ranking("CCI", "US").top_asns(1) == [3356]
    assert result.ranking("CCN", "US").top_asns(1) == [3356]
    assert result.ranking("AHN", "US").top_asns(1) == [3356]
    # Hurricane's liberal peering pushes it to the top of AHI
    # (paper: #1 at 18 %; we accept top-3 — the Lumen/HE gap is ~3 %).
    ahi = result.ranking("AHI", "US")
    assert ahi.rank_of(6939) <= 3
    assert (ahi.share_of(6939) or 0) > 0.1
    # AT&T ranks high nationally (paper: AHN #2).
    assert result.ranking("AHN", "US").rank_of(7018) <= 5
    # The U.S. market is less concentrated: the AHN leader's share is
    # well below the other case studies' leaders (paper §5.4).
    us_lead = result.ranking("AHN", "US").entries[0].value
    au_lead = result.ranking("AHN", "AU").entries[0].value
    ru_lead = result.ranking("AHN", "RU").entries[0].value
    assert us_lead < au_lead and us_lead < ru_lead
