"""Table 2: national/international/global view composition.

The paper's Table 2 is definitional — which VPs and prefixes feed each
metric. We regenerate it as measured record counts per view for a case
study country, checking the two country views partition the country's
inbound records and that the global view subsumes both.
"""

from conftest import once


def test_table02_views(benchmark, paper2021, emit):
    result = paper2021

    def build_views():
        rows = []
        for country in ("AU", "JP", "RU", "US"):
            national = result.view("national", country)
            international = result.view("international", country)
            rows.append((country, len(national), len(international),
                         len(national.vps()), len(international.vps())))
        return rows

    rows = once(benchmark, build_views)
    global_view = result.view("global")
    lines = [f"{'country':<8}{'natl recs':>10}{'intl recs':>10}"
             f"{'natl VPs':>10}{'intl VPs':>10}"]
    for country, n_records, i_records, n_vps, i_vps in rows:
        lines.append(f"{country:<8}{n_records:>10}{i_records:>10}"
                     f"{n_vps:>10}{i_vps:>10}")
    lines.append(f"{'global':<8}{len(global_view):>10}{'':>10}"
                 f"{len(global_view.vps()):>10}")
    emit("table02_views", "\n".join(lines))

    for country, n_records, i_records, n_vps, i_vps in rows:
        to_country = sum(
            1 for r in result.paths.records if r.prefix_country == country
        )
        assert n_records + i_records == to_country
        assert i_vps > n_vps  # the world has more VPs than any country
