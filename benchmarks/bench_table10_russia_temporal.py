"""Table 10: Russia's CCI/AHI, April 2021 vs March 2023.

Paper: despite the invasion and carrier announcements, Russia's
dependence on foreign transit barely moved — GTT left the top-10,
Orange joined, Cogent rose, Lumen stayed #1.
"""

from conftest import once

from repro.analysis.temporal import compare_snapshots


def test_table10_russia_temporal(benchmark, paper2021, paper2023, emit, name_of):
    def build():
        return (
            compare_snapshots(paper2021, paper2023, "RU", "CCI",
                              before_label="20210401", after_label="20230301"),
            compare_snapshots(paper2021, paper2023, "RU", "AHI",
                              before_label="20210401", after_label="20230301"),
        )

    cone, hegemony = once(benchmark, build)
    lookup = name_of(paper2021)
    emit("table10_russia_temporal",
         cone.render(lookup) + "\n\n" + hegemony.render(lookup))

    # GTT drops out of the cone top-10; Orange enters (paper).
    assert 3257 in cone.departed()
    assert 5511 in cone.entered()
    # Lumen keeps the #1 cone in both snapshots (paper: rank 1 → 1).
    assert cone.rows[0].before_asn == 3356
    assert cone.rows[0].after_asn == 3356
    # Rostelecom keeps the #1 hegemony (paper: rank 1 → 1, +0.5 %).
    assert hegemony.rows[0].before_asn == 12389
    assert hegemony.rows[0].after_asn == 12389
    # Foreign transit dependence persists: the 2023 cone top-3 still
    # holds at least two non-Russian ASes.
    graph = paper2023.world.graph
    foreign_2023 = [
        row.after_asn for row in cone.rows[:3]
        if row.after_asn and graph.node(row.after_asn).registry_country != "RU"
    ]
    assert len(foreign_2023) >= 2
