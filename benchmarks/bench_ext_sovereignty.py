"""Extension: the inter-country dependency matrix (§1's sovereignty
question made a first-class metric).

Not a table in the paper, but the measurement its introduction
motivates: per destination country, the maximum AHI held by each
serving country's ASes. Asserts the §6 findings fall out of the matrix.
"""

from conftest import once

from repro.analysis.sovereignty import dependency_matrix, render_dependencies


def test_ext_sovereignty_matrix(benchmark, paper2021, emit):
    result = paper2021
    matrix = once(benchmark, lambda: dependency_matrix(result))

    interesting = ("TW", "KZ", "KG", "AU", "UA", "US")
    emit("ext_sovereignty", "\n\n".join(
        render_dependencies(matrix, code) for code in interesting
    ))

    # Taiwan: independent of China, served by the U.S. (§6.2).
    assert matrix.dependency("TW", "CN") < 0.05
    assert matrix.dependency("TW", "US") > 0.2
    # Central Asia leans on Russia; Ukraine does not (§6.1, Figure 7).
    assert matrix.dependency("KZ", "RU") > 0.5
    assert matrix.dependency("UA", "RU") < 0.1
    # The U.S. is nobody's dependent but everybody's dependency.
    us_dependents = matrix.dependents_of("US", threshold=0.1)
    assert len(us_dependents) >= 10
