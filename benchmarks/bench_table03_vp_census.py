"""Table 3: the five countries with the most located in-country VPs.

Paper: NL (141), GB (105), US (101), DE (73), BR (46) — the countries whose national views support systematic downsampling. Our worlds keep
the same leaders in the same order at a smaller scale.
"""

from conftest import once

from repro.analysis.vp_distribution import render_census, top_vp_countries


def test_table03_vp_census(benchmark, default_result, emit):
    rows = once(benchmark, lambda: top_vp_countries(default_result, k=5))
    emit("table03_vp_census", render_census(rows))

    codes = [row.country for row in rows]
    assert codes[0] == "NL"
    assert set(codes) >= {"NL", "US", "GB"}
    counts = [row.vp_ips for row in rows]
    assert counts == sorted(counts, reverse=True)
