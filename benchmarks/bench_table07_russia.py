"""Table 7: top-2 ASes per metric in Russia.

Paper: state-owned Rostelecom 12389 tops AHI and AHN; the CCI top is
all foreign multinationals (Lumen 97 %, Arelion 86 %); MTS 8359 only
surfaces near the top in AHN. Same structure here.
"""

from conftest import run_case_study


def test_table07_russia(benchmark, paper2021, emit, name_of):
    result = paper2021
    rows = run_case_study(benchmark, result, "RU", emit, "table07_russia", name_of)
    by_asn = {row.asn: row for row in rows}

    assert by_asn[12389].cells["AHI"][0] == 1
    assert by_asn[12389].cells["AHN"][0] == 1
    # Foreign multinationals top the international cone (paper: Lumen,
    # Arelion first two).
    cci = result.ranking("CCI", "RU")
    assert cci.top_asns(2) == [3356, 1299]
    graph = result.world.graph
    foreign = [
        asn for asn in cci.top_asns(3)
        if graph.node(asn).registry_country != "RU"
    ]
    assert len(foreign) >= 2
    # Domestic eyeball carriers surface in the national hegemony.
    ahn = result.ranking("AHN", "RU")
    assert ahn.rank_of(8359) <= 6
    assert ahn.rank_of(20485) <= 6
