"""Table 1: sanitization pipeline filtering categories and shares.

Paper (April 2021): 30.13 % rejected — 8.06 % unstable, 0.09 %
unallocated, 0.08 % loops, ~0 % poisoned, 20.98 % VP-unlocatable,
0.91 % prefix-unlocatable — 69.87 % accepted. Our substrate reproduces
every category with nonzero counts; the VP-unlocatable share is smaller
because our multi-hop collectors host proportionally fewer VPs.
"""

from conftest import once

from repro.bgp.rib import generate_rib_days
from repro.core.sanitize import sanitize


def test_table01_filtering(benchmark, paper2021, emit):
    result = paper2021

    def rerun_sanitizer():
        graph = result.world.graph
        return sanitize(
            result.ribs.records(),
            clique=graph.clique(),
            is_allocated=graph.asn_registry.is_allocated,
            route_servers=graph.route_servers(),
            vp_geo=result.vp_geo,
            prefix_geo=result.prefix_geo,
        )

    paths = once(benchmark, rerun_sanitizer)
    report = paths.report
    emit("table01_filtering", report.render())

    assert report.total == report.accepted + report.rejected_total()
    for category in ("unstable", "unallocated", "loop", "vp_no_location",
                     "covered", "prefix_no_location"):
        assert report.rejected[category] > 0, category
    # Shape: most announcements survive; unstable and VP-location are
    # the two largest rejection categories, as in the paper.
    assert report.accepted / report.total > 0.5
    ordered = sorted(report.rejected.items(), key=lambda kv: -kv[1])
    assert {ordered[0][0], ordered[1][0]} <= {
        "unstable", "vp_no_location", "covered"
    }
