"""The content-keyed artifact store behind ``repro-serve``.

An :class:`ArtifactStore` memoises ``rank_all``-style results per
``(world content, semantic config, metric, country)``. Two layers:

* an in-memory map of :class:`~repro.core.ranking.Ranking` objects —
  the warm path a long-lived daemon answers from;
* optionally, a :class:`repro.resilience.checkpoint.Checkpoint` file,
  so precomputed sweeps survive restarts: a store opened on the same
  path under the same key replays every banked ranking instead of
  recomputing it.

Key derivation — the cache-coherence invariant (DESIGN.md §9):

* the world contributes its :meth:`~repro.topology.world.World.fingerprint`
  — a digest of graph/countries/collectors *content*, never the
  catalog name. A regenerated ``name@seed`` world whose content
  changed therefore misses the store instead of serving stale
  rankings.
* the config contributes exactly the
  :data:`repro.resilience.checkpoint.SEMANTIC_KNOBS` — the knobs that
  shape ranking values. ``workers``, ``trace``, ``retry``, and
  ``faults`` are excluded: they never change output bytes, so a store
  warmed at ``workers=8`` serves a ``workers=1`` daemon and vice versa.

Units inside the store are :meth:`MetricSpec.unit_key` strings, the
same stable names ``repro-rank sweep --checkpoint`` banks under.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.ranking import Ranking
from repro.core.registry import MetricSpec
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.checkpoint import (
    Checkpoint,
    config_knobs,
    ranking_from_payload,
    ranking_to_payload,
)
from repro.topology.world import World


def store_key(world: World, config: object) -> str:
    """The artifact-store content key for one (world, config) pair.

    Keys on :meth:`World.fingerprint` (content, not name) plus the
    semantic config knobs; fan-out and telemetry knobs never appear.
    """
    return f"serve/world={world.fingerprint()}/{config_knobs(config)}"


class ArtifactStore:
    """A content-keyed ranking store with optional persistence.

    ``path=None`` keeps the store purely in-memory. With a path, the
    store is backed by the resilience :class:`Checkpoint` format:
    every :meth:`put` is appended (and fsynced) immediately, and a
    reopened store under the same key resumes every banked unit —
    ``persisted`` says how many. ``hits``/``misses`` mirror the
    ``serve.store.*`` counters.
    """

    def __init__(
        self,
        key: str,
        path: str | Path | None = None,
        tracer: AnyTracer = NULL_TRACER,
        resume: bool = True,
    ) -> None:
        self.key = key
        self._tracer = tracer
        self._memory: dict[str, Ranking] = {}
        self._checkpoint: Checkpoint | None = None
        self._resumed = 0
        if path is not None:
            self._checkpoint = Checkpoint.open(path, key, resume=resume)
            self._resumed = self._checkpoint.loaded
        self.hits = 0
        self.misses = 0

    @property
    def persisted(self) -> int:
        """How many banked units the backing checkpoint resumed from
        disk at open time (0 for an in-memory store)."""
        return self._resumed

    def get(self, spec: MetricSpec, country: str | None) -> Ranking | None:
        """The stored ranking for one unit, or ``None`` on a miss.

        Checks memory first, then the backing checkpoint (a disk hit
        is promoted into memory, so it deserializes once per process).
        """
        unit = spec.unit_key(country)
        ranking = self._memory.get(unit)
        if ranking is None and self._checkpoint is not None:
            payload = self._checkpoint.get(unit)
            if payload is not None:
                ranking = ranking_from_payload(payload)  # type: ignore[arg-type]
                self._memory[unit] = ranking
        if ranking is None:
            self.misses += 1
            self._tracer.metrics.counter("serve.store.misses").inc()
            return None
        self.hits += 1
        self._tracer.metrics.counter("serve.store.hits").inc()
        return ranking

    def put(self, spec: MetricSpec, country: str | None, ranking: Ranking) -> None:
        """Bank one computed ranking (idempotent: a unit already on
        disk is not appended twice)."""
        unit = spec.unit_key(country)
        self._memory[unit] = ranking
        if self._checkpoint is not None and self._checkpoint.get(unit) is None:
            self._checkpoint.put(unit, ranking_to_payload(ranking))

    def __len__(self) -> int:
        return len(self._memory)

    def close(self) -> None:
        if self._checkpoint is not None:
            self._checkpoint.close()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
