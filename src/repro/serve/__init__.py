"""Ranking-as-a-service: one world loaded once, queries answered warm.

The serving layer turns the batch pipeline into a long-lived daemon
(``repro-serve`` / ``repro-rank serve``) with three layers:

* :mod:`repro.serve.store` — the content-keyed :class:`ArtifactStore`
  memoising rankings per ``(world content, semantic config, metric,
  country)``, optionally persisted in the resilience checkpoint
  format so precomputed sweeps survive restarts;
* :mod:`repro.serve.service` — :class:`RankingService`, the pure
  application API over one :class:`~repro.core.pipeline.PipelineResult`
  (validation, store lookup, on-demand registry compute, ``serve.*``
  telemetry) — unit-testable without sockets;
* :mod:`repro.serve.http` — the thin stdlib
  :class:`~http.server.ThreadingHTTPServer` presentation
  (``/rank``, ``/report``, ``/case-study``, ``/healthz``).

Coherence invariant (DESIGN.md §9): the store keys on world *content*
(:meth:`~repro.topology.world.World.fingerprint`) and the semantic
config knobs only — a regenerated world with different content misses
the cache; fan-out/telemetry knobs never cause one.
"""

from repro.serve.http import RankingServer, ServeHandler
from repro.serve.service import QueryError, RankingService
from repro.serve.store import ArtifactStore, store_key

__all__ = [
    "ArtifactStore",
    "QueryError",
    "RankingServer",
    "RankingService",
    "ServeHandler",
    "store_key",
]
