"""The ``repro-serve`` entry point and the ``repro-rank serve``
subcommand runner.

Startup is the expensive part — build the world, run the pipeline once
— and every request after that is a store lookup or an incremental
registry compute. Validation follows the CLI-wide discipline: bad
input gets a one-line stderr message and exit status 2, never a
traceback (``tests/test_cli.py`` pins the cases).

Flags (plus the global ``--world/--seed/--workers``):

* ``--host`` / ``--port`` — bind address (``--port 0`` picks an
  ephemeral port and prints it, which the smoke tests rely on);
* ``--store PATH`` — persist the artifact store in the resilience
  checkpoint format; a restart under the same world/config resumes
  every banked ranking (``--no-resume`` starts cold);
* ``--precompute METRICS`` — bank a sweep before binding (``all`` =
  every registry metric), optionally narrowed by ``--countries``;
* ``--max-requests N`` — serve N requests then exit (smoke/bench);
* ``--trace`` — print the obs stage report (``serve.*`` stats) on
  shutdown.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.registry import maybe_spec, metric_names, normalize_country
from repro.obs.export import stage_report
from repro.obs.trace import Tracer
from repro.serve.http import RankingServer
from repro.serve.service import RankingService
from repro.serve.store import ArtifactStore, store_key
from repro.topology.catalog import WORLD_CHOICES, build_world

#: exit status for input-validation failures (argparse uses 2 as well)
EXIT_USAGE = 2

DEFAULT_PORT = 8732


def _fail(message: str, prog: str) -> int:
    print(f"{prog}: error: {message}", file=sys.stderr)
    return EXIT_USAGE


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The serve flags, shared by ``repro-rank serve`` and
    ``repro-serve``."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port; 0 picks an ephemeral one (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="persist computed rankings to PATH (checkpoint format); a "
             "restart under the same world/config serves them warm",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="ignore rankings already banked in --store",
    )
    parser.add_argument(
        "--precompute", default=None, metavar="METRICS",
        help="bank a sweep before binding: comma-separated metric names, "
             "or 'all' for every registry metric",
    )
    parser.add_argument(
        "--countries", default=None,
        help="comma-separated country codes to precompute (default: every "
             "country with a qualifying national view)",
    )
    parser.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="answer N requests then exit (for smoke tests and benchmarks)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the obs stage report (serve.* stats) on shutdown",
    )


def run_serve(args: argparse.Namespace, prog: str = "repro-serve") -> int:
    """Validate, build the world once, then serve until shutdown."""
    if not 0 <= args.port <= 65535:
        return _fail(f"--port must be in 0..65535 (got {args.port})", prog)
    if args.max_requests is not None and args.max_requests < 1:
        return _fail(
            f"--max-requests must be >= 1 (got {args.max_requests})", prog
        )
    if args.workers < 1:
        return _fail(f"--workers must be >= 1 (got {args.workers})", prog)
    if args.no_resume and args.store is None:
        return _fail("--no-resume requires --store", prog)
    metrics: tuple[str, ...] | None = None
    if args.precompute is not None and args.precompute != "all":
        names = [m for m in args.precompute.split(",") if m]
        if not names:
            return _fail("--precompute needs at least one metric name", prog)
        canonical = []
        for name in names:
            spec = maybe_spec(name)
            if spec is None:
                return _fail(
                    f"unknown metric {name!r} "
                    f"(valid: {', '.join(metric_names())})", prog,
                )
            canonical.append(spec.name)
        metrics = tuple(canonical)

    world = build_world(args.world, args.seed)
    countries: tuple[str, ...] | None = None
    if args.countries is not None:
        codes = [c for c in args.countries.split(",") if c]
        if not codes:
            return _fail("--countries needs at least one country code", prog)
        normalized = []
        for code in codes:
            upper = normalize_country(code)
            if upper not in world.countries:
                known = ", ".join(world.countries.codes())
                return _fail(
                    f"unknown country {code!r} for world {world.name!r} "
                    f"(valid: {known})", prog,
                )
            normalized.append(upper)
        countries = tuple(normalized)

    tracer = Tracer()
    result = run_pipeline(
        world, PipelineConfig(seed=args.seed, workers=args.workers), tracer
    )
    store = ArtifactStore(
        store_key(world, result.config),
        path=args.store,
        tracer=tracer,
        resume=not args.no_resume,
    )
    service = RankingService(result, store, tracer)
    if args.precompute is not None:
        banked = service.precompute(metrics, countries)
        print(f"{prog}: precomputed {banked} ranking(s) "
              f"({store.persisted} resumed from store)", file=sys.stderr)

    server = RankingServer(
        (args.host, args.port), service, max_requests=args.max_requests
    )
    print(
        f"{prog}: serving world={world.name} "
        f"fingerprint={service.fingerprint} "
        f"on http://{args.host}:{server.port}",
        file=sys.stderr, flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        store.close()
        result.close()
    if args.trace:
        print(stage_report(tracer, title="serve stage report"))
    tracer.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the standalone ``repro-serve`` script."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve country-level AS rankings over HTTP from one "
                    "loaded world",
    )
    parser.add_argument("--world", choices=WORLD_CHOICES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process fan-out for the startup pipeline run",
    )
    add_serve_arguments(parser)
    return run_serve(parser.parse_args(argv), prog="repro-serve")


if __name__ == "__main__":
    sys.exit(main())
