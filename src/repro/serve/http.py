"""The HTTP presentation over :class:`~repro.serve.service.RankingService`.

Deliberately thin: the handler parses the URL, picks a service method,
and turns the returned dict into a JSON body — every domain decision
(validation, store lookup, compute) lives one layer down where it is
unit-testable without sockets. Built on the stdlib
:class:`~http.server.ThreadingHTTPServer`; no third-party deps.

Routes (all ``GET``, all ``application/json``):

==============  ============================================  =======
path            query parameters                              status
==============  ============================================  =======
``/healthz``    —                                             200
``/rank``       ``metric`` (required), ``country``, ``k``     200
``/report``     ``country``                                   200
``/case-study`` ``country``                                   200
==============  ============================================  =======

A :class:`~repro.serve.service.QueryError` maps to 400 with an
``{"error": ...}`` body, an unknown path to 404, and any unexpected
failure to 500 — one bad request must never take the daemon down.
Response bodies are serialized with ``sort_keys=True`` so identical
queries yield byte-identical bodies across threads and restarts.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import QueryError, RankingService

ROUTES = ("/healthz", "/rank", "/report", "/case-study")


class RankingServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`RankingService`.

    ``max_requests`` (used by smoke tests and the load generator)
    shuts the server down after that many requests have been answered;
    ``None`` serves forever.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: RankingService,
        max_requests: int | None = None,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self._remaining = max_requests
        self._countdown = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (useful with ephemeral ``port=0``)."""
        return self.server_address[1]

    def request_served(self) -> None:
        """One response went out; shut down once the budget is spent.

        ``shutdown`` blocks until the accept loop exits, so it runs on
        a side thread rather than the handler's own.
        """
        if self._remaining is None:
            return
        with self._countdown:
            self._remaining -= 1
            exhausted = self._remaining <= 0
        if exhausted:
            threading.Thread(target=self.shutdown, daemon=True).start()


class ServeHandler(BaseHTTPRequestHandler):
    """Parses one request, dispatches to the service, writes JSON."""

    server: RankingServer
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            payload = self._dispatch(url.path, params)
            status = 200
        except QueryError as error:
            payload = {"error": str(error)}
            status = 400
        except Exception as error:  # repro: noqa[R006] — one failing request must not kill the daemon; the error is surfaced to the client as a 500 body instead
            payload = {"error": f"{type(error).__name__}: {error}"}
            status = 500
        if payload is None:
            payload = {
                "error": f"unknown path {url.path!r}",
                "routes": list(ROUTES),
            }
            status = 404
        self._send(status, payload)
        self.server.request_served()

    # -- routing -------------------------------------------------------------

    def _dispatch(
        self, path: str, params: Mapping[str, list[str]]
    ) -> dict | None:
        """The service call for one path, or ``None`` for a 404."""
        service = self.server.service
        if path == "/healthz":
            return service.health()
        if path == "/rank":
            metric = self._one(params, "metric")
            if metric is None:
                raise QueryError("missing required parameter 'metric'")
            return service.rank(
                metric,
                self._one(params, "country"),
                k=self._int(params, "k", default=10),
            )
        if path == "/report":
            return service.report(self._one(params, "country"))
        if path == "/case-study":
            return service.case_study(self._one(params, "country"))
        return None

    @staticmethod
    def _one(params: Mapping[str, list[str]], name: str) -> str | None:
        values = params.get(name)
        if not values:
            return None
        if len(values) > 1:
            raise QueryError(f"parameter {name!r} given more than once")
        return values[0]

    def _int(
        self, params: Mapping[str, list[str]], name: str, default: int
    ) -> int:
        raw = self._one(params, name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise QueryError(
                f"parameter {name!r} must be an integer (got {raw!r})"
            ) from None

    # -- plumbing ------------------------------------------------------------

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log; request telemetry
        flows through the service's obs counters instead."""
