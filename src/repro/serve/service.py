"""The serving application layer: queries over one loaded world.

:class:`RankingService` is the pure API beneath the HTTP presentation
(:mod:`repro.serve.http`): plain methods taking query arguments and
returning JSON-safe dicts, unit-testable without sockets. The layering
mirrors the domain/application/presentation split the serving ROADMAP
item calls for — the service owns validation, store lookup, on-demand
compute, and telemetry; the HTTP handler owns nothing but parsing and
status codes.

Contract (pinned by ``tests/serve/``):

* the ``text`` field of a :meth:`rank` response is **byte-identical**
  to ``repro-rank rank METRIC COUNTRY`` output for every registered
  metric — whether it was computed on demand or served from the store
  (:func:`~repro.resilience.checkpoint.ranking_to_payload` is
  value-exact, so a round-tripped ranking renders the same bytes);
* a store hit answers without touching the pipeline: no propagation,
  no view construction, no metric math (``serve.store.hits``
  increments, ``PipelineResult`` memos stay cold);
* responses are deterministic under concurrency: N threads issuing
  the same query receive identical bodies (one lock serialises
  compute; the store makes the repeats cheap).

Telemetry (all under the obs layer, observe-only):
``serve.requests`` / ``serve.computed`` / ``serve.errors`` counters,
``serve.store.hits`` / ``serve.store.misses`` from the store, and a
``serve.latency_ms`` histogram fed from the request span's duration —
the clock stays inside :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.analysis.case_studies import case_study_table, render_case_study
from repro.analysis.reports import country_report
from repro.core.pipeline import PipelineResult
from repro.core.registry import (
    MetricSpec,
    get_spec,
    maybe_spec,
    metric_names,
    normalize_country,
)
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.serve.store import ArtifactStore


class QueryError(ValueError):
    """An invalid query: HTTP 400 at the presentation layer, exit 2
    at the CLI."""


class RankingService:
    """Answers ranking/report/case-study queries over one pipeline run.

    The service never recomputes the world: the
    :class:`~repro.core.pipeline.PipelineResult` is loaded once (at
    daemon startup) and every query is a store lookup first, an
    on-demand registry-dispatched compute on miss. Repeated queries
    share the result's path index and cross-metric
    :class:`~repro.perf.cache.ViewComputation` caches, so even misses
    amortise across metrics on the same view.
    """

    def __init__(
        self,
        result: PipelineResult,
        store: ArtifactStore,
        tracer: AnyTracer = NULL_TRACER,
    ) -> None:
        self.result = result
        self.store = store
        self.fingerprint = result.world.fingerprint()
        self._tracer = tracer
        self._lock = threading.Lock()
        self.requests = 0

    # -- queries -------------------------------------------------------------

    def rank(
        self, metric: str, country: str | None = None, k: int = 10
    ) -> dict:
        """One metric's top-k, store-first.

        ``source`` in the response says where the ranking came from:
        ``"store"`` (warm hit) or ``"computed"`` (miss, computed
        through the registry and banked).
        """
        with self._lock:
            return self._observed(
                "rank", lambda: self._rank(metric, country, k)
            )

    def report(self, country: str | None) -> dict:
        """The full markdown country profile."""
        with self._lock:
            return self._observed("report", lambda: self._report(country))

    def case_study(self, country: str | None) -> dict:
        """The Table-5-style four-metric case-study table."""
        with self._lock:
            return self._observed(
                "case-study", lambda: self._case_study(country)
            )

    def health(self) -> dict:
        """Liveness plus store/world identity (cheap: no compute)."""
        with self._lock:
            return self._observed("healthz", self._health)

    def precompute(
        self,
        metrics: tuple[str, ...] | list[str] | None = None,
        countries: tuple[str, ...] | list[str] | None = None,
    ) -> int:
        """Bank a full sweep into the store (the warm-start path a
        daemon runs before binding). Returns the number of units
        banked. Counters are untouched — precompute is provisioning,
        not traffic."""
        with self._lock:
            rankings = self.result.rank_all(metrics, countries)
            for (metric, country), ranking in rankings.items():
                self.store.put(get_spec(metric), country, ranking)
            return len(rankings)

    # -- internals -----------------------------------------------------------

    def _observed(self, endpoint: str, thunk: Callable[[], dict]) -> dict:
        """Run one query under the request span/counters; the latency
        histogram is fed from the span's own duration so the service
        never reads a clock itself."""
        tracer = self._tracer
        self.requests += 1
        tracer.metrics.counter("serve.requests").inc()
        tracer.metrics.counter(f"serve.requests.{endpoint}").inc()
        try:
            with tracer.span("serve.request", endpoint=endpoint):
                payload = thunk()
        except QueryError:
            tracer.metrics.counter("serve.errors").inc()
            raise
        if tracer.enabled:
            tracer.metrics.histogram("serve.latency_ms").observe(
                tracer.spans[-1].dur_s * 1000.0
            )
        return payload

    def _rank(self, metric: str, country: str | None, k: int) -> dict:
        spec = self._spec(metric)
        code = self._metric_country(spec, country)
        if k < 1:
            raise QueryError(f"k must be >= 1 (got {k})")
        ranking = self.store.get(spec, code)
        source = "store"
        if ranking is None:
            ranking = self.result.ranking(spec.name, code)
            self.store.put(spec, code, ranking)
            source = "computed"
            self._tracer.metrics.counter("serve.computed").inc()
        return {
            "metric": spec.name,
            "country": code,
            "k": k,
            "source": source,
            "label": spec.label_for(code),
            "entries": [
                {
                    "rank": entry.rank,
                    "asn": entry.asn,
                    "value": entry.value,
                    "share": entry.share,
                    "name": self.result.as_name(entry.asn),
                }
                for entry in ranking.top(k)
            ],
            "text": ranking.render(k, self.result.as_name),
        }

    def _report(self, country: str | None) -> dict:
        code = self._known_country(country)
        return {
            "country": code,
            "markdown": country_report(self.result, code).markdown,
        }

    def _case_study(self, country: str | None) -> dict:
        code = self._known_country(country)
        rows = case_study_table(self.result, code)
        return {
            "country": code,
            "rows": [
                {
                    "asn": row.asn,
                    "name": row.name,
                    "registry_country": row.registry_country,
                    "ccg_rank": row.ccg_rank,
                    "cells": {
                        metric: [rank, share]
                        for metric, (rank, share) in row.cells.items()
                    },
                }
                for row in rows
            ],
            "text": render_case_study(rows, code),
        }

    def _health(self) -> dict:
        return {
            "status": "ok",
            "world": self.result.world.name,
            "fingerprint": self.fingerprint,
            "records": len(self.result.paths.records),
            "metrics": list(metric_names()),
            "requests": self.requests,
            "store": {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "entries": len(self.store),
                "persisted": self.store.persisted,
            },
        }

    # -- validation ----------------------------------------------------------

    def _spec(self, metric: str) -> MetricSpec:
        spec = maybe_spec(metric)
        if spec is None:
            raise QueryError(
                f"unknown metric {metric!r} "
                f"(valid: {', '.join(metric_names())})"
            )
        return spec

    def _metric_country(
        self, spec: MetricSpec, country: str | None
    ) -> str | None:
        if not spec.needs_country:
            return None
        if country is None:
            raise QueryError(f"metric {spec.name} requires a country code")
        return self._known_country(country)

    def _known_country(self, country: str | None) -> str:
        if country is None:
            raise QueryError("this query requires a country code")
        code = normalize_country(country)
        world = self.result.world
        if code not in world.countries:
            raise QueryError(
                f"unknown country {country!r} for world {world.name!r} "
                f"(valid: {', '.join(world.countries.codes())})"
            )
        return code
