"""Fault tolerance for the pipeline: injection, retry, checkpoint,
quarantine.

The layer has four pieces, all deterministic by construction:

* :class:`FaultPlan` — seeded, replayable fault injection (worker
  kills, chunk stalls, dump-line corruption, mid-sweep crashes), wired
  behind ``PipelineConfig(faults=...)`` and ``make faults``;
* :class:`RetryPolicy` / :func:`resilient_map` — per-chunk timeouts,
  bounded deterministic retries, ``BrokenProcessPool`` recovery, and a
  serial fallback wrapped around the process fan-out
  (:mod:`repro.perf.parallel`);
* :class:`Checkpoint` — content-keyed, append-only persistence of
  completed sweep/trial units, the engine behind
  ``repro-rank sweep --resume``;
* :class:`Quarantine` — the malformed-line sink behind
  ``load_rib(strict=False)``.

Failure-equivalence invariant (DESIGN.md §6): for any finite fault
plan, the surviving output — retried chunks, resumed sweeps,
quarantine-filtered ingestion — is byte-identical to what the
fault-free run produces over the same surviving input.
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointError,
    config_knobs,
    ranking_from_payload,
    ranking_to_payload,
    sweep_key,
    trials_key,
)
from repro.resilience.faults import FaultPlan, InjectedCrash, InjectedFault
from repro.resilience.quarantine import Quarantine, QuarantinedLine
from repro.resilience.retry import (
    DEFAULT_POLICY,
    ChunkFailedError,
    RetryPolicy,
    resilient_map,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "ChunkFailedError",
    "DEFAULT_POLICY",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "Quarantine",
    "QuarantinedLine",
    "RetryPolicy",
    "config_knobs",
    "ranking_from_payload",
    "ranking_to_payload",
    "resilient_map",
    "sweep_key",
    "trials_key",
]
