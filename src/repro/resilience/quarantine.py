"""Quarantine sink for malformed ingestion input.

Production BGP pipelines cannot afford to abort a day's ingestion over
one mangled RIB line; they divert it, count it, and keep going. The
:class:`Quarantine` sink captures each diverted line with its source,
line number, and a stable reason code, so a run's quarantine report is
deterministic (same input, same faults ⇒ same lines, same reasons) and
auditable after the fact.

Wired into :func:`repro.io.mrt.load_rib` behind ``strict=False``;
``strict=True`` (the default) keeps the fail-fast
:class:`~repro.io.mrt.MrtFormatError` behavior.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: how much of a malformed raw line the sink keeps
RAW_SNIPPET_CHARS = 160


@dataclass(frozen=True, slots=True)
class QuarantinedLine:
    """One diverted input line."""

    source: str
    line_no: int
    #: stable machine-readable code (``invalid-json``, ``bad-entry``,
    #: ``corrupt-stream``, ``missing-trailer``, ``trailer-mismatch``)
    reason: str
    #: human-readable detail for the report
    detail: str
    #: leading snippet of the offending raw line
    raw: str


class Quarantine:
    """Collects diverted lines and per-reason counts."""

    __slots__ = ("lines", "_by_reason")

    def __init__(self) -> None:
        self.lines: list[QuarantinedLine] = []
        self._by_reason: dict[str, int] = {}

    def add(
        self, source: str, line_no: int, reason: str, detail: str, raw: str = ""
    ) -> None:
        """Divert one line."""
        self.lines.append(QuarantinedLine(
            source=source, line_no=line_no, reason=reason, detail=detail,
            raw=raw[:RAW_SNIPPET_CHARS],
        ))
        self._by_reason[reason] = self._by_reason.get(reason, 0) + 1

    def __len__(self) -> int:
        return len(self.lines)

    def by_reason(self) -> dict[str, int]:
        """Counts per reason code, keyed in sorted order."""
        return {reason: self._by_reason[reason] for reason in sorted(self._by_reason)}

    def render(self) -> str:
        """A printable per-reason summary."""
        if not self.lines:
            return "quarantine: empty"
        rows = [f"quarantine: {len(self.lines)} line(s)"]
        rows.extend(
            f"  {reason:>18}: {count}"
            for reason, count in self.by_reason().items()
        )
        return "\n".join(rows)

    def write_jsonl(self, path: str | Path) -> Path:
        """Persist the full quarantine (one JSON object per line)."""
        path = Path(path)
        with open(path, "wt", encoding="utf-8") as handle:
            for line in self.lines:
                handle.write(json.dumps({
                    "source": line.source,
                    "line_no": line.line_no,
                    "reason": line.reason,
                    "detail": line.detail,
                    "raw": line.raw,
                }, sort_keys=True) + "\n")
        return path
