"""Deterministic fault injection for the pipeline's failure paths.

A :class:`FaultPlan` decides, as a pure function of ``(seed, stage,
chunk index, attempt)``, whether a fan-out work unit fails, stalls, or
— on the ingestion path — whether a dump line is corrupted. Two runs
with the same plan inject exactly the same faults, so every failure
scenario the test suite (and ``make faults``) exercises is replayable.

Fault kinds:

* ``"raise"`` — the worker raises :class:`InjectedFault`, the soft
  failure a real chunk hits when its input is bad;
* ``"exit"``  — the worker process dies via ``os._exit``, which the
  parent observes as a ``BrokenProcessPool`` (a killed worker, the hard
  failure mode of OOM kills and segfaults).

Stalls (``delay_chunks``/``delay_s``) only fire on a unit's *first*
attempt, so a per-chunk timeout plus one retry always completes — the
scenario the timeout tests pin down. Failures fire on the first
``attempts`` attempts of a chosen unit and then stop, so bounded
retries always converge on the fault-free result.

Nothing here reads a clock or an unseeded RNG: choice is driven by a
CRC-based integer mix of the plan's seed and the unit's coordinates.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """A soft worker failure injected by a :class:`FaultPlan`."""


class InjectedCrash(RuntimeError):
    """An injected mid-sweep process crash (checkpoint/resume tests)."""


#: exit status an ``"exit"``-kind fault kills the worker with
KILLED_EXIT_CODE = 113


def _mix(seed: int, stage: str, index: int, attempt: int = 0) -> int:
    """Deterministic 32-bit mix of a work unit's coordinates."""
    value = zlib.crc32(f"{seed}:{stage}:{index}:{attempt}".encode())
    value ^= value >> 16
    value = (value * 2654435761) & 0xFFFFFFFF
    return value ^ (value >> 13)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable set of faults to inject.

    The default plan injects nothing; tests and ``make faults`` build
    plans targeting specific stages/chunks or sampling by rate.
    """

    seed: int = 0
    #: probability any (stage, chunk) unit is chosen to fail
    fail_rate: float = 0.0
    #: explicit (stage, chunk index) units that always fail
    fail_chunks: frozenset = field(default_factory=frozenset)
    #: how a chosen unit fails: "raise" (InjectedFault) or "exit"
    #: (``os._exit`` — observed as BrokenProcessPool by the parent)
    kind: str = "raise"
    #: a chosen unit fails on its first N attempts, then succeeds
    attempts: int = 1
    #: (stage, chunk index) units stalled for ``delay_s`` on attempt 0
    delay_chunks: frozenset = field(default_factory=frozenset)
    delay_s: float = 0.0
    #: probability an ingested dump line is corrupted (quarantine path)
    corrupt_rate: float = 0.0
    #: raise InjectedCrash after this many newly-computed sweep units
    crash_after_units: int | None = None
    #: restrict worker faults to these stages (None = every stage)
    stages: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "exit"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError(f"fail_rate out of range: {self.fail_rate}")
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError(f"corrupt_rate out of range: {self.corrupt_rate}")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be >= 0")
        if self.crash_after_units is not None and self.crash_after_units < 1:
            raise ValueError("crash_after_units must be >= 1")

    # -- worker-side faults ---------------------------------------------------

    def in_stage(self, stage: str) -> bool:
        """Whether worker faults apply to this stage."""
        return self.stages is None or stage in self.stages

    def chosen(self, stage: str, index: int) -> bool:
        """Whether a (stage, chunk) unit is selected for failure."""
        if not self.in_stage(stage):
            return False
        if (stage, index) in self.fail_chunks:
            return True
        if self.fail_rate <= 0.0:
            return False
        return _mix(self.seed, stage, index) / 2**32 < self.fail_rate

    def fails(self, stage: str, index: int, attempt: int) -> bool:
        """Whether this attempt of a unit fails (first ``attempts``
        attempts of a chosen unit do, later ones succeed)."""
        return attempt < self.attempts and self.chosen(stage, index)

    def stall_s(self, stage: str, index: int, attempt: int) -> float:
        """Injected stall for this attempt (attempt 0 only)."""
        if attempt > 0 or not self.in_stage(stage):
            return 0.0
        if (stage, index) in self.delay_chunks:
            return self.delay_s
        return 0.0

    def apply(self, stage: str, index: int, attempt: int) -> None:
        """Inject this unit's faults; called inside the worker before
        the chunk's real work."""
        stall = self.stall_s(stage, index, attempt)
        if stall > 0.0:
            time.sleep(stall)
        if self.fails(stage, index, attempt):
            if self.kind == "exit":
                os._exit(KILLED_EXIT_CODE)
            raise InjectedFault(
                f"injected fault: stage={stage} chunk={index} attempt={attempt}"
            )

    # -- ingestion-side faults ------------------------------------------------

    def corrupts_line(self, line_no: int) -> bool:
        """Whether the ``line_no``-th dump line is corrupted."""
        if self.corrupt_rate <= 0.0:
            return False
        return _mix(self.seed, "ingest", line_no) / 2**32 < self.corrupt_rate

    def corrupt(self, line: str) -> str:
        """Deterministically mangle one dump line (truncate mid-token
        and splice in garbage — reliably invalid JSON)."""
        cut = max(1, len(line) // 2)
        return line[:cut] + '#!corrupt{"'

    # -- sweep crash ----------------------------------------------------------

    def crashes_after(self, computed_units: int) -> bool:
        """Whether the sweep crashes once ``computed_units`` units have
        been newly computed (checkpoint/resume scenario)."""
        return (
            self.crash_after_units is not None
            and computed_units >= self.crash_after_units
        )
