"""Retry/timeout/recovery wrapper around the process fan-out.

:func:`resilient_map` is the fault-tolerant counterpart of
``ProcessPoolExecutor.map`` used by the two heavy fan-outs
(:mod:`repro.perf.parallel`). Per chunk it provides:

* a wall-clock **timeout** at the collection point (a hung worker
  fires ``resilience.timeout`` instead of blocking forever);
* **bounded retries** with deterministic exponential backoff (no
  jitter — same plan, same schedule);
* **pool recovery** — a ``BrokenProcessPool`` (killed worker) or a
  timeout abandons the poisoned pool, respawns a fresh one, and
  replays only the chunks without results;
* a **serial fallback** — a chunk that exhausts its pool attempts runs
  in-process (fault injection never applies there), so a finite fault
  plan can never change the final output.

Determinism contract: results are keyed by chunk index and merged in
input order, and workers are pure functions of their payload, so the
output is byte-identical to the fault-free run no matter which
attempt produced each chunk. Everything observable lands in the
``resilience.*`` counters and the ``resilience.map`` span.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.faults import FaultPlan, InjectedFault

if TYPE_CHECKING:  # imported lazily to avoid a repro.perf import cycle
    from repro.perf.pool import WorkerPool

P = TypeVar("P")
R = TypeVar("R")


class ChunkFailedError(RuntimeError):
    """A chunk exhausted its attempts and serial fallback was off."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounds on how hard the fan-out fights for each chunk."""

    #: pool attempts per chunk before the serial fallback kicks in
    max_attempts: int = 3
    #: per-chunk wall-clock wait at the collection point (None = wait
    #: forever, the pre-resilience behavior)
    timeout_s: float | None = None
    #: deterministic exponential backoff before retry attempts:
    #: ``base * 2**(attempt-1)`` seconds, capped — 0 disables sleeping
    backoff_base_s: float = 0.0
    backoff_cap_s: float = 1.0
    #: run exhausted chunks in-process instead of failing the stage
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive")
        if self.backoff_base_s < 0.0 or self.backoff_cap_s < 0.0:
            raise ValueError("backoff must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Seconds to pause before pool attempt ``attempt`` (0-based);
        the first attempt never waits."""
        if attempt <= 0 or self.backoff_base_s <= 0.0:
            return 0.0
        return min(self.backoff_base_s * 2 ** (attempt - 1), self.backoff_cap_s)


#: the policy every fan-out gets unless the config overrides it
DEFAULT_POLICY = RetryPolicy()


def _run_guarded(
    worker: Callable[[P], R],
    stage: str,
    index: int,
    attempt: int,
    faults: FaultPlan | None,
    payload: P,
) -> R:
    """Worker-side entry: inject this unit's faults, then do the work
    (top-level for pickling)."""
    if faults is not None:
        faults.apply(stage, index, attempt)
    return worker(payload)


def _abandon(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly poisoned) pool down without waiting on hung
    workers: terminate its processes, then shut down non-blocking."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def resilient_map(
    stage: str,
    worker: Callable[[P], R],
    payloads: Sequence[P],
    workers: int,
    policy: RetryPolicy | None = None,
    tracer: AnyTracer = NULL_TRACER,
    faults: FaultPlan | None = None,
    pool: "WorkerPool | None" = None,
) -> list[R]:
    """Map ``worker`` over ``payloads`` on a process pool, riding out
    worker deaths, hangs, and chunk exceptions.

    Returns results in payload order. Raises :class:`ChunkFailedError`
    (or the chunk's own exception) only when a chunk exhausts
    ``policy.max_attempts`` and ``policy.serial_fallback`` is off.

    ``pool`` (a :class:`repro.perf.pool.WorkerPool`) lends a persistent
    executor instead of creating one per call. The failure contract is
    identical — a poisoned executor is handed back through
    ``pool.invalidate()`` (terminated, never reused) and the pool
    serves a fresh one for the replay; the pool itself stays usable
    after this call returns.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if policy is None:
        policy = DEFAULT_POLICY
    metrics = tracer.metrics
    total = len(payloads)
    results: dict[int, R] = {}
    attempts = [0] * total
    retries = timeouts = respawns = fallbacks = 0
    with tracer.span(
        "resilience.map", stage=stage, chunks=total, workers=workers,
    ) as span:
        if pool is not None:
            executor = pool.executor()
        else:
            executor = ProcessPoolExecutor(
                max_workers=min(workers, max(total, 1))
            )
        try:
            pending = list(range(total))
            while pending:
                eligible = [
                    i for i in pending if attempts[i] < policy.max_attempts
                ]
                for index in pending:
                    if index in results or attempts[index] < policy.max_attempts:
                        continue
                    # out of pool attempts: finish the chunk in-process
                    # (never fault-injected), or give up loudly
                    if not policy.serial_fallback:
                        raise ChunkFailedError(
                            f"stage {stage!r} chunk {index} failed after "
                            f"{attempts[index]} attempts"
                        )
                    fallbacks += 1
                    metrics.counter("resilience.serial_fallback").inc()
                    results[index] = worker(payloads[index])
                futures: dict[int, Future[R]] = {}
                for index in eligible:
                    pause = policy.backoff_s(attempts[index])
                    if pause > 0.0:
                        time.sleep(pause)
                    if attempts[index] > 0:
                        retries += 1
                        metrics.counter("resilience.retry").inc()
                    futures[index] = executor.submit(
                        _run_guarded, worker, stage, index,
                        attempts[index], faults, payloads[index],
                    )
                    attempts[index] += 1
                broken = False
                for index in sorted(futures):
                    try:
                        results[index] = futures[index].result(
                            timeout=policy.timeout_s
                        )
                    except TimeoutError:
                        # the worker is hung; the pool slot is poisoned
                        timeouts += 1
                        metrics.counter("resilience.timeout").inc()
                        broken = True
                    except BrokenProcessPool:
                        # a worker died (kill/OOM/segfault); every
                        # outstanding future on this pool is lost
                        metrics.counter("resilience.pool_break").inc()
                        broken = True
                    except InjectedFault:
                        metrics.counter("resilience.injected_fault").inc()
                    except Exception:
                        # a real chunk error: retried like any other
                        # failure, re-raised once retries cannot help
                        if (
                            attempts[index] >= policy.max_attempts
                            and not policy.serial_fallback
                        ):
                            raise
                        metrics.counter("resilience.chunk_error").inc()
                if broken:
                    respawns += 1
                    metrics.counter("resilience.pool_respawn").inc()
                    if pool is not None:
                        pool.invalidate()
                        executor = pool.executor()
                    else:
                        _abandon(executor)
                        executor = ProcessPoolExecutor(
                            max_workers=min(workers, max(total, 1))
                        )
                pending = [i for i in range(total) if i not in results]
        finally:
            if pool is None:
                _abandon(executor)
        span.set(
            retries=retries, timeouts=timeouts,
            respawns=respawns, fallbacks=fallbacks,
        )
    return [results[index] for index in range(total)]
