"""Content-keyed checkpoints for resumable sweeps.

A :class:`Checkpoint` is an append-only JSONL file recording completed
work units under a *content key* — a fingerprint of everything that
determines the output (world, semantic config knobs, request). Resume
only replays units recorded under the *same* key; a stale file from a
different world/config/request is discarded wholesale, so a resumed
run can never mix incompatible results.

Equivalence guarantee: units are serialized value-exactly (floats
round-trip through JSON via ``repr``, which Python guarantees is
lossless), and the consumer recomputes anything not found — so a run
resumed from any prefix of a crashed run produces byte-identical
output to an uninterrupted run. ``tests/resilience/test_checkpoint.py``
pins this down.

File format (one JSON object per line)::

    {"type": "header", "format": "repro-checkpoint", "version": 1,
     "key": "..."}
    {"type": "unit", "unit": "ranking:AHN:AU", "payload": {...}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Mapping

from repro.core.ranking import RankEntry, Ranking

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """Raised for an unreadable or incompatible checkpoint file."""


class Checkpoint:
    """An append-only store of completed work units.

    Open with :meth:`open`; read units back with :meth:`get`; record
    new ones with :meth:`put` (appended and flushed immediately, so a
    crash loses at most the unit in flight).
    """

    def __init__(self, path: str | Path, key: str) -> None:
        self.path = Path(path)
        self.key = key
        self._done: dict[str, object] = {}
        self._handle: IO[str] | None = None

    @classmethod
    def open(cls, path: str | Path, key: str, resume: bool = True) -> "Checkpoint":
        """Open a checkpoint for ``key``.

        ``resume=True`` loads every unit previously recorded under the
        same key; a missing file, a foreign key, or a corrupt file
        starts fresh (the file is truncated on the first ``put``).
        ``resume=False`` always starts fresh.
        """
        checkpoint = cls(path, key)
        if resume:
            checkpoint._load()
        return checkpoint

    @property
    def loaded(self) -> int:
        """How many units resume recovered from disk."""
        return len(self._done)

    def get(self, unit: str) -> object | None:
        """The recorded payload for a unit, or ``None``."""
        return self._done.get(unit)

    def put(self, unit: str, payload: object) -> None:
        """Record one completed unit (appended and flushed)."""
        handle = self._ensure_handle()
        handle.write(json.dumps({
            "type": "unit", "unit": unit, "payload": payload,
        }, sort_keys=True) + "\n")
        handle.flush()
        self._done[unit] = payload

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            with open(self.path, "rt", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                if (
                    not isinstance(header, dict)
                    or header.get("format") != FORMAT_NAME
                    or header.get("version") != FORMAT_VERSION
                    or header.get("key") != self.key
                ):
                    return  # foreign or stale checkpoint: start fresh
                for line in handle:
                    entry = json.loads(line)
                    if entry.get("type") == "unit":
                        self._done[entry["unit"]] = entry["payload"]
        except (OSError, ValueError, KeyError):
            # unreadable or torn file (e.g. a crash mid-write): the
            # recoverable prefix was already banked line-by-line above,
            # and anything unparsed is simply recomputed
            return

    def _ensure_handle(self) -> IO[str]:
        if self._handle is None:
            fresh = not self._done
            self._handle = open(
                self.path, "wt" if fresh else "at", encoding="utf-8"
            )
            if fresh:
                self._handle.write(json.dumps({
                    "type": "header", "format": FORMAT_NAME,
                    "version": FORMAT_VERSION, "key": self.key,
                }, sort_keys=True) + "\n")
                self._handle.flush()
        return self._handle


# -- content keys -------------------------------------------------------------


def sweep_key(
    world_name: str,
    config: object,
    metrics: tuple[str, ...] | list[str],
    countries: tuple[str, ...] | list[str] | None,
) -> str:
    """The content key for a ``rank_all`` sweep: world + every config
    knob that shapes ranking values + the request itself. Telemetry,
    worker-count, and resilience knobs are deliberately excluded — they
    never change outputs."""
    semantic = (
        "rib", "geo_noise_rate", "geo_miss_rate", "geo_threshold", "trim",
        "use_inferred_relationships", "tiebreak", "path_diversity",
        "family", "seed",
    )
    knobs = ";".join(
        f"{name}={getattr(config, name)!r}"
        for name in semantic if hasattr(config, name)
    )
    wanted = ",".join(metrics)
    where = ",".join(countries) if countries is not None else "<auto>"
    return f"sweep/world={world_name}/{knobs}/metrics={wanted}/countries={where}"


def trials_key(
    world_name: str,
    config: object,
    metric: str,
    country: str | None,
    sizes: list[int],
    trials: int,
    seed: int,
    k: int,
) -> str:
    """The content key for a stability-trial sweep."""
    base = sweep_key(world_name, config, [metric], [country or "<global>"])
    grid = ",".join(str(size) for size in sizes)
    return f"trials/{base}/sizes={grid}/trials={trials}/rng={seed}/k={k}"


# -- ranking (de)serialization ------------------------------------------------


def ranking_to_payload(ranking: Ranking) -> dict:
    """A JSON-safe, value-exact encoding of one ranking."""
    return {
        "metric": ranking.metric,
        "country": ranking.country,
        "entries": [
            [entry.rank, entry.asn, entry.value, entry.share]
            for entry in ranking.entries
        ],
    }


def ranking_from_payload(payload: Mapping) -> Ranking:
    """Rebuild a ranking recorded by :func:`ranking_to_payload`."""
    try:
        entries = [
            RankEntry(rank=rank, asn=asn, value=value, share=share)
            for rank, asn, value, share in payload["entries"]
        ]
        return Ranking(payload["metric"], entries, payload["country"])
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed ranking payload: {error}") from error
