"""Content-keyed checkpoints for resumable sweeps.

A :class:`Checkpoint` is an append-only JSONL file recording completed
work units under a *content key* — a fingerprint of everything that
determines the output (world, semantic config knobs, request). Resume
only replays units recorded under the *same* key; a stale file from a
different world/config/request is discarded wholesale, so a resumed
run can never mix incompatible results.

Equivalence guarantee: units are serialized value-exactly (floats
round-trip through JSON via ``repr``, which Python guarantees is
lossless), and the consumer recomputes anything not found — so a run
resumed from any prefix of a crashed run produces byte-identical
output to an uninterrupted run. ``tests/resilience/test_checkpoint.py``
pins this down.

File format (one JSON object per line)::

    {"type": "header", "format": "repro-checkpoint", "version": 1,
     "key": "..."}
    {"type": "unit", "unit": "ranking:AHN:AU", "payload": {...}}
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import IO, Mapping

from repro.core.ranking import RankEntry, Ranking

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """Raised for an unreadable or incompatible checkpoint file."""


class Checkpoint:
    """An append-only store of completed work units.

    Open with :meth:`open`; read units back with :meth:`get`; record
    new ones with :meth:`put` (appended and flushed immediately, so a
    crash loses at most the unit in flight).
    """

    def __init__(self, path: str | Path, key: str) -> None:
        self.path = Path(path)
        self.key = key
        self._done: dict[str, object] = {}
        self._handle: IO[str] | None = None

    @classmethod
    def open(cls, path: str | Path, key: str, resume: bool = True) -> "Checkpoint":
        """Open a checkpoint for ``key``.

        ``resume=True`` loads every unit previously recorded under the
        same key; a missing file, a foreign key, or a corrupt file
        starts fresh (the file is truncated on the first ``put``).
        ``resume=False`` always starts fresh.
        """
        checkpoint = cls(path, key)
        if resume:
            checkpoint._load()
        return checkpoint

    @property
    def loaded(self) -> int:
        """How many units resume recovered from disk."""
        return len(self._done)

    def get(self, unit: str) -> object | None:
        """The recorded payload for a unit, or ``None``."""
        return self._done.get(unit)

    def put(self, unit: str, payload: object) -> None:
        """Record one completed unit (appended, flushed, and fsynced —
        a crash loses at most the unit in flight, and :meth:`_load`
        truncates any torn trailing line that write leaves behind)."""
        handle = self._ensure_handle()
        handle.write(json.dumps({
            "type": "unit", "unit": unit, "payload": payload,
        }, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self._done[unit] = payload

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _load(self) -> None:
        """Load every unit recorded under this key, tolerating a torn
        trailing line.

        A crash mid-append leaves a final line with no terminating
        newline (possibly partial JSON). That tail is *dropped and the
        file truncated* to the last complete line before any append —
        otherwise the next :meth:`put` would concatenate onto the torn
        fragment and corrupt two records at once. The recoverable
        newline-terminated prefix is kept, so resume still replays
        every fully-banked unit; the unit in flight is simply
        recomputed. Corruption *before* the final line is not a
        crash-append signature, so the whole file is distrusted and
        resume starts fresh.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        if not raw:
            return
        body, _, torn = raw.rpartition(b"\n")  # torn == b"" for a clean file
        entries: list[object] = []
        for line in body.split(b"\n") if body else []:
            try:
                entries.append(json.loads(line))
            except ValueError:
                return  # mid-file corruption: distrust the whole file
        header = entries[0] if entries else None
        if (
            isinstance(header, dict)
            and header.get("format") == FORMAT_NAME
            and header.get("version") == FORMAT_VERSION
            and header.get("key") == self.key
        ):
            for entry in entries[1:]:
                if isinstance(entry, dict) and entry.get("type") == "unit":
                    self._done[entry["unit"]] = entry.get("payload")
        if torn:
            warnings.warn(
                f"checkpoint {self.path}: dropped a torn trailing line "
                f"({len(torn)} bytes, crash mid-append?) — "
                f"{len(self._done)} banked unit(s) kept, the unit in "
                "flight will be recomputed",
                RuntimeWarning,
                stacklevel=3,
            )
            try:
                with open(self.path, "r+b") as handle:
                    handle.truncate(len(body) + 1 if body else 0)
                    os.fsync(handle.fileno())
            except OSError:
                # cannot repair in place: appending would corrupt, so
                # distrust the file and start fresh (first put rewrites)
                self._done.clear()

    def _ensure_handle(self) -> IO[str]:
        if self._handle is None:
            fresh = not self._done
            self._handle = open(
                self.path, "wt" if fresh else "at", encoding="utf-8"
            )
            if fresh:
                self._handle.write(json.dumps({
                    "type": "header", "format": FORMAT_NAME,
                    "version": FORMAT_VERSION, "key": self.key,
                }, sort_keys=True) + "\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
        return self._handle


# -- content keys -------------------------------------------------------------

#: Config attributes that shape ranking *values*. Telemetry, fan-out
#: (``workers``), and resilience knobs are deliberately excluded — they
#: never change output bytes. Shared by every content key (sweep,
#: trials, and the serving layer's artifact store).
SEMANTIC_KNOBS = (
    "rib", "geo_noise_rate", "geo_miss_rate", "geo_threshold", "trim",
    "use_inferred_relationships", "tiebreak", "path_diversity",
    "family", "seed",
)


def config_knobs(config: object) -> str:
    """The semantic-knob fragment of a content key (value-exact:
    floats go through ``repr``)."""
    return ";".join(
        f"{name}={getattr(config, name)!r}"
        for name in SEMANTIC_KNOBS if hasattr(config, name)
    )


def sweep_key(
    world_name: str,
    config: object,
    metrics: tuple[str, ...] | list[str],
    countries: tuple[str, ...] | list[str] | None,
) -> str:
    """The content key for a ``rank_all`` sweep: world + every config
    knob that shapes ranking values + the request itself."""
    knobs = config_knobs(config)
    wanted = ",".join(metrics)
    where = ",".join(countries) if countries is not None else "<auto>"
    return f"sweep/world={world_name}/{knobs}/metrics={wanted}/countries={where}"


def trials_key(
    world_name: str,
    config: object,
    metric: str,
    country: str | None,
    sizes: list[int],
    trials: int,
    seed: int,
    k: int,
) -> str:
    """The content key for a stability-trial sweep."""
    base = sweep_key(world_name, config, [metric], [country or "<global>"])
    grid = ",".join(str(size) for size in sizes)
    return f"trials/{base}/sizes={grid}/trials={trials}/rng={seed}/k={k}"


# -- ranking (de)serialization ------------------------------------------------


def ranking_to_payload(ranking: Ranking) -> dict:
    """A JSON-safe, value-exact encoding of one ranking."""
    return {
        "metric": ranking.metric,
        "country": ranking.country,
        "entries": [
            [entry.rank, entry.asn, entry.value, entry.share]
            for entry in ranking.entries
        ],
    }


def ranking_from_payload(payload: Mapping) -> Ranking:
    """Rebuild a ranking recorded by :func:`ranking_to_payload`."""
    try:
        entries = [
            RankEntry(rank=rank, asn=asn, value=value, share=share)
            for rank, asn, value, share in payload["entries"]
        ]
        return Ranking(payload["metric"], entries, payload["country"])
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed ranking payload: {error}") from error
