"""Command-line interface: ``repro-rank``.

Subcommands mirror the paper's workflow:

* ``world``       — build a world and print its summary sizes;
* ``rank``        — compute one metric's top-k for a country;
* ``filter``      — print the Table-1 sanitization report;
* ``case-study``  — print a Table-5-style four-metric table;
* ``census``      — print the in-country VP census (Tables 3–4);
* ``stability``   — NDCG vs VP-count downsampling (Figures 4–5);
* ``dominance``   — continental AHI dominance (Table 12);
* ``sovereignty`` — one country's foreign-carrier dependence;
* ``report``      — full markdown country profile;
* ``disconnect``  — what-if removal of ASes or a whole country's ASes;
* ``concentration`` — HHI market concentration per country;
* ``release``     — write the reproducibility dataset to a directory;
* ``replay``      — recompute a ranking from a released paths.jsonl
  (no world needed: relationships are inferred from the paths);
* ``trace``       — run the pipeline under the observability layer and
  print the Figure-6-style stage report (``--json`` for JSONL trace
  events, ``--prom`` for a Prometheus text exposition);
* ``lint``        — run the repro-lint static analyzer (determinism /
  purity / metric-correctness rules R001–R008) against the baseline;
  ``--trace`` appends the obs stage report with the ``lint.*`` metrics;
* ``serve``       — load the world once and answer ``/rank`` /
  ``/report`` / ``/case-study`` / ``/healthz`` over HTTP, warm queries
  served from the content-keyed artifact store (also installed as the
  standalone ``repro-serve`` script; see :mod:`repro.serve.cli`);
* ``sweep``       — batch rankings: every requested metric × country in
  one pass through the shared path index and cross-metric caches
  (Tables 9–12 style output at scale);
* ``watch``       — monitor an ordered snapshot stream (world names,
  released ``paths.jsonl`` files, directories, or globs) for rank
  drift: Kendall-τ / NDCG / top-k churn per transition, emitted as a
  deterministic JSONL event stream (``--json``), a Prometheus
  exposition (``--prom``), or a human-readable drift summary.

``--workers N`` (global flag) fans route propagation and stability
trials out across N processes; results are identical for any N.

Worlds: ``small`` (seconds), ``default`` (the generated ~1000-AS world),
``paper2021`` / ``paper2023`` (the curated case-study snapshots).

Unknown metrics and country codes are validated up front against the
metric registry (:mod:`repro.core.registry`) and the selected world's
country registry; the CLI prints a one-line error to stderr and exits
with status 2 instead of surfacing a traceback or empty output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.case_studies import case_study_table, render_case_study
from repro.analysis.concentration import country_concentrations, render_concentrations
from repro.analysis.regions import continental_dominance, render_dominance_table
from repro.analysis.reports import country_report
from repro.analysis.resilience import ases_registered_in, disconnection_impact
from repro.analysis.sovereignty import dependency_matrix, render_dependencies
from repro.analysis.stability import international_stability, national_stability
from repro.analysis.vp_distribution import render_census, vp_census
from repro.core.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.core.registry import (
    get_spec,
    maybe_spec,
    metric_names,
    normalize_country,
)
from repro.io.export import release_dataset
from repro.io.replay import ReplaySession
from repro.lint import Baseline, LintConfig, run_lint
from repro.lint.cli import DEFAULT_BASELINE
from repro.lint.report import (
    emit_metrics,
    render_json,
    render_sarif,
    render_text,
)
from repro.obs.export import stage_report, to_jsonl, to_prometheus
from repro.obs.trace import Tracer
from repro.topology.catalog import WORLD_CHOICES, build_world
from repro.topology.world import World

#: exit status for input-validation failures (argparse uses 2 as well)
EXIT_USAGE = 2


def _fail(message: str) -> int:
    """Print a one-line error and return the usage exit status."""
    print(f"repro-rank: error: {message}", file=sys.stderr)
    return EXIT_USAGE


def _bad_metric(metric: str) -> str:
    return (
        f"unknown metric {metric!r} (valid: {', '.join(metric_names())})"
    )


def _bad_country(world: World, code: str) -> str:
    known = ", ".join(world.countries.codes())
    return f"unknown country {code!r} for world {world.name!r} (valid: {known})"


def _normalize_metric(metric: str) -> str | None:
    """The canonical registered metric name, or ``None`` when unknown."""
    spec = maybe_spec(metric)
    return spec.name if spec is not None else None


def _normalize_country(world: World, code: str) -> str | None:
    """The canonical country code, or ``None`` when not in the world."""
    upper = normalize_country(code)
    return upper if upper in world.countries else None


def best_traced_country(result: PipelineResult) -> str:
    """The country whose rankings the ``trace`` subcommand computes:
    the one with the most in-country VPs (ties break alphabetically),
    falling back to the first destination country seen."""
    census = result.vp_geo.census()
    if census:
        return min(census, key=lambda code: (-census[code], code))
    countries = result.paths.countries()
    return countries[0] if countries else "US"


def run_traced(
    world_kind: str = "small",
    seed: int = 0,
    country: str | None = None,
    capture_memory: bool = False,
    world: World | None = None,
    store_backend: str = "memory",
    spill_dir: str | None = None,
) -> tuple[PipelineResult, Tracer]:
    """Run the full pipeline under a tracer, then compute one ranking
    per metric family (cone, hegemony, AHC, CTI) so the trace covers
    every Figure-6 stage. Shared by ``repro-rank trace`` and the
    benchmark harness (which persists the trace as the perf baseline).
    """
    if world is None:
        world = build_world(world_kind, seed)
    tracer = Tracer(capture_memory=capture_memory)
    result = run_pipeline(
        world,
        PipelineConfig(
            seed=seed, trace=True, store_backend=store_backend,
            spill_dir=spill_dir,
        ),
        tracer,
    )
    code = country or best_traced_country(result)
    for metric in ("CCI", "AHN", "AHC", "CTI"):
        result.ranking(metric, code)
    return result, tracer


def _run_watch(args: argparse.Namespace) -> int:
    """The ``watch`` subcommand: validate, stream, emit."""
    from repro.monitor import (
        WatchConfig,
        WatchError,
        render_watch,
        resolve_snapshots,
        watch,
        watch_key,
    )

    metric_list = [m for m in args.metrics.split(",") if m.strip()]
    if not metric_list:
        return _fail("--metrics needs at least one metric name")
    canonical = [_normalize_metric(m) for m in metric_list]
    for name, norm in zip(metric_list, canonical):
        if norm is None:
            return _fail(_bad_metric(name))
    countries: tuple[str, ...] | None = None
    if args.countries is not None:
        codes = [c.strip() for c in args.countries.split(",") if c.strip()]
        if not codes:
            return _fail("--countries needs at least one country code")
        for code in codes:
            if len(code) != 2 or not code.isalpha():
                return _fail(
                    f"country {code!r} is not a two-letter country code"
                )
        countries = tuple(normalize_country(code) for code in codes)
    if args.resume and args.checkpoint is None:
        return _fail("--resume requires --checkpoint")
    if args.workers < 1:
        return _fail(f"--workers must be >= 1 (got {args.workers})")
    try:
        config = WatchConfig(
            metrics=tuple(canonical),
            countries=countries,
            top=args.top,
            tau_threshold=args.tau_threshold,
            ndcg_threshold=args.ndcg_threshold,
            seed=args.seed,
            workers=args.workers,
        )
        refs = resolve_snapshots(args.snapshots)
    except WatchError as error:
        return _fail(str(error))
    checkpoint = None
    if args.checkpoint is not None:
        from repro.resilience.checkpoint import Checkpoint

        checkpoint = Checkpoint.open(
            args.checkpoint,
            watch_key([ref.label for ref in refs], config),
            resume=args.resume,
        )
    tracer = Tracer()
    try:
        run = watch(refs, config, tracer=tracer, checkpoint=checkpoint)
    except WatchError as error:
        return _fail(str(error))
    finally:
        if checkpoint is not None:
            checkpoint.close()
    if args.json:
        print(run.jsonl())
    elif args.prom:
        print(to_prometheus(tracer.metrics))
    else:
        print(render_watch(run))
    if args.trace:
        print(stage_report(tracer, title="watch stage report"))
    tracer.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point (also exposed as the ``repro-rank`` script)."""
    parser = argparse.ArgumentParser(
        prog="repro-rank",
        description="Country-level AS rankings over a simulated BGP substrate",
    )
    parser.add_argument("--world", choices=WORLD_CHOICES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process fan-out for propagation and stability trials "
             "(results are identical for any value)",
    )
    parser.add_argument(
        "--store", choices=("memory", "mmap"), default="memory",
        help="path-store backend: 'mmap' spills sanitized records to "
             "disk and maps them read-only, bounding peak RSS "
             "(rankings are byte-identical either way)",
    )
    parser.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="spill directory for --store mmap (default: a temporary "
             "directory, removed when the run finishes; a named "
             "directory persists and lets an interrupted ingestion "
             "resume)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("world", help="print world summary")

    rank = sub.add_parser("rank", help="print a ranking")
    rank.add_argument("metric", help="/".join(metric_names()))
    rank.add_argument("country", nargs="?", help="two-letter code")
    rank.add_argument("-k", type=int, default=10)

    sub.add_parser("filter", help="print the Table-1 filter report")

    case = sub.add_parser("case-study", help="print a Table-5-style table")
    case.add_argument("country")

    sub.add_parser("census", help="print the VP census")

    stability = sub.add_parser("stability", help="downsampling NDCG curve")
    stability.add_argument("country")
    stability.add_argument("metric", nargs="?", default="AHN")
    stability.add_argument("--trials", type=int, default=8)

    sweep = sub.add_parser(
        "sweep", help="batch rankings: every metric × country in one pass"
    )
    sweep.add_argument(
        "--metrics", default="CCI,CCN,AHI,AHN",
        help="comma-separated metric list (default: the paper's four)",
    )
    sweep.add_argument(
        "--countries", default=None,
        help="comma-separated country codes (default: every country "
             "with a qualifying national view)",
    )
    sweep.add_argument("-k", type=int, default=5, help="entries per table")
    sweep.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist each completed ranking to PATH as it finishes",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip rankings already banked in --checkpoint "
             "(the resumed output is identical to an uninterrupted run)",
    )

    sub.add_parser("dominance", help="continental AHI dominance table")

    sovereignty = sub.add_parser(
        "sovereignty", help="a country's foreign-carrier dependence"
    )
    sovereignty.add_argument("country")

    report = sub.add_parser("report", help="full markdown country profile")
    report.add_argument("country")

    disconnect = sub.add_parser(
        "disconnect", help="what-if: remove ASes (ASNs or a country code)"
    )
    disconnect.add_argument("target", help="comma-separated ASNs, or a country code")

    conc = sub.add_parser("concentration", help="HHI per country")
    conc.add_argument("countries", nargs="?", default="US,AU,JP,RU")
    conc.add_argument("--metric", default="AHN")

    release = sub.add_parser("release", help="export the dataset")
    release.add_argument("directory")
    release.add_argument("--countries", default="AU,JP,RU,US")

    replay = sub.add_parser("replay", help="recompute from released paths")
    replay.add_argument("paths_file")
    replay.add_argument("metric")
    replay.add_argument("country", nargs="?")
    replay.add_argument("-k", type=int, default=10)

    trace = sub.add_parser(
        "trace", help="run the pipeline traced and print the stage report"
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the JSONL trace events"
    )
    trace.add_argument(
        "--prom", action="store_true",
        help="emit a Prometheus-style text exposition of the metrics",
    )
    trace.add_argument(
        "--country", help="country for the ranking stages (default: best VP coverage)"
    )
    trace.add_argument(
        "--memory", action="store_true",
        help="also capture tracemalloc peak memory per stage",
    )

    watch = sub.add_parser(
        "watch", help="monitor a snapshot stream for rank drift"
    )
    watch.add_argument(
        "snapshots", nargs="+",
        help="ordered snapshot specs: a world name (optionally name@SEED), "
             "a released paths.jsonl, a directory of them, or a glob",
    )
    watch.add_argument(
        "--metrics", default="CCI,AHI",
        help="comma-separated metric list to monitor (default: CCI,AHI)",
    )
    watch.add_argument(
        "--countries", default=None,
        help="comma-separated country codes (default: resolved from the "
             "first snapshot)",
    )
    watch.add_argument(
        "--top", type=int, default=10, help="churn window (default: 10)"
    )
    watch.add_argument(
        "--tau-threshold", type=float, default=0.8,
        help="alert when full-ranking Kendall-tau falls below this",
    )
    watch.add_argument(
        "--ndcg-threshold", type=float, default=0.9,
        help="alert when NDCG@top falls below this",
    )
    watch.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist snapshot metadata and rankings to PATH as they finish",
    )
    watch.add_argument(
        "--resume", action="store_true",
        help="skip work already banked in --checkpoint (the resumed event "
             "stream is byte-identical to an uninterrupted run)",
    )
    watch.add_argument(
        "--json", action="store_true", help="emit the JSONL event stream"
    )
    watch.add_argument(
        "--prom", action="store_true",
        help="emit a Prometheus-style text exposition of the monitor metrics",
    )
    watch.add_argument(
        "--trace", action="store_true",
        help="append the obs stage report with the monitor.* metrics",
    )

    serve = sub.add_parser(
        "serve", help="serve rankings over HTTP from one loaded world"
    )
    from repro.serve.cli import add_serve_arguments, run_serve

    add_serve_arguments(serve)

    lint = sub.add_parser(
        "lint", help="run the repro-lint static analyzer (rules R001-R012, "
                     "including the whole-program tier)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument("--json", action="store_true", help="JSON report")
    lint.add_argument(
        "--sarif", action="store_true",
        help="SARIF 2.1.0 report (for CI annotation tooling)",
    )
    lint.add_argument(
        "--trace", action="store_true",
        help="append the obs stage report with the lint.* metrics",
    )

    args = parser.parse_args(argv)

    # -- flag sanity (before any file or pipeline work) ----------------------
    if getattr(args, "k", None) is not None and args.k < 1:
        return _fail(f"-k must be >= 1 (got {args.k})")
    if args.command == "stability" and args.trials < 1:
        return _fail(f"--trials must be >= 1 (got {args.trials})")

    if args.command == "replay":
        spec = maybe_spec(args.metric)
        if spec is None:
            return _fail(_bad_metric(args.metric))
        if not spec.replayable:
            return _fail(
                f"metric {spec.name} cannot be replayed from released paths"
            )
        session = ReplaySession.from_file(args.paths_file)
        country = normalize_country(args.country)
        if country is not None:
            known = session.paths.countries()
            if country not in known:
                return _fail(
                    f"unknown country {args.country!r} in "
                    f"{args.paths_file} (valid: {', '.join(known)})"
                )
        if spec.needs_country and country is None:
            return _fail(f"metric {spec.name} requires a country code")
        print(session.ranking(spec.name, country).render(args.k))
        return 0

    if args.command == "watch":
        return _run_watch(args)

    if args.command == "serve":
        return run_serve(args, prog="repro-rank")

    if args.command == "lint":
        baseline = (
            Baseline.load(DEFAULT_BASELINE)
            if Path(DEFAULT_BASELINE).is_file() else None
        )
        tracer = Tracer()
        result = run_lint(args.paths, LintConfig(baseline=baseline), tracer)
        emit_metrics(result, tracer.metrics)
        if args.sarif:
            print(render_sarif(result))
        else:
            print(render_json(result) if args.json else render_text(result))
        if args.trace:
            print(stage_report(tracer, title="lint stage report"))
        return 0 if result.ok() else 1

    world = build_world(args.world, args.seed)

    # -- input validation (before the expensive pipeline run) ---------------
    metric_arg = getattr(args, "metric", None)
    if args.command in ("rank", "stability", "concentration") and metric_arg:
        metric = _normalize_metric(metric_arg)
        if metric is None:
            return _fail(_bad_metric(metric_arg))
        args.metric = metric
        if (
            args.command == "stability"
            and get_spec(metric).family not in ("cone", "hegemony")
        ):
            return _fail(
                f"metric {metric} is not supported by stability analysis "
                "(needs a cone or hegemony metric)"
            )
    country_arg = getattr(args, "country", None)
    if args.command in (
        "case-study", "stability", "sovereignty", "report",
    ) or (args.command in ("rank", "trace") and country_arg):
        if country_arg is None:
            return _fail("this command requires a country code")
        country = _normalize_country(world, country_arg)
        if country is None:
            return _fail(_bad_country(world, country_arg))
        args.country = country
    if args.command == "rank":
        if get_spec(args.metric).needs_country and args.country is None:
            return _fail(f"metric {args.metric} requires a country code")
    if args.workers < 1:
        return _fail(f"--workers must be >= 1 (got {args.workers})")
    if (
        args.command in ("concentration", "sweep", "release")
        and args.countries is not None
    ):
        codes = [c for c in args.countries.split(",") if c]
        if not codes:
            return _fail("--countries needs at least one country code")
        normalized = [_normalize_country(world, code) for code in codes]
        for code, norm in zip(codes, normalized):
            if norm is None:
                return _fail(_bad_country(world, code))
        args.countries = ",".join(normalized)
    if args.command == "sweep":
        metrics = [m for m in args.metrics.split(",") if m]
        if not metrics:
            return _fail("--metrics needs at least one metric name")
        normalized_metrics = [_normalize_metric(m) for m in metrics]
        for name, norm in zip(metrics, normalized_metrics):
            if norm is None:
                return _fail(_bad_metric(name))
        args.metrics = ",".join(normalized_metrics)
        if args.resume and args.checkpoint is None:
            return _fail("--resume requires --checkpoint")
    if args.command == "disconnect" and args.target.isalpha():
        if len(args.target) != 2 or _normalize_country(world, args.target) is None:
            return _fail(_bad_country(world, args.target))
    if args.command == "disconnect" and not args.target.isalpha():
        try:
            [int(a) for a in args.target.split(",")]
        except ValueError:
            return _fail(
                f"target {args.target!r} is neither a country code nor a "
                "comma-separated ASN list"
            )

    if args.command == "world":
        for key, value in world.summary().items():
            print(f"{key:>12}: {value}")
        return 0

    if args.command == "trace":
        _, tracer = run_traced(
            args.world, args.seed, args.country,
            capture_memory=args.memory, world=world,
            store_backend=args.store, spill_dir=args.spill_dir,
        )
        if args.json:
            print(to_jsonl(tracer))
        elif args.prom:
            print(to_prometheus(tracer.metrics))
        else:
            print(stage_report(
                tracer,
                title=f"pipeline stage report (world={args.world}, seed={args.seed})",
            ))
        tracer.close()
        return 0

    result = run_pipeline(
        world,
        PipelineConfig(
            seed=args.seed, workers=args.workers,
            store_backend=args.store, spill_dir=args.spill_dir,
        ),
    )
    if args.command == "rank":
        ranking = result.ranking(args.metric, args.country)
        print(ranking.render(args.k, result.as_name))
    elif args.command == "sweep":
        metrics = tuple(args.metrics.split(","))
        countries = (
            tuple(args.countries.split(",")) if args.countries else None
        )
        checkpoint = None
        if args.checkpoint is not None:
            from repro.resilience.checkpoint import Checkpoint, sweep_key

            checkpoint = Checkpoint.open(
                args.checkpoint,
                sweep_key(world.name, result.config, metrics, countries),
                resume=args.resume,
            )
        try:
            rankings = result.rank_all(metrics, countries, checkpoint=checkpoint)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        if not rankings:
            print("(no qualifying countries — pass --countries)")
        for ranking in rankings.values():
            print(ranking.render(args.k, result.as_name))
            print()
    elif args.command == "filter":
        print(result.paths.report.render())
    elif args.command == "case-study":
        rows = case_study_table(result, args.country)
        print(render_case_study(rows, args.country))
    elif args.command == "census":
        print(render_census(vp_census(result)))
    elif args.command == "stability":
        metric = args.metric  # already canonical (validated above)
        runner = (
            national_stability
            if get_spec(metric).view_kind == "national"
            else international_stability
        )
        curve = runner(
            result, args.country, metric, trials=args.trials,
            workers=args.workers,
        )
        for size, mean, std in curve.as_rows():
            print(f"{size:>5} VPs  NDCG {mean:.3f} ±{std:.3f}")
        print(f">=0.8 from {curve.min_vps_for(0.8)} VPs, "
              f">=0.9 from {curve.min_vps_for(0.9)} VPs")
    elif args.command == "dominance":
        print(render_dominance_table(continental_dominance(result), result))
    elif args.command == "sovereignty":
        matrix = dependency_matrix(result)
        print(render_dependencies(matrix, args.country))
    elif args.command == "report":
        print(country_report(result, args.country).markdown)
    elif args.command == "disconnect":
        if args.target.isalpha() and len(args.target) == 2:
            removal = ases_registered_in(result.world, normalize_country(args.target))
        else:
            removal = frozenset(int(a) for a in args.target.split(","))
        impact = disconnection_impact(result.world, removal)
        print(impact.render())
        stranded = impact.stranded_countries()
        if stranded:
            print("stranded (>50% lost):", ", ".join(stranded))
    elif args.command == "concentration":
        codes = tuple(c for c in args.countries.split(",") if c)
        print(render_concentrations(
            country_concentrations(result, codes, args.metric)
        ))
    elif args.command == "release":
        countries = [c for c in args.countries.split(",") if c]
        written = release_dataset(result, args.directory, countries)
        for key, path in written.items():
            print(f"{key:>14}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
