"""Command-line interface: ``repro-rank``.

Subcommands mirror the paper's workflow:

* ``world``       — build a world and print its summary sizes;
* ``rank``        — compute one metric's top-k for a country;
* ``filter``      — print the Table-1 sanitization report;
* ``case-study``  — print a Table-5-style four-metric table;
* ``census``      — print the in-country VP census (Tables 3–4);
* ``stability``   — NDCG vs VP-count downsampling (Figures 4–5);
* ``dominance``   — continental AHI dominance (Table 12);
* ``sovereignty`` — one country's foreign-carrier dependence;
* ``report``      — full markdown country profile;
* ``disconnect``  — what-if removal of ASes or a whole country's ASes;
* ``concentration`` — HHI market concentration per country;
* ``release``     — write the reproducibility dataset to a directory;
* ``replay``      — recompute a ranking from a released paths.jsonl
  (no world needed: relationships are inferred from the paths).

Worlds: ``small`` (seconds), ``default`` (the generated ~1000-AS world),
``paper2021`` / ``paper2023`` (the curated case-study snapshots).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.case_studies import case_study_table, render_case_study
from repro.analysis.concentration import country_concentrations, render_concentrations
from repro.analysis.regions import continental_dominance, render_dominance_table
from repro.analysis.reports import country_report
from repro.analysis.resilience import ases_registered_in, disconnection_impact
from repro.analysis.sovereignty import dependency_matrix, render_dependencies
from repro.analysis.stability import international_stability, national_stability
from repro.analysis.vp_distribution import render_census, vp_census
from repro.core.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.io.export import release_dataset
from repro.io.replay import ReplaySession
from repro.topology.generator import GeneratorConfig, generate_world
from repro.topology.paper_world import (
    SNAPSHOT_2021,
    SNAPSHOT_2023,
    build_paper_world,
)
from repro.topology.profiles import small_profiles
from repro.topology.world import World

WORLD_CHOICES = ("small", "default", "paper2021", "paper2023")


def build_world(kind: str, seed: int) -> World:
    """Materialize one of the named worlds."""
    if kind == "small":
        config = GeneratorConfig(
            profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
        )
        return generate_world(config, seed=seed, name="small")
    if kind == "default":
        return generate_world(seed=seed, name="default")
    if kind == "paper2021":
        return build_paper_world(SNAPSHOT_2021)
    if kind == "paper2023":
        return build_paper_world(SNAPSHOT_2023)
    raise ValueError(f"unknown world {kind!r}")


def _run(kind: str, seed: int) -> PipelineResult:
    return run_pipeline(build_world(kind, seed), PipelineConfig(seed=seed))


def main(argv: list[str] | None = None) -> int:
    """Entry point (also exposed as the ``repro-rank`` script)."""
    parser = argparse.ArgumentParser(
        prog="repro-rank",
        description="Country-level AS rankings over a simulated BGP substrate",
    )
    parser.add_argument("--world", choices=WORLD_CHOICES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("world", help="print world summary")

    rank = sub.add_parser("rank", help="print a ranking")
    rank.add_argument("metric", help="CCI/CCN/AHI/AHN/AHC/CTI/CCG/AHG")
    rank.add_argument("country", nargs="?", help="two-letter code")
    rank.add_argument("-k", type=int, default=10)

    sub.add_parser("filter", help="print the Table-1 filter report")

    case = sub.add_parser("case-study", help="print a Table-5-style table")
    case.add_argument("country")

    sub.add_parser("census", help="print the VP census")

    stability = sub.add_parser("stability", help="downsampling NDCG curve")
    stability.add_argument("country")
    stability.add_argument("metric", nargs="?", default="AHN")
    stability.add_argument("--trials", type=int, default=8)

    sub.add_parser("dominance", help="continental AHI dominance table")

    sovereignty = sub.add_parser(
        "sovereignty", help="a country's foreign-carrier dependence"
    )
    sovereignty.add_argument("country")

    report = sub.add_parser("report", help="full markdown country profile")
    report.add_argument("country")

    disconnect = sub.add_parser(
        "disconnect", help="what-if: remove ASes (ASNs or a country code)"
    )
    disconnect.add_argument("target", help="comma-separated ASNs, or a country code")

    conc = sub.add_parser("concentration", help="HHI per country")
    conc.add_argument("countries", nargs="?", default="US,AU,JP,RU")
    conc.add_argument("--metric", default="AHN")

    release = sub.add_parser("release", help="export the dataset")
    release.add_argument("directory")
    release.add_argument("--countries", default="AU,JP,RU,US")

    replay = sub.add_parser("replay", help="recompute from released paths")
    replay.add_argument("paths_file")
    replay.add_argument("metric")
    replay.add_argument("country", nargs="?")
    replay.add_argument("-k", type=int, default=10)

    args = parser.parse_args(argv)

    if args.command == "replay":
        session = ReplaySession.from_file(args.paths_file)
        print(session.ranking(args.metric, args.country).render(args.k))
        return 0

    if args.command == "world":
        world = build_world(args.world, args.seed)
        for key, value in world.summary().items():
            print(f"{key:>12}: {value}")
        return 0

    result = _run(args.world, args.seed)
    if args.command == "rank":
        ranking = result.ranking(args.metric, args.country)
        print(ranking.render(args.k, result.as_name))
    elif args.command == "filter":
        print(result.paths.report.render())
    elif args.command == "case-study":
        rows = case_study_table(result, args.country)
        print(render_case_study(rows, args.country))
    elif args.command == "census":
        print(render_census(vp_census(result)))
    elif args.command == "stability":
        metric = args.metric.upper()
        runner = (
            national_stability if metric.endswith("N") else international_stability
        )
        curve = runner(result, args.country, metric, trials=args.trials)
        for size, mean, std in curve.as_rows():
            print(f"{size:>5} VPs  NDCG {mean:.3f} ±{std:.3f}")
        print(f">=0.8 from {curve.min_vps_for(0.8)} VPs, "
              f">=0.9 from {curve.min_vps_for(0.9)} VPs")
    elif args.command == "dominance":
        print(render_dominance_table(continental_dominance(result), result))
    elif args.command == "sovereignty":
        matrix = dependency_matrix(result)
        print(render_dependencies(matrix, args.country))
    elif args.command == "report":
        print(country_report(result, args.country).markdown)
    elif args.command == "disconnect":
        if args.target.isalpha() and len(args.target) == 2:
            removal = ases_registered_in(result.world, args.target.upper())
        else:
            removal = frozenset(int(a) for a in args.target.split(","))
        impact = disconnection_impact(result.world, removal)
        print(impact.render())
        stranded = impact.stranded_countries()
        if stranded:
            print("stranded (>50% lost):", ", ".join(stranded))
    elif args.command == "concentration":
        codes = tuple(c for c in args.countries.split(",") if c)
        print(render_concentrations(
            country_concentrations(result, codes, args.metric)
        ))
    elif args.command == "release":
        countries = [c for c in args.countries.split(",") if c]
        written = release_dataset(result, args.directory, countries)
        for key, path in written.items():
            print(f"{key:>14}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
