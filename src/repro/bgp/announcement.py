"""BGP announcement records as consumed by the sanitization pipeline.

The paper's unit of input is one (VP, prefix, AS path) observation from
one daily RIB (248M of them in April 2021). :class:`Announcement` is
that unit; :class:`RibRecord` is the deduplicated form our lazy RIB
series exposes (one per VP × prefix, annotated with how many of the
five days it appeared in).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.collectors import VantagePoint
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class Announcement:
    """One observed route: a VP reported this path to this prefix."""

    vp: VantagePoint
    prefix: Prefix
    path: ASPath

    @property
    def origin(self) -> int:
        """The AS originating the prefix (last ASN on the path)."""
        return self.path.origin

    def __str__(self) -> str:
        return f"{self.vp.ip} {self.prefix} [{self.path}]"


@dataclass(frozen=True, slots=True)
class RibRecord:
    """A deduplicated announcement with day-level presence metadata."""

    vp: VantagePoint
    prefix: Prefix
    path: ASPath
    days_present: int
    total_days: int

    @property
    def stable(self) -> bool:
        """Whether the prefix appeared in every daily RIB (paper §3.1)."""
        return self.days_present == self.total_days

    def to_announcement(self) -> Announcement:
        """Collapse back to a single announcement record."""
        return Announcement(self.vp, self.prefix, self.path)
