"""Routing policy primitives: route classes, preference, export rules.

We implement the standard Gao–Rexford economic model, which is also the
model underlying the paper's valley-free assumption (§1.1):

* **Preference.** An AS prefers routes learned from customers over
  routes learned from peers over routes learned from providers
  (customers pay, providers are paid). Ties break on shorter AS path,
  then on lower next-hop ASN (a deterministic stand-in for IGP/router-ID
  tie-breaking).
* **Export.** Customer-learned (and self-originated) routes are
  announced to everyone; peer- and provider-learned routes are announced
  only to customers. This is exactly why "customer prefixes are the only
  prefixes an AS will propagate to peers and providers" — the property
  the customer-cone algorithm exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RouteClass(enum.Enum):
    """How the route holder learned the route."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3

    @property
    def preference(self) -> int:
        """Lower is better."""
        return self.value


@dataclass(frozen=True, slots=True)
class Route:
    """A route held by one AS toward one origin.

    ``path`` starts at the holder and ends at the origin (so the
    holder's own ASN is ``path[0]`` and ``len(path)`` is the AS-path
    length including both endpoints).
    """

    path: tuple[int, ...]
    route_class: RouteClass

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("empty route path")
        if self.route_class is RouteClass.ORIGIN and len(self.path) != 1:
            raise ValueError("origin route must have a single-hop path")

    @property
    def holder(self) -> int:
        """The AS holding this route."""
        return self.path[0]

    @property
    def origin(self) -> int:
        """The AS originating the destination."""
        return self.path[-1]

    @property
    def next_hop(self) -> int:
        """The neighbor the route was learned from (self when origin)."""
        return self.path[1] if len(self.path) > 1 else self.path[0]

    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: lower compares better (class, length, next hop)."""
        return (self.route_class.preference, len(self.path), self.next_hop)

    def exports_to_peers_and_providers(self) -> bool:
        """Valley-free export: only customer/origin routes go upward."""
        return self.route_class in (RouteClass.ORIGIN, RouteClass.CUSTOMER)

    def __str__(self) -> str:
        return f"{'-'.join(str(a) for a in self.path)} [{self.route_class.name}]"


def better(left: Route | None, right: Route) -> Route:
    """The preferred of an incumbent (possibly absent) and a candidate."""
    if left is None or right.preference_key() < left.preference_key():
        return right
    return left
