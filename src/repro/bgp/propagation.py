"""Valley-free route propagation over an AS graph.

For each origin AS, computes the best route every other AS would select
under Gao–Rexford policy using a three-phase breadth-first sweep:

1. **up** — customer-learned routes climb provider links;
2. **across** — customer routes cross a single peer link;
3. **down** — any route descends to customers.

Phases run in order because route classes dominate path length: an AS
with any customer route never selects a peer or provider route, so its
export is fixed by the earlier phase. Within a phase, routes spread in
breadth-first levels (all AS-path growth is one hop), which yields
shortest paths per class; remaining ties resolve by the configured
tie-break policy — ``"asn"`` (lowest next-hop ASN, fully reproducible
and easy to reason about in tests) or ``"hash"`` (a deterministic
per-(holder, next hop, origin) mix that emulates the geographic
diversity of real hot-potato tie-breaking: different ASes pick
different equally-good egresses instead of the whole world converging
on the lowest ASN).

The result at a vantage-point AS is the AS path that VP would advertise
to a collector — the raw material of the whole reproduction.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.bgp.policy import Route, RouteClass
from repro.obs.metrics import NULL_HISTOGRAM
from repro.obs.trace import NULL_TRACER
from repro.topology.model import ASGraph

if TYPE_CHECKING:  # the fan-out wrapper is imported lazily at runtime
    from repro.perf.pool import WorkerPool
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True, slots=True)
class PropagationBasis:
    """Everything needed to re-propagate a *changed* graph incrementally.

    Captured by :func:`propagate_all` with ``capture_basis=True`` and fed
    back on the next snapshot via ``basis=``. ``holders[origin]`` is the
    set of ASes the (possibly keep-pruned) sweep assigned a route toward
    ``origin`` — the exact set of nodes whose adjacency rows that
    origin's BFS ever read, which is what makes the reuse criterion
    sound: if none of those rows changed (and the keep closure is
    unchanged), rerunning the BFS would reproduce the same routes
    byte for byte.
    """

    adjacency: "_Adjacency"
    tiebreak: str
    salt: int
    keep: frozenset[int] | None
    relevant: frozenset[int] | None
    routes: Mapping[int, Mapping[int, Route]]
    holders: Mapping[int, frozenset[int]]

    def compatible(
        self, tiebreak: str, salt: int, keep: frozenset[int] | None
    ) -> bool:
        """Whether this basis describes the same propagation problem."""
        return (
            self.tiebreak == tiebreak
            and self.salt == salt
            and self.keep == keep
        )


@dataclass(frozen=True, slots=True)
class RoutingOutcome:
    """Best routes toward each origin, restricted to the ASes kept.

    ``routes[origin][asn]`` is the best :class:`Route` held by ``asn``
    toward ``origin``; absent keys mean the origin was unreachable.
    ``basis`` is populated only when :func:`propagate_all` ran with
    ``capture_basis=True`` (it does not participate in equality).
    """

    routes: Mapping[int, Mapping[int, Route]]
    basis: "PropagationBasis | None" = field(
        default=None, compare=False, repr=False
    )

    def path(self, origin: int, asn: int) -> tuple[int, ...] | None:
        """Convenience lookup of the AS path or ``None``."""
        route = self.routes.get(origin, {}).get(asn)
        return route.path if route is not None else None

    def origins(self) -> list[int]:
        """All origins propagated, sorted."""
        return sorted(self.routes)


class _Adjacency:
    """Plain-dict adjacency snapshot for fast inner loops."""

    __slots__ = ("providers", "customers", "peers", "asns")

    def __init__(self, graph: ASGraph) -> None:
        self.asns = graph.asns()
        self.providers = {a: tuple(sorted(graph.providers_of(a))) for a in self.asns}
        self.customers = {a: tuple(sorted(graph.customers_of(a))) for a in self.asns}
        self.peers = {a: tuple(sorted(graph.peers_of(a))) for a in self.asns}


#: graph -> (graph.version, snapshot); weak keys so graphs can die
_adjacency_cache: "weakref.WeakKeyDictionary[ASGraph, tuple[int, _Adjacency]]"
_adjacency_cache = weakref.WeakKeyDictionary()


def _adjacency_of(graph: ASGraph) -> _Adjacency:
    """The adjacency snapshot for ``graph``, cached per structural
    version.

    Sharing one snapshot object across calls is what lets the worker
    pool broadcast it once for all salt planes (the broadcast registry
    memoizes by identity) and what makes the incremental delta check
    between unchanged snapshots trivial.
    """
    cached = _adjacency_cache.get(graph)
    version = graph.version
    if cached is not None and cached[0] == version:
        return cached[1]
    snapshot = _Adjacency(graph)
    _adjacency_cache[graph] = (version, snapshot)
    return snapshot


#: Valid tie-break policies.
TIEBREAKS = ("asn", "hash")


def keep_closure(
    adjacency: _Adjacency, keep: Iterable[int]
) -> frozenset[int]:
    """The ``keep`` set closed upward under provider links.

    An AS is *relevant* to the kept routes iff some kept AS sits in its
    customer cone — equivalently, iff it is reachable from ``keep`` by
    climbing provider edges. The down phase of the sweep only ever
    hands a route to a kept AS through a chain of relevant providers
    (a provider of a relevant AS is itself relevant), so pruning
    irrelevant customers from phase 3 cannot change any kept route.
    """
    providers = adjacency.providers
    relevant = set(keep)
    frontier = list(relevant)
    while frontier:
        next_frontier: list[int] = []
        for asn in frontier:
            for provider in providers.get(asn, ()):
                if provider not in relevant:
                    relevant.add(provider)
                    next_frontier.append(provider)
        frontier = next_frontier
    return frozenset(relevant)


def adjacency_delta(old: _Adjacency, new: _Adjacency) -> frozenset[int]:
    """ASNs whose adjacency rows differ between two snapshots.

    An edge change marks *both* endpoints (each endpoint's row lists the
    other); an added or removed AS marks itself and, through their rows,
    every neighbor. Rows are sorted tuples, so comparison is exact.
    """
    old_rows = old.providers
    changed: set[int] = {asn for asn in old.asns if asn not in new.providers}
    for asn in new.asns:
        if asn not in old_rows:
            changed.add(asn)
        elif (
            old.providers[asn] != new.providers[asn]
            or old.customers[asn] != new.customers[asn]
            or old.peers[asn] != new.peers[asn]
        ):
            changed.add(asn)
    return frozenset(changed)


def _hash_mix(holder: int, next_hop: int, origin: int, salt: int = 0) -> int:
    """Deterministic 32-bit mix used by the "hash" tie-break."""
    value = (
        holder * 2654435761 + next_hop * 2246822519
        + origin * 3266489917 + salt * 374761393
    ) & 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 2654435761) & 0xFFFFFFFF
    return value ^ (value >> 13)


def _key_factory(
    tiebreak: str, origin: int, salt: int = 0
) -> Callable[[int, int], tuple[int, int]]:
    if tiebreak == "asn":
        return lambda holder, next_hop: (next_hop, 0)
    if tiebreak == "hash":
        return lambda holder, next_hop: (
            _hash_mix(holder, next_hop, origin, salt), next_hop,
        )
    raise ValueError(f"unknown tiebreak {tiebreak!r} (expected one of {TIEBREAKS})")


def propagate(
    graph: ASGraph, origin: int, tiebreak: str = "asn", salt: int = 0
) -> dict[int, Route]:
    """Best route at every AS toward ``origin`` (single-origin API).

    ``salt`` varies the "hash" tie-break, producing an alternative but
    equally-valid routing plane — the mechanism behind multi-plane path
    diversity (see :class:`repro.core.pipeline.PipelineConfig`).
    """
    return _propagate(_adjacency_of(graph), origin, tiebreak, salt)


def propagate_all(
    graph: ASGraph,
    origins: Iterable[int] | None = None,
    keep: Iterable[int] | None = None,
    tiebreak: str = "asn",
    salt: int = 0,
    tracer=NULL_TRACER,
    workers: int = 1,
    policy: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    basis: "PropagationBasis | None" = None,
    capture_basis: bool = False,
    delta_threshold: float = 0.5,
    pool: "WorkerPool | None" = None,
) -> RoutingOutcome:
    """Propagate every origin and keep routes only at ``keep`` ASes.

    ``origins`` defaults to every AS that originates at least one
    prefix; ``keep`` defaults to all ASes (memory scales with
    ``len(origins) * len(keep)``, so pass the VP ASes when you only
    need collector views).

    ``workers > 1`` chunks the origin sweep across a process pool with
    a deterministic by-origin merge — the outcome is identical for any
    worker count, and ``workers=1`` never leaves this process (the
    byte-identical serial path). Per-level frontier telemetry is only
    sampled on the serial path; the aggregate span counts are recorded
    either way.

    ``policy`` (retry/timeout bounds) and ``faults`` (an injection
    plan) shape the fan-out's failure behavior, never its output: a
    killed or hung chunk is replayed until the merged result matches
    the fault-free run (see :mod:`repro.resilience`).

    ``tracer`` wraps the sweep in a ``propagate.plane`` span, counts
    origins and kept routes, and samples per-level BFS frontier sizes
    into the ``propagate.frontier`` histogram.

    ``basis`` (a :class:`PropagationBasis` from a previous snapshot)
    turns the sweep incremental: origins whose BFS never touched a
    changed adjacency row reuse their stored routes verbatim, the rest
    recompute against the new graph. The output is byte-identical to a
    full sweep; if more than ``delta_threshold`` of the origins are
    dirty the basis is abandoned and the sweep runs in full.
    ``capture_basis=True`` stores a fresh basis on the returned
    outcome (``outcome.basis``) for the next snapshot.

    ``pool`` lends a persistent :class:`repro.perf.pool.WorkerPool` to
    the fan-out (the adjacency is broadcast to it once and reused
    across planes); without one, the fan-out runs on a transient pool
    scoped to this call.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    with tracer.span(
        "propagate.plane", tiebreak=tiebreak, salt=salt, workers=workers,
    ) as span:
        adjacency = _adjacency_of(graph)
        if origins is None:
            origins = [asn for asn in graph.asns() if graph.node(asn).prefixes]
        keep_set = frozenset(keep) if keep is not None else None
        origin_list = sorted(set(origins))
        for origin in origin_list:
            if origin not in graph:
                raise KeyError(f"origin AS{origin} not in graph")
        relevant = (
            keep_closure(adjacency, keep_set) if keep_set is not None else None
        )

        # Incremental reuse: an origin is clean iff no AS its previous
        # BFS assigned a route to has a changed adjacency row — then the
        # sweep would read exactly the same rows and rebuild exactly the
        # same routes. The keep closure must also be unchanged, because
        # phase-3 pruning reads it.
        reused: dict[int, Mapping[int, Route]] = {}
        dirty_origins = origin_list
        if (
            basis is not None
            and basis.compatible(tiebreak, salt, keep_set)
            and basis.relevant == relevant
        ):
            changed = adjacency_delta(basis.adjacency, adjacency)
            dirty = [
                origin for origin in origin_list
                if origin not in basis.holders
                or not changed.isdisjoint(basis.holders[origin])
            ]
            if len(dirty) <= delta_threshold * len(origin_list):
                dirty_origins = dirty
                dirty_set = set(dirty)
                reused = {
                    origin: basis.routes[origin]
                    for origin in origin_list if origin not in dirty_set
                }

        kept_routes = 0
        computed: dict[int, dict[int, Route]] = {}
        holders: dict[int, frozenset[int]] = {}
        if workers > 1 and len(dirty_origins) > 1:
            from repro.perf.parallel import propagate_origins

            computed, holders = propagate_origins(
                adjacency, dirty_origins, tiebreak, salt, keep_set, workers,
                tracer=tracer, policy=policy, faults=faults,
                relevant=relevant, capture_holders=capture_basis, pool=pool,
            )
        else:
            frontier_hist = tracer.metrics.histogram("propagate.frontier")
            for origin in dirty_origins:
                routes = _propagate(
                    adjacency, origin, tiebreak, salt, frontier_hist,
                    relevant=relevant,
                )
                if capture_basis:
                    holders[origin] = frozenset(routes)
                if keep_set is not None:
                    routes = {
                        asn: route for asn, route in routes.items()
                        if asn in keep_set
                    }
                computed[origin] = routes

        all_routes: dict[int, Mapping[int, Route]] = {}
        for origin in origin_list:
            all_routes[origin] = (
                computed[origin] if origin in computed else reused[origin]
            )
        kept_routes = sum(len(routes) for routes in all_routes.values())

        outcome_basis: PropagationBasis | None = None
        if capture_basis:
            if reused and basis is not None:
                for origin in reused:
                    holders[origin] = basis.holders[origin]
            outcome_basis = PropagationBasis(
                adjacency=adjacency, tiebreak=tiebreak, salt=salt,
                keep=keep_set, relevant=relevant,
                routes=all_routes, holders=holders,
            )

        span.set(
            origins=len(origin_list), routes=kept_routes,
            reused=len(reused), recomputed=len(dirty_origins),
        )
        tracer.metrics.counter("propagate.origins").inc(len(origin_list))
        tracer.metrics.counter("propagate.routes").inc(kept_routes)
        if basis is not None:
            tracer.metrics.counter("propagate.incremental.reused").inc(
                len(reused)
            )
            tracer.metrics.counter("propagate.incremental.recomputed").inc(
                len(dirty_origins)
            )
    return RoutingOutcome(all_routes, basis=outcome_basis)


def _propagate(
    adjacency: _Adjacency,
    origin: int,
    tiebreak: str = "asn",
    salt: int = 0,
    frontier_hist=NULL_HISTOGRAM,
    relevant: frozenset[int] | None = None,
) -> dict[int, Route]:
    """Full three-phase sweep for one origin.

    ``relevant`` (a :func:`keep_closure` of the caller's keep set)
    prunes the down phase: customers outside it never enter the route
    map or the frontier. Phases 1–2 always run in full — their routes
    fix every AS's export and any of them may be an ancestor of a kept
    AS. Routes at relevant ASes are byte-identical to the unpruned
    sweep because a relevant AS's candidate providers are themselves
    relevant (or up/across holders), so its candidate set — and the
    strict-min selection over it — never changes.
    """
    providers = adjacency.providers
    customers = adjacency.customers
    peers = adjacency.peers
    key_of = _key_factory(tiebreak, origin, salt)

    # Phase 1 (up): customer routes climb provider links, breadth-first.
    up_paths: dict[int, tuple[int, ...]] = {origin: (origin,)}
    frontier: list[int] = [origin]
    while frontier:
        candidates: dict[int, tuple[tuple[int, int], int]] = {}
        for asn in frontier:
            for provider in providers[asn]:
                if provider in up_paths:
                    continue
                key = key_of(provider, asn)
                best = candidates.get(provider)
                if best is None or key < best[0]:
                    candidates[provider] = (key, asn)
        next_frontier: list[int] = []
        for provider, (_, next_hop) in candidates.items():
            up_paths[provider] = (provider,) + up_paths[next_hop]
            next_frontier.append(provider)
        if next_frontier:
            frontier_hist.observe(len(next_frontier))
        frontier = next_frontier

    # Phase 2 (across): the best customer route crosses one peer link.
    peer_paths: dict[int, tuple[int, ...]] = {}
    # asn -> ((len, key), next_hop)
    peer_candidates: dict[int, tuple[tuple[int, tuple[int, int]], int]] = {}
    for asn, path in up_paths.items():
        cost = len(path) + 1
        for peer in peers[asn]:
            if peer in up_paths:
                continue
            rank = (cost, key_of(peer, asn))
            best = peer_candidates.get(peer)
            if best is None or rank < best[0]:
                peer_candidates[peer] = (rank, asn)
    for asn, (_, next_hop) in peer_candidates.items():
        peer_paths[asn] = (asn,) + up_paths[next_hop]

    # Assemble the routes selected so far; they fix each AS's export.
    routes: dict[int, Route] = {origin: Route((origin,), RouteClass.ORIGIN)}
    for asn, path in up_paths.items():
        if asn != origin:
            routes[asn] = Route(path, RouteClass.CUSTOMER)
    for asn, path in peer_paths.items():
        routes[asn] = Route(path, RouteClass.PEER)

    # Phase 3 (down): any selected route descends to customers,
    # breadth-first by the exported route's length.
    buckets: dict[int, list[int]] = {}
    for asn, route in routes.items():
        buckets.setdefault(len(route.path), []).append(asn)
    length = min(buckets) if buckets else 0
    max_settled = max(buckets) if buckets else 0
    while length <= max_settled:
        batch = buckets.get(length)
        if batch:
            candidates = {}
            for asn in batch:
                for customer in customers[asn]:
                    if customer in routes or (
                        relevant is not None and customer not in relevant
                    ):
                        continue
                    key = key_of(customer, asn)
                    best = candidates.get(customer)
                    if best is None or key < best[0]:
                        candidates[customer] = (key, asn)
            if candidates:
                new_bucket = buckets.setdefault(length + 1, [])
                for customer, (_, next_hop) in candidates.items():
                    routes[customer] = Route(
                        (customer,) + routes[next_hop].path, RouteClass.PROVIDER
                    )
                    new_bucket.append(customer)
                max_settled = max(max_settled, length + 1)
        length += 1
    return routes
