"""Valley-free route propagation over an AS graph.

For each origin AS, computes the best route every other AS would select
under Gao–Rexford policy using a three-phase breadth-first sweep:

1. **up** — customer-learned routes climb provider links;
2. **across** — customer routes cross a single peer link;
3. **down** — any route descends to customers.

Phases run in order because route classes dominate path length: an AS
with any customer route never selects a peer or provider route, so its
export is fixed by the earlier phase. Within a phase, routes spread in
breadth-first levels (all AS-path growth is one hop), which yields
shortest paths per class; remaining ties resolve by the configured
tie-break policy — ``"asn"`` (lowest next-hop ASN, fully reproducible
and easy to reason about in tests) or ``"hash"`` (a deterministic
per-(holder, next hop, origin) mix that emulates the geographic
diversity of real hot-potato tie-breaking: different ASes pick
different equally-good egresses instead of the whole world converging
on the lowest ASN).

The result at a vantage-point AS is the AS path that VP would advertise
to a collector — the raw material of the whole reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.bgp.policy import Route, RouteClass
from repro.obs.metrics import NULL_HISTOGRAM
from repro.obs.trace import NULL_TRACER
from repro.topology.model import ASGraph

if TYPE_CHECKING:  # the fan-out wrapper is imported lazily at runtime
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True, slots=True)
class RoutingOutcome:
    """Best routes toward each origin, restricted to the ASes kept.

    ``routes[origin][asn]`` is the best :class:`Route` held by ``asn``
    toward ``origin``; absent keys mean the origin was unreachable.
    """

    routes: Mapping[int, Mapping[int, Route]]

    def path(self, origin: int, asn: int) -> tuple[int, ...] | None:
        """Convenience lookup of the AS path or ``None``."""
        route = self.routes.get(origin, {}).get(asn)
        return route.path if route is not None else None

    def origins(self) -> list[int]:
        """All origins propagated, sorted."""
        return sorted(self.routes)


class _Adjacency:
    """Plain-dict adjacency snapshot for fast inner loops."""

    __slots__ = ("providers", "customers", "peers", "asns")

    def __init__(self, graph: ASGraph) -> None:
        self.asns = graph.asns()
        self.providers = {a: tuple(sorted(graph.providers_of(a))) for a in self.asns}
        self.customers = {a: tuple(sorted(graph.customers_of(a))) for a in self.asns}
        self.peers = {a: tuple(sorted(graph.peers_of(a))) for a in self.asns}


#: Valid tie-break policies.
TIEBREAKS = ("asn", "hash")


def _hash_mix(holder: int, next_hop: int, origin: int, salt: int = 0) -> int:
    """Deterministic 32-bit mix used by the "hash" tie-break."""
    value = (
        holder * 2654435761 + next_hop * 2246822519
        + origin * 3266489917 + salt * 374761393
    ) & 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 2654435761) & 0xFFFFFFFF
    return value ^ (value >> 13)


def _key_factory(
    tiebreak: str, origin: int, salt: int = 0
) -> Callable[[int, int], tuple[int, int]]:
    if tiebreak == "asn":
        return lambda holder, next_hop: (next_hop, 0)
    if tiebreak == "hash":
        return lambda holder, next_hop: (
            _hash_mix(holder, next_hop, origin, salt), next_hop,
        )
    raise ValueError(f"unknown tiebreak {tiebreak!r} (expected one of {TIEBREAKS})")


def propagate(
    graph: ASGraph, origin: int, tiebreak: str = "asn", salt: int = 0
) -> dict[int, Route]:
    """Best route at every AS toward ``origin`` (single-origin API).

    ``salt`` varies the "hash" tie-break, producing an alternative but
    equally-valid routing plane — the mechanism behind multi-plane path
    diversity (see :class:`repro.core.pipeline.PipelineConfig`).
    """
    return _propagate(_Adjacency(graph), origin, tiebreak, salt)


def propagate_all(
    graph: ASGraph,
    origins: Iterable[int] | None = None,
    keep: Iterable[int] | None = None,
    tiebreak: str = "asn",
    salt: int = 0,
    tracer=NULL_TRACER,
    workers: int = 1,
    policy: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
) -> RoutingOutcome:
    """Propagate every origin and keep routes only at ``keep`` ASes.

    ``origins`` defaults to every AS that originates at least one
    prefix; ``keep`` defaults to all ASes (memory scales with
    ``len(origins) * len(keep)``, so pass the VP ASes when you only
    need collector views).

    ``workers > 1`` chunks the origin sweep across a process pool with
    a deterministic by-origin merge — the outcome is identical for any
    worker count, and ``workers=1`` never leaves this process (the
    byte-identical serial path). Per-level frontier telemetry is only
    sampled on the serial path; the aggregate span counts are recorded
    either way.

    ``policy`` (retry/timeout bounds) and ``faults`` (an injection
    plan) shape the fan-out's failure behavior, never its output: a
    killed or hung chunk is replayed until the merged result matches
    the fault-free run (see :mod:`repro.resilience`).

    ``tracer`` wraps the sweep in a ``propagate.plane`` span, counts
    origins and kept routes, and samples per-level BFS frontier sizes
    into the ``propagate.frontier`` histogram.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    with tracer.span(
        "propagate.plane", tiebreak=tiebreak, salt=salt, workers=workers,
    ) as span:
        adjacency = _Adjacency(graph)
        if origins is None:
            origins = [asn for asn in graph.asns() if graph.node(asn).prefixes]
        keep_set = set(keep) if keep is not None else None
        origin_list = sorted(set(origins))
        for origin in origin_list:
            if origin not in graph:
                raise KeyError(f"origin AS{origin} not in graph")
        kept_routes = 0
        all_routes: dict[int, dict[int, Route]] = {}
        if workers > 1 and len(origin_list) > 1:
            from repro.perf.parallel import propagate_origins

            all_routes = propagate_origins(
                adjacency, origin_list, tiebreak, salt, keep_set, workers,
                tracer=tracer, policy=policy, faults=faults,
            )
            kept_routes = sum(len(routes) for routes in all_routes.values())
        else:
            frontier_hist = tracer.metrics.histogram("propagate.frontier")
            for origin in origin_list:
                routes = _propagate(
                    adjacency, origin, tiebreak, salt, frontier_hist
                )
                if keep_set is not None:
                    routes = {
                        asn: route for asn, route in routes.items()
                        if asn in keep_set
                    }
                kept_routes += len(routes)
                all_routes[origin] = routes
        span.set(origins=len(origin_list), routes=kept_routes)
        tracer.metrics.counter("propagate.origins").inc(len(origin_list))
        tracer.metrics.counter("propagate.routes").inc(kept_routes)
    return RoutingOutcome(all_routes)


def _propagate(
    adjacency: _Adjacency,
    origin: int,
    tiebreak: str = "asn",
    salt: int = 0,
    frontier_hist=NULL_HISTOGRAM,
) -> dict[int, Route]:
    providers = adjacency.providers
    customers = adjacency.customers
    peers = adjacency.peers
    key_of = _key_factory(tiebreak, origin, salt)

    # Phase 1 (up): customer routes climb provider links, breadth-first.
    up_paths: dict[int, tuple[int, ...]] = {origin: (origin,)}
    frontier: list[int] = [origin]
    while frontier:
        candidates: dict[int, tuple[tuple[int, int], int]] = {}
        for asn in frontier:
            for provider in providers[asn]:
                if provider in up_paths:
                    continue
                key = key_of(provider, asn)
                best = candidates.get(provider)
                if best is None or key < best[0]:
                    candidates[provider] = (key, asn)
        next_frontier: list[int] = []
        for provider, (_, next_hop) in candidates.items():
            up_paths[provider] = (provider,) + up_paths[next_hop]
            next_frontier.append(provider)
        if next_frontier:
            frontier_hist.observe(len(next_frontier))
        frontier = next_frontier

    # Phase 2 (across): the best customer route crosses one peer link.
    peer_paths: dict[int, tuple[int, ...]] = {}
    # asn -> ((len, key), next_hop)
    peer_candidates: dict[int, tuple[tuple[int, tuple[int, int]], int]] = {}
    for asn, path in up_paths.items():
        cost = len(path) + 1
        for peer in peers[asn]:
            if peer in up_paths:
                continue
            rank = (cost, key_of(peer, asn))
            best = peer_candidates.get(peer)
            if best is None or rank < best[0]:
                peer_candidates[peer] = (rank, asn)
    for asn, (_, next_hop) in peer_candidates.items():
        peer_paths[asn] = (asn,) + up_paths[next_hop]

    # Assemble the routes selected so far; they fix each AS's export.
    routes: dict[int, Route] = {origin: Route((origin,), RouteClass.ORIGIN)}
    for asn, path in up_paths.items():
        if asn != origin:
            routes[asn] = Route(path, RouteClass.CUSTOMER)
    for asn, path in peer_paths.items():
        routes[asn] = Route(path, RouteClass.PEER)

    # Phase 3 (down): any selected route descends to customers,
    # breadth-first by the exported route's length.
    buckets: dict[int, list[int]] = {}
    for asn, route in routes.items():
        buckets.setdefault(len(route.path), []).append(asn)
    length = min(buckets) if buckets else 0
    max_settled = max(buckets) if buckets else 0
    while length <= max_settled:
        batch = buckets.get(length)
        if batch:
            candidates = {}
            for asn in batch:
                for customer in customers[asn]:
                    if customer in routes:
                        continue
                    key = key_of(customer, asn)
                    best = candidates.get(customer)
                    if best is None or key < best[0]:
                        candidates[customer] = (key, asn)
            if candidates:
                new_bucket = buckets.setdefault(length + 1, [])
                for customer, (_, next_hop) in candidates.items():
                    routes[customer] = Route(
                        (customer,) + routes[next_hop].path, RouteClass.PROVIDER
                    )
                    new_bucket.append(customer)
                max_settled = max(max_settled, length + 1)
        length += 1
    return routes
