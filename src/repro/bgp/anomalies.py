"""Injection of the path pathologies the sanitizer must catch.

The paper's Table 1 rejects paths that contain loops (nonadjacent
duplicate ASes), appear poisoned (a non-top-tier AS wedged between two
top-tier ASes), or mention unallocated ASNs; it also *cleans* —
without rejecting — prepended paths and paths through IXP route-server
ASNs. This module deliberately plants each pathology into otherwise
clean simulated paths so the pipeline filters real positives, and so
tests can assert both directions (planted anomalies are caught, clean
paths survive).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.net.aspath import ASPath


class AnomalyInjectionError(RuntimeError):
    """Raised when an anomaly cannot be planted into a given path."""


@dataclass(frozen=True, slots=True)
class AnomalyConfig:
    """Per-record probabilities for each pathology (independent draws).

    Rates apply per (VP, prefix) record. Defaults approximate the
    relative magnitudes in the paper's Table 1: loops and poisoning are
    rare, prepending and route-server artifacts are common enough to
    exercise the cleaning steps.
    """

    loop_rate: float = 0.001
    poison_rate: float = 0.0002
    unallocated_rate: float = 0.001
    prepend_rate: float = 0.02
    route_server_rate: float = 0.01

    def __post_init__(self) -> None:
        for name in ("loop_rate", "poison_rate", "unallocated_rate",
                     "prepend_rate", "route_server_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")

    @classmethod
    def none(cls) -> "AnomalyConfig":
        """A config that injects nothing (clean-world runs)."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0)


def make_loop(path: ASPath, rng: random.Random) -> ASPath:
    """Insert a nonadjacent duplicate (``A C A`` pattern).

    Requires at least two ASes on the path; re-inserts an upstream ASN
    two or more hops later.
    """
    asns = list(path.asns)
    if len(asns) < 2:
        raise AnomalyInjectionError("path too short for a loop")
    victim_index = rng.randrange(len(asns) - 1)
    insert_at = rng.randrange(victim_index + 2, len(asns) + 1)
    asns.insert(insert_at, asns[victim_index])
    return ASPath(tuple(asns))


def make_poisoned(
    path: ASPath, clique: frozenset[int], rng: random.Random, filler: int
) -> ASPath:
    """Wedge a non-clique AS between two adjacent clique ASes.

    This reproduces the paper's poisoning signature ("non-top-tier AS
    between top-tier ASes"). Requires an adjacent clique pair on the
    path; raises otherwise.
    """
    if filler in clique:
        raise AnomalyInjectionError("filler AS must be outside the clique")
    asns = list(path.asns)
    pairs = [
        index
        for index, (left, right) in enumerate(zip(asns, asns[1:]))
        if left in clique and right in clique
    ]
    if not pairs:
        raise AnomalyInjectionError("no adjacent clique pair on path")
    index = rng.choice(pairs)
    asns.insert(index + 1, filler)
    return ASPath(tuple(asns))


def make_unallocated(path: ASPath, unallocated_asn: int, rng: random.Random) -> ASPath:
    """Insert an IANA-unassigned ASN at a random interior position."""
    asns = list(path.asns)
    position = rng.randrange(1, len(asns)) if len(asns) > 1 else 1
    asns.insert(position, unallocated_asn)
    return ASPath(tuple(asns))


def make_prepended(path: ASPath, rng: random.Random) -> ASPath:
    """Repeat one AS 2–4 times (traffic-engineering prepending).

    The sanitizer collapses this without rejecting the path.
    """
    asns = list(path.asns)
    index = rng.randrange(len(asns))
    repeats = rng.randint(1, 3)
    for _ in range(repeats):
        asns.insert(index, asns[index])
    return ASPath(tuple(asns))


def make_route_server(path: ASPath, route_server_asn: int) -> ASPath:
    """Insert an IXP route-server ASN after the VP-side AS.

    Mimics route servers that do not strip their own ASN; the sanitizer
    removes the ASN and keeps the path.
    """
    asns = list(path.asns)
    if len(asns) < 2:
        raise AnomalyInjectionError("path too short for a route-server hop")
    asns.insert(1, route_server_asn)
    return ASPath(tuple(asns))


@dataclass(frozen=True, slots=True)
class InjectionSummary:
    """What the injector actually planted (ground truth for tests)."""

    loops: int
    poisoned: int
    unallocated: int
    prepended: int
    route_server: int

    def total(self) -> int:
        """All planted anomalies."""
        return (
            self.loops
            + self.poisoned
            + self.unallocated
            + self.prepended
            + self.route_server
        )


def inject_anomalies(
    records: "Iterable[tuple[tuple[int, int], ASPath]]",
    config: AnomalyConfig,
    clique: frozenset[int],
    unallocated_pool: list[int],
    route_servers: frozenset[int],
    rng: random.Random,
    filler_pool: list[int] | None = None,
    roll_for=None,
    rng_for=None,
) -> tuple[dict[tuple[int, int], ASPath], InjectionSummary]:
    """Plant anomalies into a stream of keyed clean paths.

    ``records`` yields ``(key, clean_path)`` pairs (we key by
    ``(vp_index, prefix_index)``). Returns only the overridden entries
    plus a summary. Each record receives at most one anomaly (draws are
    ordered: loop, poison, unallocated, prepend, route server) so the
    filter categories stay disjoint, as in Table 1.

    ``filler_pool`` provides non-clique ASNs used as poisoning filler;
    when omitted it is built lazily from paths already seen.

    ``roll_for``/``rng_for`` optionally supply a hash-stable uniform
    draw and a record-keyed RNG per record key, so the injected set
    does not depend on iteration order (used by the RIB series).
    """
    if not unallocated_pool and config.unallocated_rate > 0:
        raise ValueError("unallocated_rate > 0 requires an unallocated ASN pool")
    overrides: dict[tuple[int, int], ASPath] = {}
    counts = {"loops": 0, "poisoned": 0, "unallocated": 0,
              "prepended": 0, "route_server": 0}
    route_server_list = sorted(route_servers)
    non_clique_fillers = sorted(set(filler_pool) - clique) if filler_pool else []
    total_rate = (
        config.loop_rate + config.poison_rate + config.unallocated_rate
        + config.prepend_rate + config.route_server_rate
    )
    for key, path in records:
        if not non_clique_fillers:
            non_clique_fillers = sorted(path.unique_asns() - clique)
        roll = roll_for(key) if roll_for is not None else rng.random()
        if roll >= total_rate:
            # the overwhelmingly common case: nothing planted, so the
            # record-keyed RNG (an expensive Random() construction) is
            # never needed — rng_for is pure in key, so deferring it
            # cannot change which draws a planted record sees
            continue
        local_rng = rng_for(key) if rng_for is not None else rng
        try:
            if roll < config.loop_rate and len(path) >= 2:
                overrides[key] = make_loop(path, local_rng)
                counts["loops"] += 1
            elif roll < config.loop_rate + config.poison_rate:
                filler = (
                    local_rng.choice(non_clique_fillers)
                    if non_clique_fillers else 0
                )
                overrides[key] = make_poisoned(path, clique, local_rng, filler)
                counts["poisoned"] += 1
            elif roll < (config.loop_rate + config.poison_rate
                         + config.unallocated_rate):
                unallocated = local_rng.choice(unallocated_pool)
                overrides[key] = make_unallocated(path, unallocated, local_rng)
                counts["unallocated"] += 1
            elif roll < (config.loop_rate + config.poison_rate
                         + config.unallocated_rate + config.prepend_rate):
                overrides[key] = make_prepended(path, local_rng)
                counts["prepended"] += 1
            elif (roll < (config.loop_rate + config.poison_rate
                          + config.unallocated_rate + config.prepend_rate
                          + config.route_server_rate)
                  and route_server_list and len(path) >= 2):
                overrides[key] = make_route_server(
                    path, local_rng.choice(route_server_list)
                )
                counts["route_server"] += 1
        except AnomalyInjectionError:
            continue
    summary = InjectionSummary(**counts)
    return overrides, summary
