"""Lazy daily RIB snapshots for a simulated world.

The paper ingests five daily RIBs from every collector (Table 1). We
model a :class:`RibSeries` as the deterministic product of:

* the propagated best path per (VP AS, origin) — shared structure, so
  millions of logical announcements reference a few hundred thousand
  path objects;
* a per-VP *visibility* mask (real VPs rarely carry a 100 % feed);
* prefix-level *churn* — a prefix absent from some days' RIBs is what
  the paper's "unstable" filter rejects;
* injected anomalies (loops, poisoning, unallocated ASNs, prepending,
  route-server hops) that override the clean path for a record.

All randomness is *hash-stable*: each draw is keyed by the entity it
concerns (a VP IP, a prefix, a record) rather than by position in a
shared stream, so editing one AS in a world never reshuffles the noise
applied to unrelated VPs and prefixes.

Announcements are never materialised en masse: iterate
:meth:`RibSeries.records` for the deduplicated per-(VP, prefix) view
with day counts, or :meth:`RibSeries.announcements` for a specific
day's stream.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.bgp.anomalies import AnomalyConfig, InjectionSummary, inject_anomalies
from repro.bgp.announcement import Announcement, RibRecord
from repro.bgp.collectors import VantagePoint
from repro.bgp.propagation import RoutingOutcome
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER
from repro.topology.world import World


@dataclass(frozen=True, slots=True)
class RibGenerationConfig:
    """Knobs for RIB realism.

    ``churn_rate`` is the chance a prefix misses at least one of the
    ``days`` snapshots (the paper saw ~8 % of announcements rejected as
    unstable); ``vp_visibility`` is the chance a VP carries any given
    prefix at all.
    """

    days: int = 5
    churn_rate: float = 0.08
    vp_visibility: float = 0.985
    anomalies: AnomalyConfig = field(default_factory=AnomalyConfig)

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("need at least one RIB day")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError(f"churn_rate out of range: {self.churn_rate}")
        if not 0.0 < self.vp_visibility <= 1.0:
            raise ValueError(f"vp_visibility out of range: {self.vp_visibility}")


def _stable_uniform(seed: int, kind: str, key: str) -> float:
    """A uniform [0, 1) draw keyed by (seed, kind, entity)."""
    digest = zlib.crc32(f"{seed}:{kind}:{key}".encode())
    return (digest & 0xFFFFFFFF) / 4294967296.0


def _stable_uniform_bytes(prefix: bytes, key: bytes) -> float:
    """:func:`_stable_uniform` over pre-encoded ``prefix + key`` bytes.

    The per-(VP, prefix) loops draw hundreds of thousands of times; the
    f-string formatting and ``str.encode`` of the generic helper
    dominate those loops, so they pre-encode the ``"{seed}:{kind}:"``
    prefix once and the entity key once per entity. The digest is
    byte-identical to the generic helper's.
    """
    return (zlib.crc32(prefix + key) & 0xFFFFFFFF) / 4294967296.0


class RibSeries:
    """Daily RIB snapshots over one world, exposed lazily."""

    def __init__(
        self,
        world: World,
        outcome: "RoutingOutcome | list[RoutingOutcome]",
        config: RibGenerationConfig,
        seed: int = 0,
        tracer=NULL_TRACER,
    ) -> None:
        self.world = world
        self.config = config
        self.vps: list[VantagePoint] = world.collectors.all_vps()
        #: (prefix, origin ASN) per prefix index, deterministic order.
        self.prefix_table: list[tuple[Prefix, int]] = [
            (record.prefix, asn) for asn, record in world.graph.originations()
        ]
        self._seed = seed
        #: ``str(prefix)`` per prefix index — every hash-stable draw
        #: keys on it, and ``Prefix.__str__`` re-formats on each call
        self._prefix_strs: list[str] = [
            str(prefix) for prefix, _ in self.prefix_table
        ]
        outcomes = outcome if isinstance(outcome, list) else [outcome]
        if not outcomes:
            raise ValueError("need at least one routing outcome")
        with tracer.span(
            "ribs", vps=len(self.vps), prefixes=len(self.prefix_table),
            days=config.days,
        ) as span:
            with tracer.span("ribs.paths"):
                self._paths = self._collect_paths(outcomes)
            with tracer.span("ribs.visibility"):
                self._missing = self._sample_visibility()
            with tracer.span("ribs.churn"):
                self.unstable_days = self._sample_churn()
            with tracer.span("ribs.inject"):
                self.overrides, self.injection_summary = self._inject()
            span.set(
                paths=len(self._paths),
                missing=len(self._missing),
                unstable=len(self.unstable_days),
                overrides=len(self.overrides),
            )
            metrics = tracer.metrics
            metrics.gauge("ribs.vps").set(len(self.vps))
            metrics.gauge("ribs.prefixes").set(len(self.prefix_table))
            metrics.gauge("ribs.paths").set(len(self._paths))
            metrics.gauge("ribs.unstable_prefixes").set(len(self.unstable_days))
            metrics.gauge("ribs.overrides").set(len(self.overrides))

    # -- construction ------------------------------------------------------

    def _collect_paths(
        self, outcomes: "list[RoutingOutcome]"
    ) -> dict[tuple[int, int], ASPath]:
        """Best path per (VP ASN, origin), as shared ASPath objects.

        With multiple outcomes (routing *planes* from differently-salted
        tie-breaking), each VP AS is deterministically assigned one
        plane — emulating the path diversity real collectors see because
        peers in different regions resolve ties differently.
        """
        planes = len(outcomes)
        paths: dict[tuple[int, int], ASPath] = {}
        vp_asns = sorted({vp.asn for vp in self.vps})
        plane_of = {
            vp_asn: zlib.crc32(f"plane:{vp_asn}".encode()) % planes
            for vp_asn in vp_asns
        }
        for vp_asn in vp_asns:
            outcome = outcomes[plane_of[vp_asn]]
            for origin in outcome.origins():
                route = outcome.routes[origin].get(vp_asn)
                if route is not None:
                    # propagated paths are valid by construction
                    paths[(vp_asn, origin)] = ASPath.trusted(route.path)
        return paths

    def _sample_visibility(self) -> set[tuple[int, int]]:
        """(vp_index, prefix_index) pairs the VP does not carry."""
        missing: set[tuple[int, int]] = set()
        drop_rate = 1.0 - self.config.vp_visibility
        if drop_rate <= 0.0:
            return missing
        # One crc32 per cell is unavoidable; the string assembly is
        # not — pre-encode the stable "{seed}:vis:{ip}|" head per VP
        # and the "{prefix}" tail per prefix (draws stay identical to
        # _stable_uniform(seed, "vis", f"{vp.ip}|{prefix}")).
        seed = self._seed
        tails = [text.encode() for text in self._prefix_strs]
        for vp_index, vp in enumerate(self.vps):
            head = f"{seed}:vis:{vp.ip}|".encode()
            for prefix_index, tail in enumerate(tails):
                if _stable_uniform_bytes(head, tail) < drop_rate:
                    missing.add((vp_index, prefix_index))
        return missing

    def _sample_churn(self) -> dict[int, frozenset[int]]:
        """prefix_index -> days (0-based) on which the prefix is absent."""
        unstable: dict[int, frozenset[int]] = {}
        days = self.config.days
        if self.config.churn_rate <= 0.0 or days < 2:
            return unstable
        for prefix_index, (_, origin) in enumerate(self.prefix_table):
            key = f"{self._prefix_strs[prefix_index]}|{origin}"
            if _stable_uniform(self._seed, "churn", key) >= self.config.churn_rate:
                continue
            absent = 1 + int(
                _stable_uniform(self._seed, "churn-n", key) * (days - 1)
            )
            ranked = sorted(
                range(days),
                key=lambda d: _stable_uniform(self._seed, f"churn-d{d}", key),
            )
            unstable[prefix_index] = frozenset(ranked[:absent])
        return unstable

    def _inject(self) -> tuple[dict[tuple[int, int], ASPath], InjectionSummary]:
        graph = self.world.graph
        clique = graph.clique()
        route_servers = graph.route_servers()
        pool = graph.asn_registry.unallocated_sample(16)
        filler_pool = [asn for asn in graph.asns() if asn not in clique]

        def clean_records() -> Iterator[tuple[tuple[int, int], ASPath]]:
            for vp_index, prefix_index, path in self._iter_clean():
                yield ((vp_index, prefix_index), path)

        # The roll/rng draws key on f"{vp.ip}|{prefix}"; pre-encode the
        # per-VP heads and per-prefix tails once so the per-record work
        # is a dict-free bytes concat + crc32 (draws stay identical to
        # the _stable_uniform / crc32-seeded forms they replace).
        seed = self._seed
        roll_heads = [f"{seed}:anom:{vp.ip}|".encode() for vp in self.vps]
        rng_heads = [f"{seed}:anom-rng:{vp.ip}|".encode() for vp in self.vps]
        tails = [text.encode() for text in self._prefix_strs]

        def roll_for(key: tuple[int, int]) -> float:
            return _stable_uniform_bytes(roll_heads[key[0]], tails[key[1]])

        def rng_for(key: tuple[int, int]) -> random.Random:
            return random.Random(zlib.crc32(rng_heads[key[0]] + tails[key[1]]))

        return inject_anomalies(
            clean_records(),
            self.config.anomalies,
            clique,
            pool,
            route_servers,
            random.Random(self._seed),
            filler_pool=filler_pool,
            roll_for=roll_for,
            rng_for=rng_for,
        )

    # -- iteration ----------------------------------------------------------

    def _iter_clean(self) -> Iterator[tuple[int, int, ASPath]]:
        """(vp_index, prefix_index, clean path) for every carried record."""
        paths = self._paths
        missing = self._missing
        for vp_index, vp in enumerate(self.vps):
            vp_asn = vp.asn
            for prefix_index, (_, origin) in enumerate(self.prefix_table):
                path = paths.get((vp_asn, origin))
                if path is None:
                    continue
                if (vp_index, prefix_index) in missing:
                    continue
                yield (vp_index, prefix_index, path)

    def records(self) -> Iterator[RibRecord]:
        """Deduplicated (VP, prefix) records with day-presence counts."""
        days = self.config.days
        for vp_index, prefix_index, path in self._iter_clean():
            override = self.overrides.get((vp_index, prefix_index))
            absent = len(self.unstable_days.get(prefix_index, ()))
            yield RibRecord(
                vp=self.vps[vp_index],
                prefix=self.prefix_table[prefix_index][0],
                path=override if override is not None else path,
                days_present=days - absent,
                total_days=days,
            )

    def announcements(self, day: int) -> Iterator[Announcement]:
        """Stream one day's RIB (0-based day index)."""
        if not 0 <= day < self.config.days:
            raise ValueError(f"day {day} outside 0..{self.config.days - 1}")
        for vp_index, prefix_index, path in self._iter_clean():
            if day in self.unstable_days.get(prefix_index, ()):
                continue
            override = self.overrides.get((vp_index, prefix_index))
            yield Announcement(
                vp=self.vps[vp_index],
                prefix=self.prefix_table[prefix_index][0],
                path=override if override is not None else path,
            )

    def days(self) -> Iterator["RibDump"]:
        """The series day by day, lazily.

        Yields one lightweight :class:`RibDump` handle per day — no
        announcement list is ever materialized; each dump streams its
        day's announcements on iteration. This is the temporal
        counterpart of the streaming record protocol: consumers that
        used to build the full multi-day list (serialization, replay)
        hold one day handle at a time instead.
        """
        for day in range(self.config.days):
            yield RibDump(self, day)

    def total_announcements(self) -> int:
        """Announcement count across all days (Table 1's "total" row)."""
        days = self.config.days
        total = 0
        for _, prefix_index, _ in self._iter_clean():
            total += days - len(self.unstable_days.get(prefix_index, ()))
        return total

    def num_records(self) -> int:
        """Deduplicated (VP, prefix) record count."""
        return sum(1 for _ in self._iter_clean())


def generate_rib_days(
    world: World,
    outcome: "RoutingOutcome | list[RoutingOutcome]",
    config: RibGenerationConfig | None = None,
    seed: int = 0,
    tracer=NULL_TRACER,
) -> RibSeries:
    """Build the daily RIB series for one or more routing planes."""
    return RibSeries(world, outcome, config or RibGenerationConfig(), seed, tracer)


@dataclass(frozen=True, slots=True)
class RibDump:
    """A single day's view over a series (convenience wrapper)."""

    series: RibSeries
    day: int

    def __iter__(self) -> Iterator[Announcement]:
        return self.series.announcements(self.day)
