"""Route collectors and vantage points.

Models the RouteViews / RIPE RIS ecosystem the paper ingests (§2, §3.2.2):
collectors sit at IXPs in known countries; their BGP peers (vantage
points, VPs) are routers inside member ASes. Collectors flagged
*multi-hop* accept remote peers, so the country of such a VP cannot be
trusted — the paper drops their paths (20.98 % of its input, Table 1).

A VP is identified by its peering IP; multiple VPs can live in the same
AS (the concentration Figure 10 examines).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class CollectorProject(enum.Enum):
    """Which public collection project a collector belongs to."""

    ROUTEVIEWS = "routeviews"
    RIS = "ris"


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """A BGP peer of a collector: an interface inside a member AS."""

    ip: str
    asn: int
    collector: str

    def __str__(self) -> str:
        return f"{self.ip} (AS{self.asn} @ {self.collector})"


@dataclass(slots=True)
class Collector:
    """A route collector at a known (IXP) location."""

    name: str
    project: CollectorProject
    country: str
    multihop: bool = False
    vps: list[VantagePoint] = field(default_factory=list)

    def add_vp(self, ip: str, asn: int) -> VantagePoint:
        """Register a vantage point peering with this collector."""
        if any(vp.ip == ip for vp in self.vps):
            raise ValueError(f"duplicate VP IP {ip} on collector {self.name}")
        vp = VantagePoint(ip, asn, self.name)
        self.vps.append(vp)
        return vp

    def vp_asns(self) -> frozenset[int]:
        """Distinct member ASNs peering here."""
        return frozenset(vp.asn for vp in self.vps)

    def __str__(self) -> str:
        kind = "multihop" if self.multihop else "ixp"
        return f"{self.name} ({self.project.value}, {self.country}, {kind}, {len(self.vps)} VPs)"


class CollectorSet:
    """All collectors of a world, with the lookups the pipeline needs."""

    def __init__(self, collectors: Iterable[Collector] = ()) -> None:
        self._by_name: dict[str, Collector] = {}
        for collector in collectors:
            self.add(collector)

    def add(self, collector: Collector) -> Collector:
        """Register a collector; rejects duplicate names."""
        if collector.name in self._by_name:
            raise ValueError(f"duplicate collector name {collector.name}")
        self._by_name[collector.name] = collector
        return collector

    def get(self, name: str) -> Collector:
        """Collector by name; raises ``KeyError`` when unknown."""
        return self._by_name[name]

    def all_vps(self) -> list[VantagePoint]:
        """Every VP across all collectors, in collector order."""
        return [
            vp
            for name in sorted(self._by_name)
            for vp in self._by_name[name].vps
        ]

    def geolocatable_vps(self) -> list[VantagePoint]:
        """VPs on non-multi-hop collectors (their location is trusted)."""
        return [
            vp
            for name in sorted(self._by_name)
            if not self._by_name[name].multihop
            for vp in self._by_name[name].vps
        ]

    def multihop_vps(self) -> list[VantagePoint]:
        """VPs on multi-hop collectors (location unknown; paths dropped)."""
        return [
            vp
            for name in sorted(self._by_name)
            if self._by_name[name].multihop
            for vp in self._by_name[name].vps
        ]

    def vp_country(self, vp: VantagePoint) -> str | None:
        """Trusted VP country: the collector's, unless multi-hop."""
        collector = self._by_name[vp.collector]
        if collector.multihop:
            return None
        return collector.country

    def vp_asns(self) -> frozenset[int]:
        """All distinct ASNs hosting at least one VP."""
        return frozenset(vp.asn for vp in self.all_vps())

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Collector]:
        for name in sorted(self._by_name):
            yield self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
