"""BGP substrate: policy, propagation, collectors, RIBs, anomalies."""

from repro.bgp.announcement import Announcement, RibRecord
from repro.bgp.collectors import Collector, CollectorProject, CollectorSet, VantagePoint
from repro.bgp.policy import Route, RouteClass
from repro.bgp.propagation import (
    PropagationBasis,
    RoutingOutcome,
    adjacency_delta,
    propagate,
    propagate_all,
)
from repro.bgp.rib import RibDump, RibGenerationConfig, RibSeries, generate_rib_days
from repro.bgp.updates import (
    ChurnSummary,
    Update,
    UpdateKind,
    churn_profile,
    daily_updates,
    diff_ribs,
)
from repro.bgp.anomalies import AnomalyConfig, InjectionSummary, inject_anomalies

__all__ = [
    "AnomalyConfig",
    "Announcement",
    "ChurnSummary",
    "Collector",
    "CollectorProject",
    "CollectorSet",
    "InjectionSummary",
    "PropagationBasis",
    "RibDump",
    "RibGenerationConfig",
    "RibRecord",
    "RibSeries",
    "Route",
    "RouteClass",
    "RoutingOutcome",
    "Update",
    "UpdateKind",
    "VantagePoint",
    "adjacency_delta",
    "churn_profile",
    "daily_updates",
    "diff_ribs",
    "generate_rib_days",
    "inject_anomalies",
    "propagate",
    "propagate_all",
]
