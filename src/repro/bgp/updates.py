"""BGP UPDATE streams between RIB snapshots.

The public collectors the paper ingests publish both full RIB dumps and
incremental UPDATE archives. Our RIB series is snapshot-based; this
module derives the equivalent UPDATE stream — per vantage point, the
announcements and withdrawals that transform one day's RIB into the
next. Downstream uses: churn accounting (which prefixes the "unstable"
filter will reject and why), compact day-over-day serialisation, and
realism checks (update volume should be a small fraction of table
size, as it is for real collectors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.bgp.announcement import Announcement
from repro.bgp.collectors import VantagePoint
from repro.bgp.rib import RibSeries
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


class UpdateKind(enum.Enum):
    """BGP UPDATE message flavour."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True, slots=True)
class Update:
    """One UPDATE: a VP announces a (new or changed) path, or withdraws
    a prefix. Withdrawals carry no path."""

    kind: UpdateKind
    vp: VantagePoint
    prefix: Prefix
    path: ASPath | None = None

    def __post_init__(self) -> None:
        if self.kind is UpdateKind.ANNOUNCE and self.path is None:
            raise ValueError("announce without a path")
        if self.kind is UpdateKind.WITHDRAW and self.path is not None:
            raise ValueError("withdraw with a path")

    def __str__(self) -> str:
        if self.kind is UpdateKind.ANNOUNCE:
            return f"A {self.vp.ip} {self.prefix} [{self.path}]"
        return f"W {self.vp.ip} {self.prefix}"


def diff_ribs(
    before: Iterable[Announcement],
    after: Iterable[Announcement],
) -> Iterator[Update]:
    """The UPDATE stream turning ``before`` into ``after``.

    Keys on (VP IP, prefix): a route present only in ``after`` is an
    announcement, present only in ``before`` a withdrawal, and present
    in both with a different AS path an (implicit-withdraw) re-announce.
    Emission order is deterministic: sorted by VP IP, then prefix.
    """
    old: dict[tuple[str, Prefix], Announcement] = {
        (a.vp.ip, a.prefix): a for a in before
    }
    new: dict[tuple[str, Prefix], Announcement] = {
        (a.vp.ip, a.prefix): a for a in after
    }
    keys = sorted(
        set(old) | set(new), key=lambda key: (key[0], key[1].sort_key())
    )
    for key in keys:
        was = old.get(key)
        now = new.get(key)
        if was is None:
            assert now is not None
            yield Update(UpdateKind.ANNOUNCE, now.vp, now.prefix, now.path)
        elif now is None:
            yield Update(UpdateKind.WITHDRAW, was.vp, was.prefix)
        elif was.path != now.path:
            yield Update(UpdateKind.ANNOUNCE, now.vp, now.prefix, now.path)


def daily_updates(series: RibSeries, day: int) -> Iterator[Update]:
    """UPDATEs transforming day ``day-1``'s RIB into day ``day``'s."""
    if not 1 <= day < series.config.days:
        raise ValueError(f"day {day} outside 1..{series.config.days - 1}")
    return diff_ribs(series.announcements(day - 1), series.announcements(day))


@dataclass(frozen=True, slots=True)
class ChurnSummary:
    """Volume accounting for one day transition."""

    day: int
    announces: int
    withdraws: int
    table_size: int

    @property
    def churn_ratio(self) -> float:
        """Updates relative to table size (small for healthy tables)."""
        if self.table_size == 0:
            return 0.0
        return (self.announces + self.withdraws) / self.table_size


def churn_profile(series: RibSeries) -> list[ChurnSummary]:
    """Per-day update volumes across the whole series."""
    out: list[ChurnSummary] = []
    for day in range(1, series.config.days):
        announces = withdraws = 0
        for update in daily_updates(series, day):
            if update.kind is UpdateKind.ANNOUNCE:
                announces += 1
            else:
                withdraws += 1
        table_size = sum(1 for _ in series.announcements(day))
        out.append(ChurnSummary(day, announces, withdraws, table_size))
    return out
