"""Writers for the public-dataset artifacts (paper §1, contribution 5:
"a public dataset with the country-inferred AS Rankings, set of AS
paths used as input for the inferences, collector geolocations, and
IXP data").

Formats are deliberately boring: CSV for tables, JSON-lines for the
path set (one sanitized observation per line), and a JSON manifest
tying a release together.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.pipeline import PipelineResult
from repro.core.ranking import Ranking
from repro.core.registry import metric_names, paper_metrics
from repro.core.sanitize import FilterReport, PathSet


def export_rankings_csv(
    rankings: Iterable[Ranking], path: str | Path, k: int | None = None
) -> Path:
    """One CSV with every ranking's entries (long format)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "country", "rank", "asn", "value", "share"])
        for ranking in rankings:
            entries = ranking.entries if k is None else ranking.top(k)
            for entry in entries:
                writer.writerow([
                    ranking.metric,
                    ranking.country or "",
                    entry.rank,
                    entry.asn,
                    f"{entry.value:.6g}",
                    "" if entry.share is None else f"{entry.share:.6f}",
                ])
    return path


def export_pathset_jsonl(paths: PathSet, path: str | Path) -> Path:
    """The sanitized input paths, one JSON object per observation."""
    path = Path(path)
    with path.open("w") as handle:
        for record in paths.records:
            handle.write(json.dumps({
                "vp_ip": record.vp.ip,
                "vp_asn": record.vp.asn,
                "vp_country": record.vp_country,
                "collector": record.vp.collector,
                "prefix": str(record.prefix),
                "prefix_country": record.prefix_country,
                "addresses": record.addresses,
                "path": list(record.path.asns),
            }) + "\n")
    return path


def export_vp_locations_csv(result: PipelineResult, path: str | Path) -> Path:
    """Collector and VP geolocations (multi-hop VPs marked unlocated)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["vp_ip", "vp_asn", "collector", "project",
                         "collector_country", "multihop", "vp_country"])
        for collector in result.world.collectors:
            for vp in collector.vps:
                writer.writerow([
                    vp.ip, vp.asn, collector.name, collector.project.value,
                    collector.country, collector.multihop,
                    result.vp_geo.country(vp) or "",
                ])
    return path


def export_ixp_csv(result: PipelineResult, path: str | Path) -> Path:
    """The IXP data the paper's release includes: one row per exchange
    (collector site) with its country, multi-hop flag, member count,
    and the route-server ASN operating there (if any)."""
    path = Path(path)
    graph = result.world.graph
    route_servers = {
        graph.node(asn).registry_country: asn
        for asn in graph.route_servers()
    }
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ixp", "project", "country", "multihop",
                         "members", "route_server_asn"])
        for collector in result.world.collectors:
            writer.writerow([
                collector.name,
                collector.project.value,
                collector.country,
                collector.multihop,
                len(collector.vp_asns()),
                route_servers.get(collector.country, ""),
            ])
    return path


def export_filter_report(report: FilterReport, path: str | Path) -> Path:
    """The Table-1 accounting as JSON."""
    path = Path(path)
    payload = {
        "total": report.total,
        "accepted": report.accepted,
        "rejected": dict(report.rejected),
        "rows": [
            {"label": label, "count": count, "pct": pct}
            for label, count, pct in report.as_rows()
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def release_dataset(
    result: PipelineResult,
    directory: str | Path,
    countries: Iterable[str] = (),
    k: int | None = 100,
) -> dict[str, Path]:
    """Write the full reproducibility bundle to a directory.

    Includes the global baselines, the paper's four country metrics
    plus the per-country baselines for each requested country (all
    derived from the metric registry), the sanitized path set, VP
    geolocations, and the filtering report, plus a manifest.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    global_metrics = metric_names(tag="baseline", needs_country=False)
    country_metrics = paper_metrics() + metric_names(
        tag="baseline", needs_country=True
    )
    rankings = [result.ranking(metric) for metric in global_metrics]
    for country in countries:
        for metric in country_metrics:
            rankings.append(result.ranking(metric, country))
    written = {
        "rankings": export_rankings_csv(rankings, directory / "rankings.csv", k),
        "paths": export_pathset_jsonl(result.paths, directory / "paths.jsonl"),
        "vps": export_vp_locations_csv(result, directory / "vp_locations.csv"),
        "ixps": export_ixp_csv(result, directory / "ixps.csv"),
        "filter_report": export_filter_report(
            result.paths.report, directory / "filter_report.json"
        ),
    }
    manifest = {
        "world": result.world.name,
        "summary": result.world.summary(),
        "files": {key: path.name for key, path in written.items()},
        "metrics": [r.metric for r in rankings],
    }
    manifest_path = directory / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    written["manifest"] = manifest_path
    return written
