"""Recomputing rankings from a released dataset.

The paper's reproducibility promise is that third parties can rebuild
the rankings from the shared artifacts. This module delivers exactly
that: given the ``paths.jsonl`` a release bundle contains (sanitized
observations with VP/prefix countries and owned address counts), it
reconstructs a :class:`~repro.core.sanitize.PathSet` and recomputes any
metric — hegemony exactly (it needs only the paths), cones via
relationships *inferred from the released paths themselves*, since the
release carries no ground-truth relationship labels.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bgp.collectors import VantagePoint
from repro.core.ranking import Ranking
from repro.core.registry import MetricContext, get_spec, normalize_country
from repro.core.sanitize import FilterReport, PathRecord, PathSet, RelationshipOracle
from repro.core.views import (
    View,
    global_view,
    international_view,
    national_view,
    outbound_view,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.relationships.inference import InferredRelationships, infer_relationships


class ReplayError(ValueError):
    """Raised for malformed released path files."""

_REQUIRED_FIELDS = (
    "vp_ip", "vp_asn", "vp_country", "prefix", "prefix_country",
    "addresses", "path",
)


def load_pathset_jsonl(path: str | Path) -> PathSet:
    """Rebuild a PathSet from a released ``paths.jsonl``."""
    records: list[PathRecord] = []
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReplayError(f"{path}:{line_number}: bad JSON") from exc
            missing = [f for f in _REQUIRED_FIELDS if f not in entry]
            if missing:
                raise ReplayError(
                    f"{path}:{line_number}: missing fields {missing}"
                )
            records.append(
                PathRecord(
                    vp=VantagePoint(
                        ip=entry["vp_ip"],
                        asn=int(entry["vp_asn"]),
                        collector=entry.get("collector", "released"),
                    ),
                    vp_country=entry["vp_country"],
                    prefix=Prefix.parse(entry["prefix"]),
                    prefix_country=entry["prefix_country"],
                    path=ASPath(tuple(int(asn) for asn in entry["path"])),
                    addresses=int(entry["addresses"]),
                )
            )
    return PathSet(records=records, report=FilterReport())


class ReplaySession:
    """Recompute views and rankings from released paths only."""

    def __init__(
        self,
        paths: PathSet,
        oracle: RelationshipOracle | None = None,
        trim: float = 0.1,
    ) -> None:
        self.paths = paths
        self.trim = trim
        self._inferred: InferredRelationships | None = None
        self._oracle = oracle
        self._views: dict[tuple[str, str | None], View] = {}
        self._rankings: dict[tuple[str, str | None], Ranking] = {}

    @classmethod
    def from_file(cls, path: str | Path, trim: float = 0.1) -> "ReplaySession":
        """Open a released ``paths.jsonl``."""
        return cls(load_pathset_jsonl(path), trim=trim)

    @property
    def oracle(self) -> RelationshipOracle:
        """The relationship oracle: supplied, or inferred on first use."""
        if self._oracle is None:
            if self._inferred is None:
                self._inferred = infer_relationships(
                    record.path for record in self.paths.records
                )
            return self._inferred
        return self._oracle

    def view(self, kind: str, country: str | None = None) -> View:
        """Same view vocabulary as the pipeline."""
        country = normalize_country(country)
        key = (kind, country)
        if key not in self._views:
            if kind == "global":
                built = global_view(self.paths)
            elif kind == "national":
                built = national_view(self.paths, self._need_country(country))
            elif kind == "international":
                built = international_view(self.paths, self._need_country(country))
            elif kind == "outbound":
                built = outbound_view(self.paths, self._need_country(country))
            else:
                raise ValueError(f"unknown view kind {kind!r}")
            self._views[key] = built
        return self._views[key]

    @staticmethod
    def _need_country(country: str | None) -> str:
        if country is None:
            raise ValueError("this metric requires a country code")
        return country

    def ranking(self, metric: str, country: str | None = None) -> Ranking:
        """Recompute one metric from the released paths.

        Which metrics replay, which view each consumes, and how it is
        computed all come from the registry
        (:mod:`repro.core.registry`): ``spec.replayable`` gates the
        request (AHC needs registration countries the release does not
        carry; CTI is pinned non-replayable), and specs with
        ``needs_oracle=False`` (the AH family) never trigger
        relationship inference — they are exact from the paths alone.
        CC metrics use inferred relationships unless an oracle was
        supplied.
        """
        spec = get_spec(metric)
        if not spec.replayable:
            raise ValueError(
                f"metric {spec.name!r} cannot be replayed from released paths"
            )
        country = normalize_country(country) if spec.needs_country else None
        key = (spec.name, country)
        if key in self._rankings:
            return self._rankings[key]
        code = spec.require_country(country)
        built = spec.build(MetricContext(
            view=self.view(spec.view_kind, code),
            oracle=self.oracle if spec.needs_oracle else None,
            trim=self.trim,
            country=code,
        ))
        self._rankings[key] = built
        return built
