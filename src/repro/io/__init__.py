"""Dataset export: the artifacts the paper promises to share
(rankings, input AS paths, VP geolocations, filtering reports), plus an
MRT-style RIB dump format."""

from repro.io.mrt import MrtFormatError, dump_rib, dump_series, load_rib, read_header
from repro.io.replay import ReplayError, ReplaySession, load_pathset_jsonl
from repro.io.export import (
    export_filter_report,
    export_ixp_csv,
    export_pathset_jsonl,
    export_rankings_csv,
    export_vp_locations_csv,
    release_dataset,
)

__all__ = [
    "MrtFormatError",
    "ReplayError",
    "ReplaySession",
    "dump_rib",
    "dump_series",
    "export_filter_report",
    "export_ixp_csv",
    "export_pathset_jsonl",
    "export_rankings_csv",
    "export_vp_locations_csv",
    "load_pathset_jsonl",
    "load_rib",
    "read_header",
    "release_dataset",
]
