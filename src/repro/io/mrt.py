"""MRT-style RIB serialization.

Real pipelines ingest RouteViews/RIS ``TABLE_DUMP_V2`` MRT files; our
substrate produces :class:`~repro.bgp.announcement.Announcement`
streams. This module serialises a day's RIB into a compact gzip'd
JSON-lines format patterned after a parsed MRT dump (one RIB entry per
line: peer IP, peer ASN, prefix, AS path) and parses it back, so
downstream tooling — including the public-dataset release and any
external consumer — can work from files instead of a live simulator.

The format is intentionally self-describing and versioned:

    {"type": "header", "format": "repro-mrt", "version": 1,
     "day": 0, "collector_count": 3}
    {"type": "rib", "peer_ip": "…", "peer_asn": 13, "collector": "…",
     "prefix": "10.0.0.0/16", "path": [13, 10, 1]}
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.bgp.announcement import Announcement
from repro.bgp.collectors import VantagePoint
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

FORMAT_NAME = "repro-mrt"
FORMAT_VERSION = 1


class MrtFormatError(ValueError):
    """Raised for malformed or incompatible dump files."""


@dataclass(frozen=True, slots=True)
class MrtHeader:
    """Dump metadata from the header line."""

    day: int
    entry_count: int | None = None


def dump_rib(
    announcements: Iterable[Announcement],
    path: str | Path,
    day: int = 0,
) -> Path:
    """Write one day's announcements as a gzip'd MRT-style dump."""
    path = Path(path)
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "type": "header",
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "day": day,
        }) + "\n")
        for announcement in announcements:
            handle.write(json.dumps({
                "type": "rib",
                "peer_ip": announcement.vp.ip,
                "peer_asn": announcement.vp.asn,
                "collector": announcement.vp.collector,
                "prefix": str(announcement.prefix),
                "path": list(announcement.path.asns),
            }) + "\n")
            count += 1
        handle.write(json.dumps({"type": "trailer", "entries": count}) + "\n")
    return path


def read_header(path: str | Path) -> MrtHeader:
    """Read and validate only the dump header."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        first = json.loads(handle.readline())
    _validate_header(first)
    return MrtHeader(day=first["day"])


def load_rib(path: str | Path) -> Iterator[Announcement]:
    """Stream announcements back out of a dump, verifying the trailer."""
    count = 0
    saw_trailer = False
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise MrtFormatError(f"empty dump: {path}")
        _validate_header(json.loads(header_line))
        for line in handle:
            entry = json.loads(line)
            kind = entry.get("type")
            if kind == "trailer":
                saw_trailer = True
                if entry.get("entries") != count:
                    raise MrtFormatError(
                        f"trailer count {entry.get('entries')} != {count} entries"
                    )
                continue
            if kind != "rib":
                raise MrtFormatError(f"unexpected entry type {kind!r}")
            if saw_trailer:
                raise MrtFormatError("rib entry after trailer")
            count += 1
            yield Announcement(
                vp=VantagePoint(
                    ip=entry["peer_ip"],
                    asn=int(entry["peer_asn"]),
                    collector=entry.get("collector", "unknown"),
                ),
                prefix=Prefix.parse(entry["prefix"]),
                path=ASPath(tuple(int(asn) for asn in entry["path"])),
            )
    if not saw_trailer:
        raise MrtFormatError(f"truncated dump (no trailer): {path}")


def dump_series(series, directory: str | Path, stem: str = "rib") -> list[Path]:
    """Write every day of a :class:`~repro.bgp.rib.RibSeries` to a
    directory (``rib.day0.jsonl.gz`` …)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for day in range(series.config.days):
        path = directory / f"{stem}.day{day}.jsonl.gz"
        dump_rib(series.announcements(day), path, day)
        written.append(path)
    return written


def _validate_header(header: dict) -> None:
    if header.get("type") != "header" or header.get("format") != FORMAT_NAME:
        raise MrtFormatError(f"not a {FORMAT_NAME} dump: {header}")
    if header.get("version") != FORMAT_VERSION:
        raise MrtFormatError(
            f"unsupported {FORMAT_NAME} version {header.get('version')}"
        )
