"""MRT-style RIB serialization.

Real pipelines ingest RouteViews/RIS ``TABLE_DUMP_V2`` MRT files; our
substrate produces :class:`~repro.bgp.announcement.Announcement`
streams. This module serialises a day's RIB into a compact gzip'd
JSON-lines format patterned after a parsed MRT dump (one RIB entry per
line: peer IP, peer ASN, prefix, AS path) and parses it back, so
downstream tooling — including the public-dataset release and any
external consumer — can work from files instead of a live simulator.

The format is intentionally self-describing and versioned:

    {"type": "header", "format": "repro-mrt", "version": 1,
     "day": 0, "collector_count": 3}
    {"type": "rib", "peer_ip": "…", "peer_asn": 13, "collector": "…",
     "prefix": "10.0.0.0/16", "path": [13, 10, 1]}

Failure behavior: every malformed-input condition — a truncated or
corrupt gzip stream, an invalid JSON line, a rib entry with missing or
mistyped fields — surfaces as :class:`MrtFormatError` carrying the
file path and line number (never a raw ``EOFError`` or
``json.JSONDecodeError``). With ``strict=False``, malformed *lines*
are diverted to a :class:`repro.resilience.Quarantine` sink and
ingestion continues; only damage that makes the rest of the file
untrustworthy (bad header, corrupt stream) still aborts.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.bgp.announcement import Announcement
from repro.bgp.collectors import VantagePoint
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.quarantine import Quarantine

if TYPE_CHECKING:  # corruption injection is optional, type-only here
    from repro.resilience.faults import FaultPlan

FORMAT_NAME = "repro-mrt"
FORMAT_VERSION = 1

#: exceptions that mean "this line is not a well-formed rib entry"
_ENTRY_ERRORS = (KeyError, TypeError, ValueError, AttributeError)

#: exceptions a corrupt/truncated gzip stream surfaces while reading
_STREAM_ERRORS = (EOFError, OSError, UnicodeDecodeError)


class MrtFormatError(ValueError):
    """Raised for malformed or incompatible dump files."""


@dataclass(frozen=True, slots=True)
class MrtHeader:
    """Dump metadata from the header line."""

    day: int
    entry_count: int | None = None


def dump_rib(
    announcements: Iterable[Announcement],
    path: str | Path,
    day: int = 0,
) -> Path:
    """Write one day's announcements as a gzip'd MRT-style dump."""
    path = Path(path)
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "type": "header",
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "day": day,
        }) + "\n")
        for announcement in announcements:
            handle.write(json.dumps({
                "type": "rib",
                "peer_ip": announcement.vp.ip,
                "peer_asn": announcement.vp.asn,
                "collector": announcement.vp.collector,
                "prefix": str(announcement.prefix),
                "path": list(announcement.path.asns),
            }) + "\n")
            count += 1
        handle.write(json.dumps({"type": "trailer", "entries": count}) + "\n")
    return path


def read_header(path: str | Path) -> MrtHeader:
    """Read and validate only the dump header."""
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            line = handle.readline()
            if not line:
                raise MrtFormatError(f"{path}:1: empty dump")
            first = json.loads(line)
    except _STREAM_ERRORS as error:
        raise MrtFormatError(f"{path}:1: corrupt gzip stream: {error}") from error
    except json.JSONDecodeError as error:
        raise MrtFormatError(f"{path}:1: invalid header JSON: {error.msg}") from error
    _validate_header(first, path)
    return MrtHeader(day=first["day"])


def _parse_rib_entry(entry: dict) -> Announcement:
    """One rib line's announcement (raises on missing/mistyped fields)."""
    return Announcement(
        vp=VantagePoint(
            ip=entry["peer_ip"],
            asn=int(entry["peer_asn"]),
            collector=entry.get("collector", "unknown"),
        ),
        prefix=Prefix.parse(entry["prefix"]),
        path=ASPath(tuple(int(asn) for asn in entry["path"])),
    )


def load_rib(
    path: str | Path,
    strict: bool = True,
    quarantine: Quarantine | None = None,
    faults: "FaultPlan | None" = None,
    tracer: "AnyTracer" = NULL_TRACER,
) -> Iterator[Announcement]:
    """Stream announcements back out of a dump, verifying the trailer.

    ``strict=True`` (default) fails fast: any malformed input raises
    :class:`MrtFormatError` with the file path and line number.
    ``strict=False`` diverts malformed lines into ``quarantine`` (a
    fresh sink is used when none is passed) and keeps going; the
    trailer count is then reconciled against parsed + quarantined
    lines, so deterministic corruption yields deterministic counts.

    ``faults`` (a :class:`repro.resilience.FaultPlan` with a
    ``corrupt_rate``) deterministically mangles lines after the read —
    the hook the fault-injection suite uses to exercise this path.

    ``tracer`` mirrors every quarantined line into an
    ``io.quarantine.<reason>`` counter as it happens, so lenient-mode
    drop counts surface in the obs stage report instead of vanishing
    inside the sink.
    """
    path = Path(path)
    sink = quarantine if quarantine is not None else Quarantine()
    source = str(path)
    metrics = tracer.metrics
    count = 0
    skipped = 0
    line_no = 0
    saw_trailer = False

    def divert(reason: str, detail: str, raw: str = "") -> None:
        sink.add(source, line_no, reason, detail, raw)
        metrics.counter(f"io.quarantine.{reason}").inc()

    with gzip.open(path, "rt", encoding="utf-8") as handle:
        while True:
            line_no += 1
            try:
                line = handle.readline()
            except _STREAM_ERRORS as error:
                if strict:
                    raise MrtFormatError(
                        f"{path}:{line_no}: corrupt gzip stream: {error}"
                    ) from error
                divert("corrupt-stream", str(error))
                return
            if not line:
                break
            if faults is not None and faults.corrupts_line(line_no):
                line = faults.corrupt(line)
            if line_no == 1:
                try:
                    header = json.loads(line)
                except json.JSONDecodeError as error:
                    # a broken header means nothing else in the file
                    # can be trusted: fatal even when lenient
                    raise MrtFormatError(
                        f"{path}:1: invalid header JSON: {error.msg}"
                    ) from error
                _validate_header(header, path)
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                if strict:
                    raise MrtFormatError(
                        f"{path}:{line_no}: invalid JSON: {error.msg}"
                    ) from error
                divert("invalid-json", error.msg, line)
                skipped += 1
                continue
            kind = entry.get("type") if isinstance(entry, dict) else None
            if kind == "trailer":
                saw_trailer = True
                declared = entry.get("entries")
                expected = count if strict else count + skipped
                if declared != expected:
                    if strict:
                        raise MrtFormatError(
                            f"{path}:{line_no}: trailer count {declared} != "
                            f"{count} entries"
                        )
                    divert(
                        "trailer-mismatch",
                        f"declared {declared}, parsed {count}, "
                        f"quarantined {skipped}", line,
                    )
                continue
            if kind != "rib" or saw_trailer:
                reason = (
                    "rib entry after trailer" if saw_trailer
                    else f"unexpected entry type {kind!r}"
                )
                if strict:
                    raise MrtFormatError(f"{path}:{line_no}: {reason}")
                divert("bad-entry", reason, line)
                skipped += 1
                continue
            try:
                announcement = _parse_rib_entry(entry)
            except _ENTRY_ERRORS as error:
                if strict:
                    raise MrtFormatError(
                        f"{path}:{line_no}: malformed rib entry: {error!r}"
                    ) from error
                divert("bad-entry", repr(error), line)
                skipped += 1
                continue
            count += 1
            yield announcement
    if not saw_trailer:
        if strict:
            raise MrtFormatError(f"{path}:{line_no}: truncated dump (no trailer)")
        divert("missing-trailer", f"{count} entries read")


def load_rib_windows(
    path: str | Path,
    window: int = 50_000,
    strict: bool = True,
    quarantine: Quarantine | None = None,
    faults: "FaultPlan | None" = None,
    tracer: "AnyTracer" = NULL_TRACER,
) -> Iterator[list[Announcement]]:
    """:func:`load_rib`, delivered as bounded-size batches.

    Yields lists of at most ``window`` announcements in file order —
    the chunked-ingestion shape the out-of-core spill path
    (:func:`repro.perf.spill.store_from_dumps`) feeds into incremental
    :class:`~repro.perf.pathstore.PathStore` construction, so no stage
    ever holds a dump-sized announcement list. Error handling,
    quarantine diversion, and the ``io.quarantine.*`` counters are
    exactly :func:`load_rib`'s (the stream is shared underneath).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    batch: list[Announcement] = []
    for announcement in load_rib(
        path, strict=strict, quarantine=quarantine, faults=faults,
        tracer=tracer,
    ):
        batch.append(announcement)
        if len(batch) >= window:
            yield batch
            batch = []
    if batch:
        yield batch


def dump_series(series, directory: str | Path, stem: str = "rib") -> list[Path]:
    """Write every day of a :class:`~repro.bgp.rib.RibSeries` to a
    directory (``rib.day0.jsonl.gz`` …), one lazily-streamed day at a
    time (:meth:`~repro.bgp.rib.RibSeries.days`)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for dump in series.days():
        path = directory / f"{stem}.day{dump.day}.jsonl.gz"
        dump_rib(dump, path, dump.day)
        written.append(path)
    return written


def _validate_header(header: object, path: str | Path) -> None:
    if not isinstance(header, dict):
        raise MrtFormatError(f"{path}:1: not a {FORMAT_NAME} dump: {header!r}")
    if header.get("type") != "header" or header.get("format") != FORMAT_NAME:
        raise MrtFormatError(f"{path}:1: not a {FORMAT_NAME} dump: {header}")
    if header.get("version") != FORMAT_VERSION:
        raise MrtFormatError(
            f"{path}:1: unsupported {FORMAT_NAME} version {header.get('version')}"
        )
