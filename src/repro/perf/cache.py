"""Cross-metric intermediate caching for the ranking sweep.

Two layers, both hanging off :class:`repro.core.pipeline.PipelineResult`:

* :class:`SuffixCache` — transit suffixes memoised per unique
  ``(path, oracle)``. The cone metrics (CC*) and CTI both walk the same
  suffixes; paths repeat across records (one VP announces many prefixes
  over the same AS path) and across views (a record is in the global
  view *and* in one country's national or international view), so a
  single sweep hits the same suffix many times.

* :class:`ViewComputation` — per-view intermediates shared between
  metric families: the AS-level customer cones and cone address
  closure (CC*), the per-VP betweenness table and AS universe that the
  hegemony estimator's step 1 produces (AH*), and the view's total
  address denominator (CC* and CTI both divide by it).

Both layers report hit/miss counters into the pipeline's metrics
registry (``perf.suffix.hit`` / ``perf.suffix.miss`` and
``perf.view.hit`` / ``perf.view.miss``) so a traced sweep shows exactly
how much recomputation the cache absorbed.

Determinism: a cache never changes *what* is computed, only how often —
every product is the exact object the naive code path would have built
(the equivalence tests in ``tests/perf/test_cache.py`` compare them
value-for-value).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.cone import (
    cone_addresses,
    cones_from_suffixes,
    transit_suffix,
)
from repro.core.cti import per_vp_transit
from repro.core.hegemony import (
    hegemony_scores,
    per_vp_scores,
    trimmed_scores_sparse,
    validate_trim,
)
from repro.core.sanitize import PathRecord, RelationshipOracle
from repro.core.views import View
from repro.net.aspath import ASPath
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:
    from repro.perf.pathstore import PathStore


class SuffixCache:
    """Memoised ``transit_suffix`` bound to one relationship oracle.

    ``table`` is the raw ``path → suffix`` dict; hot loops may read it
    directly and fall back to calling the cache on a miss."""

    __slots__ = (
        "oracle", "table", "_p2c", "_store", "_starts", "_hits", "_misses",
    )

    def __init__(
        self,
        oracle: RelationshipOracle,
        tracer: AnyTracer = NULL_TRACER,
        store: "PathStore | None" = None,
    ) -> None:
        self.oracle = oracle
        self.table: dict[ASPath, tuple[int, ...]] = {}
        # Oracles exposing their provider→customer pairs as a flat edge
        # set (ASGraph, InferredRelationships) let the miss path test
        # links by set membership instead of a method call per link.
        edges = getattr(oracle, "p2c_edges", None)
        self._p2c: frozenset[tuple[int, int]] | None = (
            edges() if edges is not None else None
        )
        #: optional SoA store over the result's records: misses on its
        #: paths slice from one vectorized suffix-start pass instead of
        #: scanning the path backward link by link
        self._store = store if self._p2c is not None else None
        self._starts: list[int] | None = None
        metrics = tracer.metrics
        self._hits = metrics.counter("perf.suffix.hit")
        self._misses = metrics.counter("perf.suffix.miss")

    def __len__(self) -> int:
        return len(self.table)

    def _compute(self, path: ASPath) -> tuple[int, ...]:
        p2c = self._p2c
        if p2c is None:
            return transit_suffix(path, self.oracle)
        store = self._store
        if store is not None:
            pid = store.path_ids.get(path)
            if pid is not None:
                if self._starts is None:
                    self._starts = store.suffix_starts(p2c)
                offset = int(store.offsets[pid])
                end = offset + int(store.lengths[pid])
                return tuple(
                    store.token_list()[offset + self._starts[pid]:end]
                )
        asns = path.asns
        start = len(asns) - 1
        for index in range(len(asns) - 2, -1, -1):
            if (asns[index], asns[index + 1]) in p2c:
                start = index
            else:
                break
        return asns[start:]

    def __call__(self, path: ASPath) -> tuple[int, ...]:
        """The transit suffix of ``path`` under the bound oracle."""
        cached = self.table.get(path)
        if cached is not None:
            self._hits.inc()
            return cached
        self._misses.inc()
        suffix = self._compute(path)
        self.table[path] = suffix
        return suffix

    def resolve_many(
        self, records: Iterable[PathRecord]
    ) -> list[tuple[int, ...]]:
        """Each record's transit suffix, aligned with the input order.

        One tight pass over the raw table (hit/miss counters are updated
        in bulk) — shared by every per-record consumer on the engine
        path, so a view's suffixes are resolved once per sweep.
        """
        table = self.table
        compute = self._compute
        suffixes: list[tuple[int, ...]] = []
        append = suffixes.append
        hits = 0
        for record in records:
            path = record.path
            suffix = table.get(path)
            if suffix is None:
                suffix = compute(path)
                table[path] = suffix
            else:
                hits += 1
            append(suffix)
        self._hits.inc(hits)
        self._misses.inc(len(suffixes) - hits)
        return suffixes

    def unique_suffixes(
        self, records: Iterable[PathRecord]
    ) -> set[tuple[int, ...]]:
        """The distinct transit suffixes across the records' paths —
        the input to order-insensitive consumers like
        :func:`repro.core.cone.cones_from_suffixes`, which deduplicated
        suffixes feed without changing the result.
        """
        return set(self.resolve_many(records))


class ViewComputation:
    """Lazily-computed, memoised intermediates for one view.

    One instance per (view, oracle) pair; the pipeline result keeps a
    table of them keyed like its view table, so CCI/AHI/CTI on the same
    international view share a single instance (and therefore a single
    suffix walk, cone closure, per-VP table, and address total).
    """

    __slots__ = (
        "view", "oracle", "suffix_of", "_hits", "_misses",
        "_total_addresses", "_cones", "_cone_addresses", "_per_vp",
        "_hegemony", "_cti", "_profile", "_suffix_list",
        "_origin_records", "_local_hegemony",
    )

    def __init__(
        self,
        view: View,
        oracle: RelationshipOracle,
        suffix_of: SuffixCache | None = None,
        tracer: AnyTracer = NULL_TRACER,
    ) -> None:
        self.view = view
        self.oracle = oracle
        #: the shared suffix resolver (falls back to a private cache so
        #: a standalone ViewComputation still dedupes within the view)
        self.suffix_of = (
            suffix_of if suffix_of is not None else SuffixCache(oracle, tracer)
        )
        metrics = tracer.metrics
        self._hits = metrics.counter("perf.view.hit")
        self._misses = metrics.counter("perf.view.miss")
        self._total_addresses: int | None = None
        self._cones: dict[int, set[int]] | None = None
        self._cone_addresses: dict[int, int] | None = None
        self._per_vp: dict[str, tuple] = {}
        self._hegemony: dict[tuple[float, str], dict[int, float]] = {}
        self._cti: dict[float, dict[int, float]] = {}
        self._profile: tuple[dict[int, int], int, bool] | None = None
        self._suffix_list: list[tuple[int, ...]] | None = None
        self._origin_records: dict[int, tuple[PathRecord, ...]] | None = None
        self._local_hegemony: dict[tuple[int, float], dict[int, float]] = {}

    def _prefix_profile(self) -> tuple[dict[int, int], int, bool]:
        """One walk over the records shared by the address total and the
        cone closure: per-origin owned-address totals, the view's address
        total, and whether every prefix carried a single (origin,
        addresses) pair — always true of pipeline output. An
        inconsistent view (MOAS prefix or conflicting weights) reports
        ``consistent=False`` and its callers fall back to the exact
        naive computations.
        """
        if self._profile is None:
            per_prefix: dict = {}
            origin_addresses: dict[int, int] = {}
            consistent = True
            for record in self.view.records:
                prefix = record.prefix
                origin = record.path.origin
                addresses = record.addresses
                seen = per_prefix.get(prefix)
                if seen is None:
                    per_prefix[prefix] = (origin, addresses)
                    origin_addresses[origin] = (
                        origin_addresses.get(origin, 0) + addresses
                    )
                elif seen[0] != origin or seen[1] != addresses:
                    consistent = False
                    break
            total = (
                sum(addresses for _, addresses in per_prefix.values())
                if consistent else 0
            )
            self._profile = (origin_addresses, total, consistent)
        return self._profile

    def total_addresses(self) -> int:
        """The view's distinct destination address total (memoised)."""
        if self._total_addresses is None:
            self._misses.inc()
            _, total, consistent = self._prefix_profile()
            self._total_addresses = (
                total if consistent else self.view.total_addresses()
            )
        else:
            self._hits.inc()
        return self._total_addresses

    def cones(self) -> dict[int, set[int]]:
        """AS-level customer cones over the view (memoised).

        Accumulated from the view's *distinct* transit suffixes — the
        cone updates are idempotent per suffix, so the result is exactly
        :func:`repro.core.cone.customer_cones` with the per-record
        duplicate work skipped.
        """
        if self._cones is None:
            self._misses.inc()
            self._cones = cones_from_suffixes(set(self.record_suffixes()))
        else:
            self._hits.inc()
        return self._cones

    def record_suffixes(self) -> list[tuple[int, ...]]:
        """Each view record's transit suffix, resolved once through the
        shared cache and memoised (cones and CTI both consume it)."""
        if self._suffix_list is None:
            self._suffix_list = self.suffix_of.resolve_many(self.view.records)
        return self._suffix_list

    def cone_addresses(self) -> dict[int, int]:
        """Cone address closure over the view (memoised; reuses the
        AS-level cones)."""
        if self._cone_addresses is None:
            self._misses.inc()
            self._cone_addresses = self._closure_addresses()
        else:
            self._hits.inc()
        return self._cone_addresses

    def _closure_addresses(self) -> dict[int, int]:
        """Closure cone addresses without materialising prefix sets.

        When every prefix in the view carries a single (origin, address
        count) pair, the cone members' prefix sets are disjoint, so each
        AS's closure total is the sum of its members' per-origin address
        totals (see :meth:`_prefix_profile`). A view that violates that
        falls back to the exact union-based
        :func:`repro.core.cone.cone_addresses`.
        """
        origin_addresses, _, consistent = self._prefix_profile()
        if not consistent:
            return cone_addresses(
                self.view.records, self.oracle, self.suffix_of, self.cones()
            )
        # Sum over the smaller side: a big cone holds many ASes that
        # originate nothing in-view, so testing the (few) in-view
        # origins against its member set beats probing every member.
        get = origin_addresses.get
        origin_items = list(origin_addresses.items())
        pivot = len(origin_items)
        totals: dict[int, int] = {}
        for asn, members in self.cones().items():
            size = len(members)
            if size == 1:
                totals[asn] = get(asn, 0)
            elif size <= pivot:
                totals[asn] = sum(get(member, 0) for member in members)
            else:
                totals[asn] = sum(
                    count for origin, count in origin_items if origin in members
                )
        return totals

    def origin_records(self) -> dict[int, tuple[PathRecord, ...]]:
        """The view's records bucketed by origin AS (memoised).

        One walk over the records, shared by every AHC country in a
        sweep — the naive path re-scans all records per country.
        Buckets preserve record order, so any per-origin consumer sees
        exactly the records the naive filter would have produced.
        """
        if self._origin_records is None:
            self._misses.inc()
            buckets: dict[int, list[PathRecord]] = {}
            for record in self.view.records:
                buckets.setdefault(record.origin, []).append(record)
            self._origin_records = {
                origin: tuple(records) for origin, records in buckets.items()
            }
        else:
            self._hits.inc()
        return self._origin_records

    def local_hegemony(self, origin: int, trim: float) -> dict[int, float]:
        """IHR's per-origin network dependency (AHC's step 1): hegemony
        over the paths toward one origin AS, memoised per
        ``(origin, trim)`` — the table every AHC weighting variant and
        repeated sweep shares."""
        validate_trim(trim)
        key = (origin, trim)
        cached = self._local_hegemony.get(key)
        if cached is None:
            self._misses.inc()
            bucket = self.origin_records().get(origin, ())
            cached = hegemony_scores(bucket, trim) if bucket else {}
            self._local_hegemony[key] = cached
        else:
            self._hits.inc()
        return cached

    def per_vp_hegemony(
        self, weighting: str = "addresses"
    ) -> tuple[dict[str, dict[int, float]], set[int]]:
        """Step 1 of the hegemony estimator — the per-VP betweenness
        table and AS universe — memoised per weighting."""
        cached = self._per_vp.get(weighting)
        if cached is None:
            self._misses.inc()
            cached = per_vp_scores(self.view.records, weighting)
            self._per_vp[weighting] = cached
        else:
            self._hits.inc()
        return cached

    def cti(self, trim: float) -> dict[int, float]:
        """The view's CTI table — step 1 over the shared suffix table,
        step 2 via the zero-skipping trimmed mean — memoised per trim.

        Identical to :func:`repro.core.cti.cti_scores`: the per-VP
        weights are scaled by the address total entry-by-entry (the same
        division the dense path performs), then trimmed exactly as the
        sparse hegemony step. An out-of-range trim is rejected up front
        (``validate_trim``), exactly as on the uncached path.
        """
        validate_trim(trim)
        cached = self._cti.get(trim)
        if cached is None:
            self._misses.inc()
            total = self.total_addresses()
            if total <= 0:
                cached = {}
            else:
                per_vp, universe = per_vp_transit(
                    self.view.records, self.oracle,
                    suffixes=self.record_suffixes(),
                )
                scaled = {
                    vp_ip: {asn: value / total for asn, value in vp_scores.items()}
                    for vp_ip, vp_scores in per_vp.items()
                }
                cached = trimmed_scores_sparse(scaled, universe, trim)
            self._cti[trim] = cached
        else:
            self._hits.inc()
        return cached

    def hegemony(
        self, trim: float, weighting: str = "addresses"
    ) -> dict[int, float]:
        """The full (trimmed) hegemony table for the view — step 1 from
        the per-VP cache, step 2 via the zero-skipping
        :func:`repro.core.hegemony.trimmed_scores_sparse` — memoised per
        (trim, weighting)."""
        key = (trim, weighting)
        cached = self._hegemony.get(key)
        if cached is None:
            self._misses.inc()
            per_vp, universe = self.per_vp_hegemony(weighting)
            cached = trimmed_scores_sparse(per_vp, universe, trim)
            self._hegemony[key] = cached
        else:
            self._hits.inc()
        return cached
