"""Deterministic process fan-out for the pipeline's two heavy loops.

Two fan-out points, both chunked over a ``ProcessPoolExecutor``:

* **route propagation** — ``propagate_all`` origins are independent
  single-origin BFS sweeps over a shared adjacency snapshot, a textbook
  embarrassingly-parallel loop;
* **stability trials** — every NDCG downsampling trial recomputes one
  metric on one VP-restricted view, independent of every other trial.

Determinism contract: results are merged back in the caller's input
order (``ProcessPoolExecutor.map`` preserves chunk order, and route
maps are re-keyed in ascending origin order), so the output is
identical for any ``workers`` value — ``workers=1`` never touches an
executor at all and stays the byte-identical serial path. The
equivalence tests in ``tests/perf/test_parallel.py`` pin this down.

Workers rebuild cheap per-chunk state (a :class:`ViewSlicer`, a suffix
cache) instead of shipping tracers across process boundaries; parent
process telemetry still records aggregate counts.

Both fan-outs run through :func:`repro.resilience.resilient_map`: a
killed worker respawns the pool and replays only the chunks without
results, a hung chunk hits the policy's per-chunk timeout, and an
exhausted chunk falls back to an in-process run — none of which can
change the output, because chunks are pure functions of their payload
merged by index (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence, TypeVar

from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy, resilient_map

if TYPE_CHECKING:  # worker-side imports stay lazy; these are type-only
    from repro.bgp.propagation import Route, _Adjacency
    from repro.core.ranking import Ranking
    from repro.core.sanitize import RelationshipOracle
    from repro.core.views import View

T = TypeVar("T")

#: one route-propagation work unit: (adjacency, origins, tiebreak,
#: salt, keep)
PropagatePayload = tuple[
    "_Adjacency", list[int], str, int, "frozenset[int] | None"
]

#: one stability work unit: (metric, view, oracle, trim, full ranking,
#: k, VP samples)
StabilityPayload = tuple[
    str, "View", "RelationshipOracle", float, "Ranking", int,
    "list[Iterable[str]]",
]


def chunked(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split into at most ``chunks`` contiguous, near-equal runs.

    Never returns empty chunks; order is preserved, so concatenating
    the result reproduces ``items``.
    """
    if chunks < 1:
        raise ValueError("need at least one chunk")
    total = len(items)
    chunks = min(chunks, total) or 1
    base, extra = divmod(total, chunks)
    out: list[list[T]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        if size:
            out.append(list(items[start:start + size]))
        start += size
    return out


# -- route propagation ---------------------------------------------------------


def _propagate_chunk(payload: PropagatePayload) -> dict[int, dict[int, "Route"]]:
    """Worker: best routes for one chunk of origins (top-level for
    pickling)."""
    adjacency, origins, tiebreak, salt, keep = payload
    from repro.bgp.propagation import _propagate

    out: dict[int, dict[int, "Route"]] = {}
    for origin in origins:
        routes = _propagate(adjacency, origin, tiebreak, salt)
        if keep is not None:
            routes = {
                asn: route for asn, route in routes.items() if asn in keep
            }
        out[origin] = routes
    return out


def propagate_origins(
    adjacency: "_Adjacency",
    origins: Sequence[int],
    tiebreak: str,
    salt: int,
    keep: frozenset[int] | set[int] | None,
    workers: int,
    tracer: AnyTracer = NULL_TRACER,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> dict[int, dict[int, "Route"]]:
    """Fan ``_propagate`` out over origin chunks; merge by origin.

    Returns ``{origin: {asn: Route}}`` keyed in ``origins`` order
    regardless of which worker finished first — or was retried, timed
    out, or replayed after a pool respawn (``policy``/``faults`` feed
    the :func:`repro.resilience.resilient_map` wrapper).
    """
    keep_frozen = frozenset(keep) if keep is not None else None
    payloads: list[PropagatePayload] = [
        (adjacency, chunk, tiebreak, salt, keep_frozen)
        for chunk in chunked(origins, workers)
    ]
    merged: dict[int, dict[int, "Route"]] = {}
    for part in resilient_map(
        "propagate", _propagate_chunk, payloads, workers,
        policy=policy, tracer=tracer, faults=faults,
    ):
        merged.update(part)
    return {origin: merged[origin] for origin in origins}


# -- stability trials ---------------------------------------------------------


def _stability_chunk(payload: StabilityPayload) -> list[float]:
    """Worker: NDCG scores for one chunk of downsampling trials."""
    metric, view, oracle, trim, full, k, samples = payload
    from repro.analysis.stability import metric_ranking
    from repro.core.ndcg import ndcg
    from repro.perf.index import ViewSlicer

    slicer = ViewSlicer(view)
    scores: list[float] = []
    for sample in samples:
        sample_view = slicer.restrict(sample)
        ranking = metric_ranking(metric, sample_view, oracle, trim)
        scores.append(ndcg(full, ranking, k))
    return scores


def stability_trials(
    metric: str,
    view: "View",
    oracle: "RelationshipOracle",
    trim: float,
    full: "Ranking",
    k: int,
    samples: Sequence[Iterable[str]],
    workers: int,
    tracer: AnyTracer = NULL_TRACER,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> list[float]:
    """Fan NDCG trials out over sample chunks; scores return in
    ``samples`` order (chunk results are merged by index, so retries
    and pool respawns never reorder them)."""
    payloads: list[StabilityPayload] = [
        (metric, view, oracle, trim, full, k, chunk)
        for chunk in chunked(samples, workers)
    ]
    scores: list[float] = []
    for part in resilient_map(
        "stability", _stability_chunk, payloads, workers,
        policy=policy, tracer=tracer, faults=faults,
    ):
        scores.extend(part)
    return scores
