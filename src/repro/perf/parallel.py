"""Deterministic process fan-out for the pipeline's two heavy loops.

Two fan-out points, both chunked over a worker pool:

* **route propagation** — ``propagate_all`` origins are independent
  single-origin BFS sweeps over a shared adjacency snapshot, a textbook
  embarrassingly-parallel loop;
* **stability trials** — every NDCG downsampling trial recomputes one
  metric on one VP-restricted view, independent of every other trial.

Heavy shared state (the adjacency snapshot, the view, the oracle) is
*broadcast* through :mod:`repro.perf.pool` — shipped to workers once
per pool instead of pickled into every chunk payload — and chunk
payloads carry only a token plus the per-chunk work list. Chunk count
is decoupled from worker count (``CHUNKS_PER_WORKER`` finer-grained
chunks per worker) so a slow chunk cannot leave the rest of the pool
idle at the tail of a sweep.

Determinism contract: results are merged back in the caller's input
order (chunk results are keyed by index, and route maps are re-keyed
in the caller's origin order), so the output is identical for any
``workers`` value *and any chunk granularity* — ``workers=1`` never
touches an executor at all and stays the byte-identical serial path.
The equivalence tests in ``tests/perf/test_parallel.py`` pin this
down.

Both fan-outs run through :func:`repro.resilience.resilient_map`: a
killed worker respawns the pool and replays only the chunks without
results, a hung chunk hits the policy's per-chunk timeout, and an
exhausted chunk falls back to an in-process run — none of which can
change the output, because chunks are pure functions of their payload
merged by index (see DESIGN.md §6). The broadcast registry is
installed parent-side too, so the serial fallback resolves tokens
identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence, TypeVar

from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy, resilient_map

if TYPE_CHECKING:  # worker-side imports stay lazy; these are type-only
    from repro.bgp.propagation import Route, _Adjacency
    from repro.core.ranking import Ranking
    from repro.core.sanitize import RelationshipOracle
    from repro.core.views import View
    from repro.perf.pool import WorkerPool

T = TypeVar("T")

#: chunks per worker — finer than 1 so stragglers rebalance; results
#: are merged by index, so granularity can never change the output
CHUNKS_PER_WORKER = 4

#: one route-propagation work unit: (adjacency token, origins,
#: tiebreak, salt, keep, relevant closure, capture holder sets?)
PropagatePayload = tuple[
    str, list[int], str, int, "frozenset[int] | None",
    "frozenset[int] | None", bool,
]

#: one stability work unit: (view token, oracle token, metric, trim,
#: full ranking, k, VP samples)
StabilityPayload = tuple[
    str, str, str, float, "Ranking", int, "list[Iterable[str]]",
]


def chunked(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split into at most ``chunks`` contiguous, near-equal runs.

    Never returns empty chunks; order is preserved, so concatenating
    the result reproduces ``items``.
    """
    if chunks < 1:
        raise ValueError("need at least one chunk")
    total = len(items)
    chunks = min(chunks, total) or 1
    base, extra = divmod(total, chunks)
    out: list[list[T]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        if size:
            out.append(list(items[start:start + size]))
        start += size
    return out


def chunk_count(total: int, workers: int) -> int:
    """How many chunks to cut ``total`` items into for ``workers``."""
    return max(1, min(total, workers * CHUNKS_PER_WORKER))


# -- route propagation ---------------------------------------------------------


def _propagate_chunk(
    payload: PropagatePayload,
) -> tuple[dict[int, dict[int, "Route"]], dict[int, frozenset[int]]]:
    """Worker: best routes (and optionally holder sets) for one chunk
    of origins (top-level for pickling)."""
    token, origins, tiebreak, salt, keep, relevant, capture = payload
    from repro.bgp.propagation import _propagate
    from repro.perf.pool import broadcast_get

    adjacency: "_Adjacency" = broadcast_get(token)
    routes_out: dict[int, dict[int, "Route"]] = {}
    holders_out: dict[int, frozenset[int]] = {}
    for origin in origins:
        routes = _propagate(
            adjacency, origin, tiebreak, salt, relevant=relevant
        )
        if capture:
            holders_out[origin] = frozenset(routes)
        if keep is not None:
            routes = {
                asn: route for asn, route in routes.items() if asn in keep
            }
        routes_out[origin] = routes
    return routes_out, holders_out


def propagate_origins(
    adjacency: "_Adjacency",
    origins: Sequence[int],
    tiebreak: str,
    salt: int,
    keep: frozenset[int] | set[int] | None,
    workers: int,
    tracer: AnyTracer = NULL_TRACER,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    relevant: frozenset[int] | None = None,
    capture_holders: bool = False,
    pool: "WorkerPool | None" = None,
) -> tuple[dict[int, dict[int, "Route"]], dict[int, frozenset[int]]]:
    """Fan ``_propagate`` out over origin chunks; merge by origin.

    Returns ``({origin: {asn: Route}}, {origin: holder set})`` keyed in
    ``origins`` order regardless of which worker finished first — or
    was retried, timed out, or replayed after a pool respawn
    (``policy``/``faults`` feed the
    :func:`repro.resilience.resilient_map` wrapper). The holder map is
    empty unless ``capture_holders`` (see
    :class:`repro.bgp.propagation.PropagationBasis`).

    The adjacency is broadcast to the pool once — chunk payloads carry
    only its token. Without an external ``pool`` a transient one is
    created for this call (still one broadcast, not one per chunk).
    """
    keep_frozen = frozenset(keep) if keep is not None else None
    own_pool = pool is None
    if own_pool:
        from repro.perf.pool import WorkerPool

        pool = WorkerPool(workers)
    try:
        token = pool.broadcast("adjacency", adjacency)
        payloads: list[PropagatePayload] = [
            (token, chunk, tiebreak, salt, keep_frozen, relevant,
             capture_holders)
            for chunk in chunked(origins, chunk_count(len(origins), workers))
        ]
        merged: dict[int, dict[int, "Route"]] = {}
        holders: dict[int, frozenset[int]] = {}
        for routes_part, holders_part in resilient_map(
            "propagate", _propagate_chunk, payloads, workers,
            policy=policy, tracer=tracer, faults=faults, pool=pool,
        ):
            merged.update(routes_part)
            holders.update(holders_part)
    finally:
        if own_pool:
            pool.close()
    return (
        {origin: merged[origin] for origin in origins},
        {origin: holders[origin] for origin in origins}
        if capture_holders else {},
    )


# -- stability trials ---------------------------------------------------------


def _stability_chunk(payload: StabilityPayload) -> list[float]:
    """Worker: NDCG scores for one chunk of downsampling trials."""
    view_token, oracle_token, metric, trim, full, k, samples = payload
    from repro.analysis.stability import metric_ranking
    from repro.core.ndcg import ndcg
    from repro.perf.index import ViewSlicer
    from repro.perf.pool import broadcast_get

    view: "View" = broadcast_get(view_token)
    oracle: "RelationshipOracle" = broadcast_get(oracle_token)
    slicer = ViewSlicer(view)
    scores: list[float] = []
    for sample in samples:
        sample_view = slicer.restrict(sample)
        ranking = metric_ranking(metric, sample_view, oracle, trim)
        scores.append(ndcg(full, ranking, k))
    return scores


def stability_trials(
    metric: str,
    view: "View",
    oracle: "RelationshipOracle",
    trim: float,
    full: "Ranking",
    k: int,
    samples: Sequence[Iterable[str]],
    workers: int,
    tracer: AnyTracer = NULL_TRACER,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    pool: "WorkerPool | None" = None,
) -> list[float]:
    """Fan NDCG trials out over sample chunks; scores return in
    ``samples`` order (chunk results are merged by index, so retries
    and pool respawns never reorder them). The view and oracle are
    broadcast once per pool, not pickled per chunk."""
    own_pool = pool is None
    if own_pool:
        from repro.perf.pool import WorkerPool

        pool = WorkerPool(workers)
    try:
        view_token = pool.broadcast("view", view)
        oracle_token = pool.broadcast("oracle", oracle)
        payloads: list[StabilityPayload] = [
            (view_token, oracle_token, metric, trim, full, k, chunk)
            for chunk in chunked(samples, chunk_count(len(samples), workers))
        ]
        scores: list[float] = []
        for part in resilient_map(
            "stability", _stability_chunk, payloads, workers,
            policy=policy, tracer=tracer, faults=faults, pool=pool,
        ):
            scores.extend(part)
    finally:
        if own_pool:
            pool.close()
    return scores
