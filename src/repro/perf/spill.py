"""Out-of-core PathStore: append-only spill files + an mmap-backed store.

The in-memory :class:`repro.perf.pathstore.PathStore` assumes the full
sanitized record list fits in RAM — fine at the catalog's ``small`` /
``default`` scale, structurally impossible for the ``large`` tier's
millions of records. This module is the spill half of the out-of-core
engine:

* :class:`SpillWriter` consumes accepted
  :class:`~repro.core.sanitize.PathRecord` objects one at a time and
  appends them to flat little-endian-native int64 column files
  (``tokens`` / ``offsets`` / ``lengths`` for the interned distinct
  paths, ``record_path`` / ``record_vp`` / ``record_prefix`` /
  ``record_origin`` per record) plus two small JSONL side tables
  (``vps.jsonl``, ``prefixes.jsonl``) holding the entities a record id
  points at. Peak writer memory is the interning dicts plus one bounded
  flush buffer — never the record set.
* :class:`MmapPathStore` maps those columns back read-only behind the
  exact :class:`~repro.perf.pathstore.PathStore` interface (it *is* a
  ``PathStore`` subclass), so :class:`~repro.perf.cache.SuffixCache`,
  :class:`~repro.perf.index.PathIndex`, and every ranking consumer work
  unchanged. Records rematerialize lazily per access; pair/origin
  buckets are built in one streaming pass over the mapped columns with
  ``array('q')`` buckets, not per-record Python lists.
* :func:`sanitize_to_store` drives the Table-1 sanitization stream into
  a spill directory and returns a :class:`~repro.core.sanitize.PathSet`
  whose records are the lazy mmap view — the drop-in replacement for
  :func:`repro.core.sanitize.sanitize` the pipeline uses when
  ``store_backend="mmap"``.

Crash safety: every ``flush_every`` accepted records the writer flushes
its buffers and atomically rewrites ``progress.json`` (consumed input
records, per-file element counts, the Table-1 report counts). Resuming
truncates every column file back to the last checkpoint, rebuilds the
interning dicts from the on-disk data, restores the report counts
(samples are not preserved across a resume), skips the already-consumed
input records — the input stream is seed-deterministic and replayable —
and continues; the sealed result is byte-identical to an uninterrupted
ingestion. ``manifest.json`` marks a sealed, complete spill.

Determinism: ids are allocated in first-appearance order exactly like
the in-memory store's interning loop, so ``tokens`` / ``offsets`` /
``lengths`` / ``record_*`` are value-identical to the arrays
``PathStore(records)`` would build — the backend-parity tests in
``tests/perf/test_spill.py`` pin rankings, suffix-cache contents, and
index buckets across all three backends.

Like the in-memory store, the mapped arrays are derived, read-only
state (the maps are ``ACCESS_READ``; lint rule R007 covers this class
too), and the store is never pickled wholesale: it reduces to its
directory path, so worker processes re-open the maps instead of
receiving copied pages (R010's broadcast discipline).
"""

from __future__ import annotations

import json
import mmap
import os
from array import array as _stdlib_array
from itertools import islice
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.bgp.announcement import RibRecord
from repro.bgp.collectors import VantagePoint
from repro.core.sanitize import (
    REJECT_CATEGORIES,
    FilterReport,
    PathRecord,
    PathSet,
    sanitize_stream,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.perf import pathstore as _ps
from repro.perf.pathstore import PathStore

if TYPE_CHECKING:
    from repro.geo.prefix_geo import PrefixGeolocation
    from repro.geo.vp_geo import VPGeolocator
    from repro.resilience.quarantine import Quarantine

FORMAT_NAME = "repro-spill"
FORMAT_VERSION = 1

#: int64 column files, in a fixed order (element counts per file:
#: tokens → token count; offsets/lengths → distinct paths; record_* →
#: records).
_COLUMNS = (
    "tokens", "offsets", "lengths",
    "record_path", "record_vp", "record_prefix", "record_origin",
)


class SpillFormatError(ValueError):
    """Raised for a malformed, torn, or incompatible spill directory."""


def _column_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.i64"


def _map_int64(path: Path):
    """Map one column file read-only (numpy memmap, or a stdlib mmap
    exposed as a ``memoryview.cast('q')`` when numpy is unavailable)."""
    size = path.stat().st_size
    if size % 8:
        raise SpillFormatError(f"{path}: size {size} is not a whole int64 column")
    np = _ps._np
    if np is not None:
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return np.memmap(path, dtype=np.int64, mode="r")
    if size == 0:
        return memoryview(b"").cast("q")
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    return memoryview(mapped).cast("q")


def _read_jsonl(path: Path) -> list[dict]:
    rows: list[dict] = []
    if not path.exists():
        return rows
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _report_payload(report: FilterReport) -> dict:
    return {
        "total": report.total,
        "accepted": report.accepted,
        "rejected": dict(report.rejected),
    }


def _restore_report(report: FilterReport, payload: dict) -> None:
    report.total = int(payload["total"])
    report.accepted = int(payload["accepted"])
    for category in REJECT_CATEGORIES:
        report.rejected[category] = int(payload["rejected"].get(category, 0))


class SpillWriter:
    """Append-only writer for one spill directory.

    Feed it accepted records via :meth:`add`; call
    :meth:`maybe_checkpoint` after each (it flushes and persists
    progress every ``flush_every`` accepted records) and :meth:`seal`
    when the input is exhausted. :meth:`prepare` turns a torn directory
    back into the state of its last checkpoint and reports how many
    *input* records the caller must skip.
    """

    def __init__(self, directory: str | Path, flush_every: int = 200_000) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_every = flush_every
        self.path_ids: dict[ASPath, int] = {}
        self._vp_ids: dict[str, int] = {}
        self._prefix_ids: dict[Prefix, int] = {}
        self.accepted = 0
        self.tokens_total = 0
        self._buffers: dict[str, _stdlib_array] = {
            name: _stdlib_array("q") for name in _COLUMNS
        }
        self._vp_lines: list[str] = []
        self._prefix_lines: list[str] = []

    # -- lifecycle ---------------------------------------------------------

    def sealed(self) -> bool:
        """Whether the directory already holds a complete spill."""
        return (self.directory / "manifest.json").exists()

    def prepare(self, report: FilterReport) -> int:
        """Make the directory consistent and load writer state.

        Returns the number of *input* records already consumed at the
        last checkpoint (0 for a fresh directory). Partial data past the
        checkpoint — including a directory that crashed before its first
        checkpoint — is truncated away; ``report`` is restored to the
        checkpointed Table-1 counts (samples are not preserved).
        """
        if self.sealed():
            raise SpillFormatError(f"{self.directory}: spill already sealed")
        progress_path = self.directory / "progress.json"
        if not progress_path.exists():
            self._reset_files()
            return 0
        progress = json.loads(progress_path.read_text(encoding="utf-8"))
        paths = int(progress["paths"])
        records = int(progress["records"])
        tokens = int(progress["tokens"])
        vps = int(progress["vps"])
        prefixes = int(progress["prefixes"])
        counts = {
            "tokens": tokens, "offsets": paths, "lengths": paths,
            "record_path": records, "record_vp": records,
            "record_prefix": records, "record_origin": records,
        }
        for name in _COLUMNS:
            path = _column_path(self.directory, name)
            wanted = counts[name] * 8
            if not path.exists() or path.stat().st_size < wanted:
                raise SpillFormatError(
                    f"{path}: shorter than its last checkpoint"
                )
            os.truncate(path, wanted)
        self._truncate_jsonl(self.directory / "vps.jsonl", vps)
        self._truncate_jsonl(self.directory / "prefixes.jsonl", prefixes)
        self._load_interning()
        if (
            len(self.path_ids) != paths
            or len(self._vp_ids) != vps
            or len(self._prefix_ids) != prefixes
            or self.tokens_total != tokens
        ):
            raise SpillFormatError(
                f"{self.directory}: checkpoint counts do not match on-disk data"
            )
        self.accepted = records
        _restore_report(report, progress["report"])
        return int(progress["consumed"])

    def _reset_files(self) -> None:
        for name in _COLUMNS:
            _column_path(self.directory, name).write_bytes(b"")
        for stem in ("vps.jsonl", "prefixes.jsonl"):
            (self.directory / stem).write_text("", encoding="utf-8")

    def _truncate_jsonl(self, path: Path, keep: int) -> None:
        rows = _read_jsonl(path)[:keep]
        if len(rows) < keep:
            raise SpillFormatError(f"{path}: shorter than its last checkpoint")
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")

    def _load_interning(self) -> None:
        """Rebuild the interning dicts from the (truncated) on-disk data."""
        tokens = _stdlib_array("q")
        offsets = _stdlib_array("q")
        lengths = _stdlib_array("q")
        for column, name in ((tokens, "tokens"), (offsets, "offsets"),
                             (lengths, "lengths")):
            data = _column_path(self.directory, name).read_bytes()
            column.frombytes(data)
        self.path_ids = {}
        for pid in range(len(offsets)):
            offset = offsets[pid]
            asns = tuple(tokens[offset:offset + lengths[pid]])
            self.path_ids[ASPath.trusted(asns)] = pid
        self.tokens_total = len(tokens)
        self._vp_ids = {
            row["ip"]: vid
            for vid, row in enumerate(_read_jsonl(self.directory / "vps.jsonl"))
        }
        self._prefix_ids = {
            Prefix.parse(row["prefix"]): fid
            for fid, row in enumerate(
                _read_jsonl(self.directory / "prefixes.jsonl")
            )
        }

    # -- ingestion ---------------------------------------------------------

    def add(self, record: PathRecord) -> None:
        """Append one accepted record (same interning order as
        ``PathStore(records)``)."""
        buffers = self._buffers
        path = record.path
        pid = self.path_ids.get(path)
        if pid is None:
            pid = self.path_ids[path] = len(self.path_ids)
            asns = path.asns
            buffers["offsets"].append(self.tokens_total)
            buffers["lengths"].append(len(asns))
            buffers["tokens"].extend(asns)
            self.tokens_total += len(asns)
        vp = record.vp
        vid = self._vp_ids.get(vp.ip)
        if vid is None:
            vid = self._vp_ids[vp.ip] = len(self._vp_ids)
            self._vp_lines.append(json.dumps({
                "ip": vp.ip, "asn": vp.asn, "collector": vp.collector,
                "country": record.vp_country,
            }, sort_keys=True))
        fid = self._prefix_ids.get(record.prefix)
        if fid is None:
            fid = self._prefix_ids[record.prefix] = len(self._prefix_ids)
            self._prefix_lines.append(json.dumps({
                "prefix": str(record.prefix),
                "country": record.prefix_country,
                "addresses": record.addresses,
            }, sort_keys=True))
        buffers["record_path"].append(pid)
        buffers["record_vp"].append(vid)
        buffers["record_prefix"].append(fid)
        buffers["record_origin"].append(path.asns[-1])
        self.accepted += 1

    def maybe_checkpoint(self, consumed: int, report: FilterReport) -> bool:
        """Checkpoint when the flush cadence is due; returns whether it did."""
        if self.accepted % self.flush_every:
            return False
        self.checkpoint(consumed, report)
        return True

    def checkpoint(self, consumed: int, report: FilterReport) -> None:
        """Flush every buffer, then atomically persist progress."""
        self._flush()
        progress = {
            "consumed": consumed,
            "records": self.accepted,
            "paths": len(self.path_ids),
            "tokens": self.tokens_total,
            "vps": len(self._vp_ids),
            "prefixes": len(self._prefix_ids),
            "report": _report_payload(report),
        }
        self._write_atomic("progress.json", progress)

    def seal(self, consumed: int, report: FilterReport) -> None:
        """Final checkpoint plus the manifest that marks completion."""
        self.checkpoint(consumed, report)
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "records": self.accepted,
            "paths": len(self.path_ids),
            "tokens": self.tokens_total,
            "vps": len(self._vp_ids),
            "prefixes": len(self._prefix_ids),
            "report": _report_payload(report),
        }
        self._write_atomic("manifest.json", manifest)

    def _flush(self) -> None:
        for name in _COLUMNS:
            buffer = self._buffers[name]
            if len(buffer):
                with open(_column_path(self.directory, name), "ab") as handle:
                    handle.write(buffer.tobytes())
                del buffer[:]
        for stem, lines in (("vps.jsonl", self._vp_lines),
                            ("prefixes.jsonl", self._prefix_lines)):
            if lines:
                with open(self.directory / stem, "a", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + "\n")
                lines.clear()

    def _write_atomic(self, stem: str, payload: dict) -> None:
        tmp = self.directory / (stem + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.directory / stem)


class _LazyRecords(Sequence):
    """Read-only record sequence rematerialized per access from the
    mapped columns (entities shared: one VantagePoint / Prefix / ASPath
    object per distinct id, so equal positions yield equal records)."""

    __slots__ = ("_store",)

    def __init__(self, store: "MmapPathStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.record_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        store = self._store
        count = store.record_count
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("record position out of range")
        vp, vp_country = store.vp_table[store.record_vp[index]]
        prefix, prefix_country, addresses = store.prefix_table[
            store.record_prefix[index]
        ]
        return PathRecord(
            vp=vp,
            vp_country=vp_country,
            prefix=prefix,
            prefix_country=prefix_country,
            path=store.paths[store.record_path[index]],
            addresses=addresses,
        )


class _AddressColumn(Sequence):
    """Per-record address counts resolved through the prefix side table
    (IPv6 counts exceed int64, so they never enter a flat column)."""

    __slots__ = ("_store",)

    def __init__(self, store: "MmapPathStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.record_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        store = self._store
        count = store.record_count
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("record position out of range")
        return store.prefix_table[store.record_prefix[index]][2]


class MmapPathStore(PathStore):
    """A sealed spill directory mapped read-only behind the PathStore
    interface.

    The flat columns are the mmap'd files themselves; the distinct-path
    tuple, the record sequence, and the pair/origin buckets are built
    lazily on first use (paths and buckets are bounded by distinct
    entities, never by raw record volume). Pickling reduces to the
    directory path, so a worker re-opens the maps instead of receiving
    copied array pages.
    """

    __slots__ = (
        "directory", "manifest", "record_vp", "record_prefix",
        "_vp_table", "_prefix_table", "_origin_memo",
    )

    def __init__(self, directory: str | Path) -> None:
        base = Path(directory)
        manifest_path = base / "manifest.json"
        if not manifest_path.exists():
            raise SpillFormatError(f"{base}: no manifest (spill not sealed)")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if (
            manifest.get("format") != FORMAT_NAME
            or manifest.get("version") != FORMAT_VERSION
        ):
            raise SpillFormatError(f"{base}: not a {FORMAT_NAME} v{FORMAT_VERSION} spill")
        self.directory = str(base)
        self.manifest = manifest
        self.tokens = _map_int64(_column_path(base, "tokens"))
        self.offsets = _map_int64(_column_path(base, "offsets"))
        self.lengths = _map_int64(_column_path(base, "lengths"))
        self.record_path = _map_int64(_column_path(base, "record_path"))
        self.record_vp = _map_int64(_column_path(base, "record_vp"))
        self.record_prefix = _map_int64(_column_path(base, "record_prefix"))
        self.record_origin = _map_int64(_column_path(base, "record_origin"))
        for name, length in (
            ("tokens", len(self.tokens)), ("offsets", len(self.offsets)),
            ("record_path", len(self.record_path)),
            ("record_vp", len(self.record_vp)),
            ("record_prefix", len(self.record_prefix)),
            ("record_origin", len(self.record_origin)),
        ):
            wanted = manifest["tokens"] if name == "tokens" else (
                manifest["paths"] if name == "offsets" else manifest["records"]
            )
            if length != wanted:
                raise SpillFormatError(
                    f"{base}/{name}.i64: {length} elements, manifest says {wanted}"
                )
        self._token_list = None
        self._pair_buckets = None
        self._starts_memo = None
        self._origin_memo: dict[int, _stdlib_array] | None = None
        self._vp_table: list[tuple[VantagePoint, str]] | None = None
        self._prefix_table: list[tuple[Prefix, str, object]] | None = None

    def __reduce__(self):
        # never ship mapped pages through a pickle: workers re-open
        return (type(self), (self.directory,))

    # -- side tables -------------------------------------------------------

    @property
    def vp_table(self) -> list[tuple[VantagePoint, str]]:
        """vp id → (VantagePoint, country), from ``vps.jsonl``."""
        if self._vp_table is None:
            self._vp_table = [
                (
                    VantagePoint(
                        ip=row["ip"], asn=int(row["asn"]),
                        collector=row["collector"],
                    ),
                    row["country"],
                )
                for row in _read_jsonl(Path(self.directory) / "vps.jsonl")
            ]
        return self._vp_table

    @property
    def prefix_table(self) -> list[tuple[Prefix, str, object]]:
        """prefix id → (Prefix, country, addresses)."""
        if self._prefix_table is None:
            self._prefix_table = [
                (Prefix.parse(row["prefix"]), row["country"], row["addresses"])
                for row in _read_jsonl(Path(self.directory) / "prefixes.jsonl")
            ]
        return self._prefix_table

    # -- lazily rebuilt PathStore surface ----------------------------------

    def __getattr__(self, name: str):
        # slots declared by PathStore but filled lazily here; __getattr__
        # only fires while the slot is still unset
        if name == "paths":
            token_list = self.token_list()
            paths = tuple(
                ASPath.trusted(tuple(
                    token_list[self.offsets[pid]:
                               self.offsets[pid] + self.lengths[pid]]
                ))
                for pid in range(len(self.offsets))
            )
            self.paths = paths
            return paths
        if name == "path_ids":
            ids = {path: pid for pid, path in enumerate(self.paths)}
            self.path_ids = ids
            return ids
        if name == "records":
            lazy = _LazyRecords(self)
            self.records = lazy  # type: ignore[assignment]
            return lazy
        if name == "record_addresses":
            column = _AddressColumn(self)
            self.record_addresses = column  # type: ignore[assignment]
            return column
        raise AttributeError(name)

    # -- grouping (streaming passes over the mapped columns) ---------------

    def pair_buckets(self):
        """Same first-appearance dict as the in-memory store, built from
        the id columns + side tables in one pass — no record objects."""
        if self._pair_buckets is None:
            self._pair_buckets = self._build_pair_buckets()
        return self._pair_buckets

    def _build_pair_buckets(self):
        vp_countries = [country for _, country in self.vp_table]
        prefix_countries = [country for _, country, _ in self.prefix_table]
        codes: dict[str, int] = {}
        for code in vp_countries + prefix_countries:
            codes.setdefault(code, len(codes))
        np = _ps._np
        buckets: dict[tuple[str, str], _stdlib_array] = {}
        if np is not None and len(self.record_path):
            width = len(codes) or 1
            vp_code = np.fromiter(
                (codes[code] for code in vp_countries),
                dtype=np.int64, count=len(vp_countries),
            )
            prefix_code = np.fromiter(
                (codes[code] for code in prefix_countries),
                dtype=np.int64, count=len(prefix_countries),
            )
            keys = vp_code[self.record_vp] * width + prefix_code[self.record_prefix]
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
            group_starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), boundaries)
            )
            names = list(codes)
            groups: list[tuple[_stdlib_array, tuple[str, str]]] = []
            for start, group in zip(
                group_starts.tolist(), np.split(order, boundaries)
            ):
                bucket = _stdlib_array("q")
                bucket.frombytes(
                    group.astype(np.int64, copy=False).tobytes()
                )
                key = int(sorted_keys[start])
                groups.append((bucket, (names[key // width], names[key % width])))
            # stable argsort keeps buckets ascending; re-keying by each
            # bucket's first position restores first-appearance order
            groups.sort(key=lambda item: item[0][0])
            return {pair: bucket for bucket, pair in groups}
        record_vp = self.record_vp
        record_prefix = self.record_prefix
        for position in range(self.record_count):
            pair = (
                vp_countries[record_vp[position]],
                prefix_countries[record_prefix[position]],
            )
            bucket = buckets.get(pair)
            if bucket is None:
                buckets[pair] = _stdlib_array("q", (position,))
            else:
                bucket.append(position)
        return buckets

    def origin_buckets(self):
        """Origin → ascending positions, as ``array('q')`` buckets
        (memoised: unlike the in-memory store, rebuilding is a full
        column pass)."""
        if self._origin_memo is not None:
            return self._origin_memo
        origins = self.record_origin
        np = _ps._np
        buckets: dict[int, _stdlib_array] = {}
        if np is not None and len(origins):
            order = np.argsort(origins, kind="stable")
            sorted_origins = origins[order]
            boundaries = np.flatnonzero(
                sorted_origins[1:] != sorted_origins[:-1]
            ) + 1
            group_starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), boundaries)
            )
            groups: list[tuple[_stdlib_array, int]] = []
            for start, group in zip(
                group_starts.tolist(), np.split(order, boundaries)
            ):
                bucket = _stdlib_array("q")
                bucket.frombytes(group.astype(np.int64, copy=False).tobytes())
                groups.append((bucket, int(sorted_origins[start])))
            groups.sort(key=lambda item: item[0][0])
            buckets = {origin: bucket for bucket, origin in groups}
        else:
            for position in range(len(origins)):
                key = int(origins[position])
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = _stdlib_array("q", (position,))
                else:
                    bucket.append(position)
        self._origin_memo = buckets
        return buckets


def open_spill(directory: str | Path) -> PathSet:
    """Re-open a sealed spill as a lazy :class:`PathSet` (report counts
    come from the manifest; rejection samples are not persisted)."""
    store = MmapPathStore(directory)
    report = FilterReport()
    _restore_report(report, store.manifest["report"])
    path_set = PathSet(records=store.records, report=report)
    path_set._store = store
    return path_set


def sanitize_to_store(
    records: Iterable[RibRecord],
    *,
    clique: frozenset[int],
    is_allocated: Callable[[int], bool],
    route_servers: frozenset[int],
    vp_geo: "VPGeolocator",
    prefix_geo: "PrefixGeolocation",
    directory: str | Path,
    tracer: AnyTracer = NULL_TRACER,
    flush_every: int = 200_000,
    resume: bool = True,
) -> PathSet:
    """:func:`repro.core.sanitize.sanitize`, spilled instead of held.

    Runs the identical Table-1 stream (same span, same counters, same
    report) but appends each accepted record to ``directory`` and hands
    back a :class:`PathSet` over the mapped columns, so peak memory is
    bounded by distinct entities + one flush buffer.

    ``resume=True`` (default) continues a torn previous ingestion from
    its last checkpoint — the caller must pass the same deterministic
    input stream — and returns the already-sealed result immediately
    when the directory is complete.
    """
    with tracer.span("sanitize") as span:
        report = FilterReport()
        writer = SpillWriter(directory, flush_every=flush_every)
        if resume and writer.sealed():
            path_set = open_spill(directory)
            report = path_set.report
        else:
            consumed = writer.prepare(report) if resume else 0
            if not resume:
                writer._reset_files()
            source = islice(records, consumed, None) if consumed else records
            pulled = consumed

            def counted() -> Iterator[RibRecord]:
                nonlocal pulled
                for record in source:
                    pulled += 1
                    yield record

            for accepted in sanitize_stream(
                counted(), clique, is_allocated, route_servers,
                vp_geo, prefix_geo, report,
            ):
                writer.add(accepted)
                writer.maybe_checkpoint(pulled, report)
            writer.seal(pulled, report)
            store = MmapPathStore(directory)
            path_set = PathSet(records=store.records, report=report)
            path_set._store = store
        span.set(
            input=report.total, output=report.accepted,
            records=len(path_set.records),
        )
        metrics = tracer.metrics
        metrics.counter("sanitize.input").inc(report.total)
        metrics.counter("sanitize.accepted").inc(report.accepted)
        for category in REJECT_CATEGORIES:
            metrics.counter(f"sanitize.dropped.{category}").inc(
                report.rejected[category]
            )
    return path_set


def store_from_dumps(
    dump_paths: Iterable[str | Path],
    *,
    clique: frozenset[int],
    is_allocated: Callable[[int], bool],
    route_servers: frozenset[int],
    vp_geo: "VPGeolocator",
    prefix_geo: "PrefixGeolocation",
    directory: str | Path,
    window: int = 50_000,
    strict: bool = False,
    quarantine: "Quarantine | None" = None,
    tracer: AnyTracer = NULL_TRACER,
    flush_every: int = 200_000,
) -> PathSet:
    """Windowed MRT ingestion into a spill store.

    Streams each dump through
    :func:`repro.io.mrt.load_rib_windows` (bounded batches; lenient
    lines land in ``quarantine`` and the ``io.quarantine.*`` counters)
    and sanitizes straight into ``directory`` — no materialized
    announcement list or :class:`PathSet` at any point. Each dump is
    treated as a self-contained single-day RIB (``days_present =
    total_days = 1``), so the multi-day "unstable" filter does not
    apply to file ingestion; day merging stays upstream in
    :class:`~repro.bgp.rib.RibSeries`.
    """
    from repro.io.mrt import load_rib_windows

    def stream() -> Iterator[RibRecord]:
        for path in dump_paths:
            for batch in load_rib_windows(
                path, window=window, strict=strict,
                quarantine=quarantine, tracer=tracer,
            ):
                for announcement in batch:
                    yield RibRecord(
                        vp=announcement.vp,
                        prefix=announcement.prefix,
                        path=announcement.path,
                        days_present=1,
                        total_days=1,
                    )

    return sanitize_to_store(
        stream(),
        clique=clique, is_allocated=is_allocated,
        route_servers=route_servers, vp_geo=vp_geo, prefix_geo=prefix_geo,
        directory=directory, tracer=tracer, flush_every=flush_every,
    )
