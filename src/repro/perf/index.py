"""A shared path index over the sanitized :class:`PathSet`.

Every view in :mod:`repro.core.views` is a linear filter over *all*
sanitized records, so a sweep across many (metric, country) pairs pays
O(all records) per view. The :class:`PathIndex` pays that scan once:
records are bucketed by ``(vp_country, prefix_country)`` up front —
the only map view construction needs — and view construction then
touches only the selected buckets. The secondary maps (by VP IP, by
origin, ``origin → prefixes``, per-prefix addresses) are each built
lazily on first use, so a ranking sweep never pays for lookups it does
not perform.

Invariant: an indexed view is **identical** to its naive counterpart —
same name, same country, and the same records in the same (original
``PathSet``) order — because buckets store record positions and every
selection is emitted in ascending position order. The equivalence tests
in ``tests/perf/test_index.py`` pin this down.

:class:`ViewSlicer` is the same idea for VP downsampling: it buckets
one view's records by VP IP so the stability analysis
(:mod:`repro.analysis.stability`) can materialise hundreds of trial
views as merged index slices instead of re-filtering the view per
trial.
"""

from __future__ import annotations

from operator import attrgetter
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.sanitize import PathRecord, PathSet
from repro.core.views import View, ip_sort_key
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:
    from repro.perf.pathstore import PathStore

#: View kinds the index can build, with their (vp_in, prefix_in)
#: country-membership selectors relative to the target country.
VIEW_KINDS = ("national", "international", "outbound", "global")


class PathIndex:
    """Bucketed record lookups for O(selected) view construction."""

    __slots__ = (
        "records", "_store", "_by_pair", "_by_vp", "_by_origin",
        "_origin_prefixes", "_prefix_addresses",
    )

    def __init__(
        self,
        records: Sequence[PathRecord],
        store: "PathStore | None" = None,
    ) -> None:
        # lists/iterables are snapshotted; an immutable lazy sequence
        # (the mmap store's record view) is kept as-is so indexing a
        # spilled PathSet never materializes the full record list
        if isinstance(records, (list, tuple)) or not isinstance(
            records, Sequence
        ):
            records = tuple(records)
        self.records: Sequence[PathRecord] = records
        #: optional SoA mirror of *exactly these* records; when present
        #: the pair and origin buckets come from its shared groupings
        #: instead of per-index record walks
        self._store = store
        #: (vp_country, prefix_country) → ascending record positions
        self._by_pair: dict[tuple[str, str], list[int]] = {}
        self._by_vp: dict[str, list[int]] | None = None
        self._by_origin: dict[int, list[int]] | None = None
        self._origin_prefixes: dict[int, set[Prefix]] | None = None
        self._prefix_addresses: dict[Prefix, int] | None = None
        if store is not None:
            # the store memoises the same first-appearance bucket dict,
            # so every index over one PathSet shares a single scan; the
            # buckets are read-only on both sides
            self._by_pair = store.pair_buckets()
            return
        by_pair = self._by_pair
        # attrgetter materialises the (vp_country, prefix_country) key
        # tuple in C — this loop is the only full-record scan a ranking
        # sweep pays, so it is kept as lean as possible.
        pair_of = attrgetter("vp_country", "prefix_country")
        for position, pair in enumerate(map(pair_of, self.records)):
            bucket = by_pair.get(pair)
            if bucket is None:
                by_pair[pair] = [position]
            else:
                bucket.append(position)

    @classmethod
    def from_paths(cls, paths: PathSet) -> "PathIndex":
        """Index a sanitized path set (one O(n) pass), sharing its SoA
        store so the origin buckets are array walks."""
        return cls(paths.records, store=paths.store())

    # -- lazy secondary maps --------------------------------------------------

    def _vp_buckets(self) -> dict[str, list[int]]:
        """VP IP → ascending record positions (built on first use)."""
        if self._by_vp is None:
            by_vp: dict[str, list[int]] = {}
            for position, record in enumerate(self.records):
                ip = record.vp.ip
                bucket = by_vp.get(ip)
                if bucket is None:
                    by_vp[ip] = [position]
                else:
                    bucket.append(position)
            self._by_vp = by_vp
        return self._by_vp

    def _origin_buckets(self) -> dict[int, list[int]]:
        """Origin ASN → ascending record positions (built on first use,
        together with the origin → prefixes map).

        With a :class:`~repro.perf.pathstore.PathStore` attached the
        buckets come from its flat origin column (same dict, grouped in
        C instead of a per-record attribute walk); the record objects
        are only touched for the prefix sets.
        """
        if self._by_origin is None:
            records = self.records
            if self._store is not None:
                by_origin = self._store.origin_buckets()
                origin_prefixes = {
                    origin: {records[position].prefix for position in bucket}
                    for origin, bucket in by_origin.items()
                }
            else:
                by_origin = {}
                origin_prefixes = {}
                for position, record in enumerate(records):
                    origin = record.path.origin
                    bucket = by_origin.get(origin)
                    if bucket is None:
                        by_origin[origin] = [position]
                        origin_prefixes[origin] = {record.prefix}
                    else:
                        bucket.append(position)
                        origin_prefixes[origin].add(record.prefix)
            self._by_origin = by_origin
            self._origin_prefixes = origin_prefixes
        return self._by_origin

    @property
    def origin_prefixes(self) -> dict[int, set[Prefix]]:
        """Origin ASN → distinct prefixes it originates (observed)."""
        self._origin_buckets()
        assert self._origin_prefixes is not None
        return self._origin_prefixes

    @property
    def prefix_addresses(self) -> dict[Prefix, int]:
        """Prefix → owned address count carried on its records."""
        if self._prefix_addresses is None:
            self._prefix_addresses = {
                record.prefix: record.addresses for record in self.records
            }
        return self._prefix_addresses

    # -- bucket queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def countries(self) -> list[str]:
        """Destination countries present, sorted (mirrors PathSet)."""
        return sorted({prefix_cc for _, prefix_cc in self._by_pair})

    def vp_ips(self) -> list[str]:
        """All VP IPs present, ordered by parsed address."""
        return sorted(self._vp_buckets(), key=ip_sort_key)

    def indices(self, kind: str, country: str | None = None) -> list[int]:
        """Ascending record positions selected by a view kind.

        ``national`` is a single-bucket lookup; ``international`` /
        ``outbound`` merge the matching country-pair buckets; ``global``
        is every position.
        """
        if kind not in VIEW_KINDS:
            raise ValueError(f"unknown view kind {kind!r}")
        if kind == "global":
            return list(range(len(self.records)))
        if country is None:
            raise ValueError(f"view kind {kind!r} requires a country code")
        if kind == "national":
            return list(self._by_pair.get((country, country), ()))
        if kind == "international":
            selected = [
                bucket
                for (vp_cc, prefix_cc), bucket in self._by_pair.items()
                if prefix_cc == country and vp_cc != country
            ]
        else:
            selected = [
                bucket
                for (vp_cc, prefix_cc), bucket in self._by_pair.items()
                if vp_cc == country and prefix_cc != country
            ]
        merged: list[int] = []
        for bucket in selected:
            merged.extend(bucket)
        merged.sort()
        return merged

    def origin_indices(self, origins: Iterable[int]) -> list[int]:
        """Ascending positions of records toward the given origin ASes
        (the AHC / destination-view selector)."""
        by_origin = self._origin_buckets()
        merged: list[int] = []
        for origin in set(origins):
            merged.extend(by_origin.get(origin, ()))
        merged.sort()
        return merged

    # -- view construction ------------------------------------------------------

    def view(
        self,
        kind: str,
        country: str | None = None,
        tracer: AnyTracer = NULL_TRACER,
    ) -> View:
        """Build a view from bucket lookups.

        Produces the same :class:`View` (name, country, record order)
        as the naive builders in :mod:`repro.core.views`, under the
        same ``views`` span (tagged ``indexed=True``).
        """
        name = kind if country is None else f"{kind}:{country}"
        with tracer.span(
            "views", kind=kind, country=country, input=len(self.records),
            indexed=True,
        ) as span:
            if kind == "global":
                records = self.records
            else:
                selected = self.indices(kind, country)
                all_records = self.records
                records = tuple([all_records[i] for i in selected])
            view = View(name=name, country=country, records=records)
            span.set(output=len(view.records))
            if tracer.enabled:
                tracer.metrics.histogram("views.size").observe(len(view.records))
                tracer.metrics.histogram("views.vps").observe(len(view.vps()))
        return view

    def destination_view(self, origins: Iterable[int]) -> View:
        """Indexed counterpart of :func:`repro.core.views.destination_view`."""
        wanted = frozenset(origins)
        selected = self.origin_indices(wanted)
        all_records = self.records
        return View(
            name=f"destination:{len(wanted)}ases",
            country=None,
            records=tuple([all_records[i] for i in selected]),
        )


class ViewSlicer:
    """Per-view VP buckets for fast repeated VP downsampling.

    ``restrict(ips)`` returns the same :class:`View` as
    ``view.restrict_vps(ips)`` — same name, same record order — but in
    O(records of the kept VPs · log) instead of O(all view records) per
    call, which is what makes hundreds of stability trials cheap.
    """

    __slots__ = ("view", "_by_vp")

    def __init__(self, view: View) -> None:
        self.view = view
        self._by_vp: dict[str, list[int]] = {}
        by_vp = self._by_vp
        for position, record in enumerate(view.records):
            bucket = by_vp.get(record.vp.ip)
            if bucket is None:
                by_vp[record.vp.ip] = [position]
            else:
                bucket.append(position)

    def vp_ips(self) -> list[str]:
        """The view's VP IPs, ordered by parsed address (same order as
        ``View.vps()``)."""
        return sorted(self._by_vp, key=ip_sort_key)

    def restrict(self, vp_ips: Iterable[str]) -> View:
        """The view downsampled to a VP subset, via index slices."""
        keep = set(vp_ips)
        positions: list[int] = []
        for ip in keep:
            positions.extend(self._by_vp.get(ip, ()))
        positions.sort()
        view = self.view
        return View(
            name=f"{view.name}|{len(keep)}vps",
            country=view.country,
            records=tuple(view.records[i] for i in positions),
        )
