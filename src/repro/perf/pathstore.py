"""Structure-of-arrays storage for the sanitized paths.

A :class:`repro.core.sanitize.PathSet` holds hundreds of thousands of
records, each pointing at an :class:`repro.net.aspath.ASPath` — an
object per path, a tuple per object, a Python int per hop. The hot
consumers (transit-suffix resolution, origin bucketing) walk all of
them, paying an attribute chase and a dict probe per element.

:class:`PathStore` flattens the same information into contiguous
integer arrays, deduplicated by path:

* ``tokens`` — every *distinct* path's ASNs, concatenated;
* ``offsets`` / ``lengths`` — where each distinct path lives in
  ``tokens``;
* ``record_path`` — record position → distinct-path id;
* ``record_origin`` — per-record origin ASN column for the index's
  grouped walks;
* ``record_addresses`` — per-record address counts, kept as a plain
  tuple: IPv6 prefixes carry counts far beyond int64 range.

Arrays are numpy when available (vectorized suffix computation, C-speed
grouping) with a stdlib ``array`` fallback that preserves the layout
and the API; either way every value handed back to consumers is a
plain Python ``int``, so downstream products are byte-identical to the
object-walking path. The equivalence tests in
``tests/perf/test_pathstore.py`` and the golden ranking bytes pin this.

The store is *derived, read-only* state: built once per PathSet (see
:meth:`repro.core.sanitize.PathSet.store`) and never mutated — the
lint rule R007 extends to its arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

try:  # numpy is optional: the store degrades to stdlib arrays
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

from array import array as _stdlib_array

if TYPE_CHECKING:
    from repro.core.sanitize import PathRecord
    from repro.net.aspath import ASPath
    from repro.perf.cache import SuffixCache

HAVE_NUMPY = _np is not None


def _int_array(values: list[int]):
    """A contiguous int64 column (numpy if available)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return _stdlib_array("q", values)


class PathStore:
    """Interned, flattened view of a record sequence's paths."""

    __slots__ = (
        "records", "paths", "path_ids", "tokens", "offsets", "lengths",
        "record_path", "record_origin", "record_addresses", "_token_list",
        "_pair_buckets", "_starts_memo",
    )

    def __init__(self, records: Sequence["PathRecord"]) -> None:
        #: one representative ASPath object per distinct path, in first-
        #: appearance order (the suffix cache is keyed by these objects)
        path_ids: dict["ASPath", int] = {}
        paths: list["ASPath"] = []
        tokens: list[int] = []
        offsets: list[int] = []
        lengths: list[int] = []
        record_path: list[int] = []
        record_origin: list[int] = []
        record_addresses: list[int] = []
        for record in records:
            path = record.path
            pid = path_ids.get(path)
            if pid is None:
                pid = path_ids[path] = len(paths)
                paths.append(path)
                asns = path.asns
                offsets.append(len(tokens))
                lengths.append(len(asns))
                tokens.extend(asns)
            record_path.append(pid)
            record_origin.append(path.asns[-1])
            record_addresses.append(record.addresses)
        #: the source records, kept so lazily-derived groupings (the
        #: view pair buckets) can be built without re-threading them in
        self.records: tuple["PathRecord", ...] = tuple(records)
        self.paths: tuple["ASPath", ...] = tuple(paths)
        #: distinct path → its id (row in offsets/lengths)
        self.path_ids = path_ids
        self._token_list: list[int] | None = None
        self._pair_buckets: dict[tuple[str, str], list[int]] | None = None
        self._starts_memo: tuple[object, list[int]] | None = None
        self.tokens = _int_array(tokens)
        self.offsets = _int_array(offsets)
        self.lengths = _int_array(lengths)
        self.record_path = _int_array(record_path)
        self.record_origin = _int_array(record_origin)
        self.record_addresses = tuple(record_addresses)

    def __len__(self) -> int:
        """Number of distinct paths stored."""
        return len(self.offsets)

    @property
    def record_count(self) -> int:
        return len(self.record_path)

    def token_list(self) -> list[int]:
        """The token column as plain Python ints (memoised) — the form
        consumers slice suffix tuples from, so numpy scalars never leak
        into downstream products."""
        if self._token_list is None:
            if _np is not None:
                self._token_list = self.tokens.tolist()
            else:
                self._token_list = list(self.tokens)
        return self._token_list

    # -- bulk transit suffixes ---------------------------------------------

    def suffix_starts(self, p2c: Iterable[tuple[int, int]]) -> list[int]:
        """Per distinct path, the token index its transit suffix starts
        at, under the given provider→customer edge set.

        Matches :meth:`repro.perf.cache.SuffixCache._compute` exactly:
        the suffix is the longest tail of the path whose adjacent pairs
        are all p2c links — ``start = (last non-p2c pair index) + 1``,
        or 0 when every pair is p2c.

        Memoised by edge-set *identity*: oracles hand out a stable
        frozenset (:meth:`repro.topology.model.ASGraph.p2c_edges` is
        version-memoised), so every cold suffix cache over the same
        oracle shares one bulk pass.
        """
        memo = self._starts_memo
        if memo is not None and memo[0] is p2c:
            return memo[1]
        starts = self._suffix_starts(p2c)
        self._starts_memo = (p2c, starts)
        return starts

    def _suffix_starts(self, p2c: Iterable[tuple[int, int]]) -> list[int]:
        if _np is not None:
            return self._suffix_starts_np(p2c)
        p2c_set = p2c if isinstance(p2c, (set, frozenset)) else frozenset(p2c)
        starts: list[int] = []
        tokens = self.tokens
        for pid in range(len(self.offsets)):
            offset = self.offsets[pid]
            length = self.lengths[pid]
            start = length - 1
            for index in range(length - 2, -1, -1):
                if (tokens[offset + index], tokens[offset + index + 1]) in p2c_set:
                    start = index
                else:
                    break
            starts.append(start)
        return starts

    def _suffix_starts_np(self, p2c: Iterable[tuple[int, int]]) -> list[int]:
        """Vectorized suffix starts: encode every adjacent token pair as
        one 64-bit code, test membership against the encoded edge set,
        then locate each path's last non-p2c pair with a searchsorted
        over the non-p2c positions."""
        np = _np
        count = len(self.offsets)
        if count == 0:
            return []
        tokens = self.tokens
        offsets = self.offsets
        pair_counts = self.lengths - 1
        if len(tokens) == count:  # every path is single-hop: no pairs
            return [0] * count
        # pack each adjacent pair into one code; uint64 so 4-byte ASNs
        # (up to 2^32 - 1) cannot overflow the shifted half
        unsigned = tokens.astype(np.uint64)
        codes = (unsigned[:-1] << np.uint64(32)) | unsigned[1:]
        # drop the phantom pairs straddling consecutive paths (the
        # token ending path p next to the token starting path p+1), so
        # what remains is each path's own pairs, concatenated in order
        valid = np.ones(len(codes), dtype=bool)
        valid[offsets[1:] - 1] = False
        codes = codes[valid]
        edges = list(p2c)
        if edges:
            edge_codes = np.fromiter(
                ((left << 32) | right for left, right in edges),
                dtype=np.uint64,
                count=len(edges),
            )
            edge_codes.sort()
            slots = np.searchsorted(edge_codes, codes)
            slots[slots == len(edge_codes)] = 0
            is_p2c = edge_codes[slots] == codes
        else:
            is_p2c = np.zeros(len(codes), dtype=bool)
        # the suffix starts right after the path's last non-p2c pair
        # (at 0 when every pair is p2c); find that pair per path by
        # bisecting each path's pair-range end into the sorted non-p2c
        # positions
        plain = np.flatnonzero(~is_p2c)
        if len(plain) == 0:
            return [0] * count
        ends = np.cumsum(pair_counts)
        begins = ends - pair_counts
        slot = np.searchsorted(plain, ends) - 1
        last = plain[np.maximum(slot, 0)]
        in_range = (slot >= 0) & (last >= begins)
        starts = np.where(in_range, last - begins + 1, 0)
        return starts.tolist()

    def prime_suffix_cache(self, cache: "SuffixCache") -> int:
        """Fill ``cache.table`` for every distinct path in one bulk
        pass; returns how many entries were installed.

        Only applies when the cache's oracle exposes a flat p2c edge
        set (``cache._p2c``); suffix tuples contain plain Python ints,
        so a primed cache is value-identical to one warmed lazily.
        """
        p2c = cache._p2c
        if p2c is None:
            return 0
        starts = self.suffix_starts(p2c)
        table = cache.table
        installed = 0
        token_list = self.token_list()
        for pid, path in enumerate(self.paths):
            if path in table:
                continue
            offset = int(self.offsets[pid])
            end = offset + int(self.lengths[pid])
            table[path] = tuple(token_list[offset + starts[pid]:end])
            installed += 1
        return installed

    # -- grouping ----------------------------------------------------------

    def pair_buckets(self) -> dict[tuple[str, str], list[int]]:
        """Record positions grouped by ``(vp_country, prefix_country)``
        — each bucket ascending, keys in first-appearance order: the
        exact dict :class:`repro.perf.index.PathIndex` builds with its
        full-record scan, computed once here and shared by every index
        over this store (built lazily on first use)."""
        if self._pair_buckets is None:
            buckets: dict[tuple[str, str], list[int]] = {}
            for position, record in enumerate(self.records):
                pair = (record.vp_country, record.prefix_country)
                bucket = buckets.get(pair)
                if bucket is None:
                    buckets[pair] = [position]
                else:
                    bucket.append(position)
            self._pair_buckets = buckets
        return self._pair_buckets

    def origin_buckets(self) -> dict[int, list[int]]:
        """Record positions grouped by origin ASN — each bucket in
        ascending position order, keys in first-appearance order —
        exactly the dict a stable per-record scan would build."""
        origins = self.record_origin
        if _np is not None and len(origins):
            np = _np
            order = np.argsort(origins, kind="stable")
            sorted_origins = origins[order]
            boundaries = np.flatnonzero(
                sorted_origins[1:] != sorted_origins[:-1]
            ) + 1
            group_starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), boundaries)
            )
            groups = [
                (group.tolist(), int(sorted_origins[start]))
                for start, group in zip(
                    group_starts.tolist(), np.split(order, boundaries)
                )
            ]
            # stable argsort keeps each bucket ascending; re-keying by
            # bucket[0] (the origin's first record) restores the naive
            # scan's first-appearance dict order
            groups.sort(key=lambda item: item[0][0])
            return {origin: bucket for bucket, origin in groups}
        buckets: dict[int, list[int]] = {}
        for position, origin in enumerate(origins):
            key = int(origin)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [position]
            else:
                bucket.append(position)
        return buckets
