"""repro.perf — the batch ranking engine under the pipeline.

Three layers, designed to compose (see DESIGN.md §4):

* :mod:`repro.perf.index` — :class:`PathIndex` buckets sanitized
  records so views are O(selected) lookups; :class:`ViewSlicer` does
  the same for VP-downsampled trial views.
* :mod:`repro.perf.cache` — :class:`SuffixCache` and
  :class:`ViewComputation` memoise the intermediates the metric
  families share (transit suffixes, cones, per-VP betweenness, address
  totals), with hit/miss observability counters.
* :mod:`repro.perf.parallel` — deterministic process fan-out for
  propagation origins and stability trials (``workers=1`` stays the
  byte-identical serial path).

The pipeline (:class:`repro.core.pipeline.PipelineResult`) wires all
three together; ``rank_all`` / ``repro-rank sweep`` are the batch entry
points.
"""

from repro.perf.cache import SuffixCache, ViewComputation
from repro.perf.index import PathIndex, ViewSlicer
from repro.perf.parallel import chunked, propagate_origins, stability_trials

__all__ = [
    "PathIndex",
    "SuffixCache",
    "ViewComputation",
    "ViewSlicer",
    "chunked",
    "propagate_origins",
    "stability_trials",
]
