"""repro.perf — the batch ranking engine under the pipeline.

Three layers, designed to compose (see DESIGN.md §4):

* :mod:`repro.perf.index` — :class:`PathIndex` buckets sanitized
  records so views are O(selected) lookups; :class:`ViewSlicer` does
  the same for VP-downsampled trial views.
* :mod:`repro.perf.cache` — :class:`SuffixCache` and
  :class:`ViewComputation` memoise the intermediates the metric
  families share (transit suffixes, cones, per-VP betweenness, address
  totals), with hit/miss observability counters.
* :mod:`repro.perf.parallel` — deterministic process fan-out for
  propagation origins and stability trials (``workers=1`` stays the
  byte-identical serial path).
* :mod:`repro.perf.pool` — :class:`WorkerPool`, the persistent
  process pool under both fan-outs, with ship-once broadcast of heavy
  shared state (zero-copy under ``fork``).
* :mod:`repro.perf.pathstore` — :class:`PathStore`, the
  structure-of-arrays mirror of the sanitized records (flat interned
  token arrays) feeding the suffix bulk-prime and the index's origin
  buckets.
* :mod:`repro.perf.spill` — the out-of-core variant:
  :class:`MmapPathStore` maps the same columns read-only from disk
  (written append-only by streaming ingestion), so worlds far larger
  than RAM rank with bounded RSS and byte-identical results.

The pipeline (:class:`repro.core.pipeline.PipelineResult`) wires all
three together; ``rank_all`` / ``repro-rank sweep`` are the batch entry
points.
"""

from repro.perf.cache import SuffixCache, ViewComputation
from repro.perf.index import PathIndex, ViewSlicer
from repro.perf.parallel import chunked, propagate_origins, stability_trials
from repro.perf.pathstore import PathStore
from repro.perf.pool import WorkerPool, broadcast_get
from repro.perf.spill import MmapPathStore, open_spill, sanitize_to_store

__all__ = [
    "MmapPathStore",
    "PathIndex",
    "PathStore",
    "SuffixCache",
    "ViewComputation",
    "ViewSlicer",
    "WorkerPool",
    "broadcast_get",
    "chunked",
    "open_spill",
    "propagate_origins",
    "sanitize_to_store",
    "stability_trials",
]
