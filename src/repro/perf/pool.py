"""Persistent worker pools with broadcast (ship-once) world state.

The fan-outs in :mod:`repro.perf.parallel` used to pickle their heavy
shared state — the adjacency snapshot, the country view — into every
chunk payload, so a sweep over ``C`` chunks serialized the same
multi-megabyte object ``C`` times. A :class:`WorkerPool` fixes both
halves of that cost:

* **Broadcast state.** Shared objects are registered once in a parent-
  side module-level registry and referenced from payloads by token.
  On ``fork`` start (Linux default) the registry is inherited by the
  worker processes for free — zero pickling, copy-on-write pages. On
  ``spawn``/``forkserver`` the registry is shipped once per *worker*
  through the pool initializer — still once per worker instead of once
  per chunk.
* **Pool persistence.** The executor is created lazily and survives
  across calls (all propagation planes, then every stability sweep),
  so pool startup is paid once per pipeline rather than once per
  fan-out. Broadcasting *new* state to a live pool marks it stale and
  the next use respawns it (cheap under ``fork``); re-broadcasting the
  same object is recognized by identity and costs nothing.

Fault semantics are unchanged: :func:`repro.resilience.resilient_map`
treats an external pool exactly like its own, except that a poisoned
pool is handed back via :meth:`WorkerPool.invalidate` — the broken
executor is terminated and never reused, and the respawned one
reinstalls the full registry (replayed chunks resolve their tokens
identically).

The registry is also consulted in-process (the parent), which is what
keeps ``resilient_map``'s serial fallback and the ``workers=1`` path
token-compatible: :func:`broadcast_get` works on both sides of the
fork.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any

#: parent-side broadcast registry; fork children inherit it, spawn
#: children receive a copy through :func:`_install_broadcast`
_BROADCAST: dict[str, Any] = {}

_token_counter = 0


def _install_broadcast(state: dict[str, Any]) -> None:
    """Pool initializer for non-fork start methods: install the
    broadcast registry once per worker process (top-level for
    pickling)."""
    _BROADCAST.clear()
    _BROADCAST.update(state)


def broadcast_get(token: str) -> Any:
    """Resolve a broadcast token (worker- or parent-side)."""
    try:
        return _BROADCAST[token]
    except KeyError:
        raise KeyError(
            f"broadcast token {token!r} not installed in this process"
        ) from None


class WorkerPool:
    """A lazily-started, restartable process pool sharing broadcast
    state with its workers.

    ``executor()`` (re)creates the underlying ``ProcessPoolExecutor``
    on demand; ``invalidate()`` abandons a poisoned one (terminate,
    never reuse); ``close()`` ends the pool's life. The ``stats``
    dict feeds the benchmark report (spawn count measures how well
    persistence is working: one pipeline should spawn O(1) pools,
    not one per fan-out).
    """

    __slots__ = ("workers", "_executor", "_dirty", "_tokens", "_mine", "stats")

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self._dirty = False
        #: id(value) -> token, so re-broadcasting the same object is free
        self._tokens: dict[int, str] = {}
        #: tokens owned by this pool, dropped from the registry on close
        self._mine: list[str] = []
        self.stats = {"spawns": 0, "respawns": 0, "broadcasts": 0}

    def broadcast(self, name: str, value: Any) -> str:
        """Register ``value`` for worker access; returns its token.

        Identity-memoized: broadcasting the same object again returns
        the existing token without touching the pool. A genuinely new
        object on a live pool marks it stale — the next ``executor()``
        respawns workers so they see the updated registry.
        """
        global _token_counter
        token = self._tokens.get(id(value))
        if token is not None:
            return token
        _token_counter += 1
        token = f"{name}#{_token_counter}"
        _BROADCAST[token] = value
        self._tokens[id(value)] = token
        self._mine.append(token)
        self.stats["broadcasts"] += 1
        if self._executor is not None:
            self._dirty = True
        return token

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, (re)spawning it if absent or stale."""
        if self._executor is not None and self._dirty:
            self._shutdown(abandon=False)
        if self._executor is None:
            if multiprocessing.get_start_method() == "fork":
                # children fork off this process and inherit _BROADCAST
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_install_broadcast,
                    initargs=(dict(_BROADCAST),),
                )
            self._dirty = False
            self.stats["spawns"] += 1
        return self._executor

    def invalidate(self) -> None:
        """Abandon a poisoned executor (killed/hung worker): terminate
        its processes and forget it. The next ``executor()`` call
        starts fresh — a broken pool is never reused."""
        if self._executor is not None:
            self._shutdown(abandon=True)
            self.stats["respawns"] += 1

    def close(self) -> None:
        """Shut the pool down and drop its broadcast registrations."""
        self._shutdown(abandon=False)
        for token in self._mine:
            _BROADCAST.pop(token, None)
        self._mine.clear()
        self._tokens.clear()

    def _shutdown(self, abandon: bool) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if abandon:
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                process.terminate()
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:
        # last-resort cleanup for dropped results: terminate idle
        # workers without waiting (never hangs a GC pass)
        try:
            self._shutdown(abandon=True)
        except Exception:  # repro: noqa[R006] — GC-time teardown must never raise
            pass
