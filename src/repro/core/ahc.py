"""IHR's country-level hegemony baseline (AHC, paper §1.2.1).

AHC approximates a country ranking by (1) computing per-origin local
hegemony (network dependency) for each AS *registered* in the country —
regardless of where its prefixes geolocate — using paths from **all**
VPs, and (2) averaging those values across the country's origin ASes
with equal weight (the paper uses the AS-count weighting, not APNIC
user weights).

The three differences from the paper's own metrics, reproduced here
exactly so the Table 9 comparison is meaningful:

* destination selection by AS registration country, not by prefix
  geolocation (misses Amazon's in-country prefixes, counts prefixes a
  domestic AS originates abroad);
* no national/international split (all VPs mixed together);
* equal weighting of origin ASes regardless of address footprint.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.hegemony import hegemony_scores, validate_trim
from repro.core.ranking import Ranking
from repro.core.sanitize import PathRecord, PathSet
from repro.obs.trace import NULL_TRACER, AnyTracer


def ahc_scores(
    records: Iterable[PathRecord],
    country_origins: Iterable[int],
    trim: float = 0.1,
    weighting: str = "as_count",
) -> dict[int, float]:
    """Weighted average of per-origin local hegemony.

    ``country_origins`` are the ASNs registered in the target country.
    Origins with no observed paths contribute nothing (and do not
    dilute the average), mirroring IHR's per-AS daily computation.

    ``weighting`` selects IHR's two published schemes (§1.2.1):
    ``"as_count"`` weights every origin AS equally (what the paper
    uses); ``"addresses"`` weights each origin by its observed address
    footprint — our stand-in for IHR's APNIC user-population weights.
    """
    if weighting not in ("as_count", "addresses"):
        raise ValueError(f"unknown AHC weighting {weighting!r}")
    validate_trim(trim)
    origins = sorted(set(country_origins))
    by_origin: dict[int, list[PathRecord]] = {origin: [] for origin in origins}
    for record in records:
        bucket = by_origin.get(record.origin)
        if bucket is not None:
            bucket.append(record)
    totals: dict[int, float] = {}
    weight_sum = 0.0
    for origin in origins:
        bucket = by_origin[origin]
        if not bucket:
            continue
        if weighting == "addresses":
            weight = float(sum(
                addresses
                for addresses in {
                    record.prefix: record.addresses for record in bucket
                }.values()
            ))
            if weight <= 0.0:
                continue
        else:
            weight = 1.0
        weight_sum += weight
        for asn, value in hegemony_scores(bucket, trim).items():
            totals[asn] = totals.get(asn, 0.0) + weight * value
    if weight_sum == 0.0:
        return {}
    return {asn: value / weight_sum for asn, value in totals.items()}


def ahc_ranking(
    paths: PathSet,
    country: str,
    country_origins: Iterable[int],
    trim: float = 0.1,
    weighting: str = "as_count",
    tracer: AnyTracer = NULL_TRACER,
) -> Ranking:
    """The AHC baseline ranking for one country."""
    validate_trim(trim)
    origins = sorted(set(country_origins))
    with tracer.span(
        "ahc", country=country, origins=len(origins),
        input=len(paths.records),
    ) as span:
        scores = ahc_scores(paths.records, origins, trim, weighting)
        span.set(output=len(scores))
        tracer.metrics.histogram("ahc.origins").observe(len(origins))
        shares: Mapping[int, float] = scores
        return Ranking.from_scores(f"AHC:{country}", scores, shares, country)
