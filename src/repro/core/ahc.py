"""IHR's country-level hegemony baseline (AHC, paper §1.2.1).

AHC approximates a country ranking by (1) computing per-origin local
hegemony (network dependency) for each AS *registered* in the country —
regardless of where its prefixes geolocate — using paths from **all**
VPs, and (2) averaging those values across the country's origin ASes
with equal weight (the paper uses the AS-count weighting, not APNIC
user weights).

The three differences from the paper's own metrics, reproduced here
exactly so the Table 9 comparison is meaningful:

* destination selection by AS registration country, not by prefix
  geolocation (misses Amazon's in-country prefixes, counts prefixes a
  domestic AS originates abroad);
* no national/international split (all VPs mixed together);
* equal weighting of origin ASes regardless of address footprint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.core.hegemony import hegemony_scores, validate_trim
from repro.core.ranking import Ranking
from repro.core.sanitize import PathRecord, PathSet
from repro.core.views import View
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.cache import ViewComputation

AHC_WEIGHTINGS = ("as_count", "addresses")


def _check_weighting(weighting: str) -> str:
    if weighting not in AHC_WEIGHTINGS:
        raise ValueError(f"unknown AHC weighting {weighting!r}")
    return weighting


def _weighted_origin_average(
    origins: Sequence[int],
    bucket_of: Callable[[int], Sequence[PathRecord]],
    hegemony_of: Callable[[int, Sequence[PathRecord]], dict[int, float]],
    weighting: str,
) -> dict[int, float]:
    """The AHC step 2 shared by the naive and cached paths: a weighted
    average of per-origin hegemony tables, accumulated in sorted-origin
    order (so both paths produce bit-identical floats).

    Origins with no observed paths contribute nothing (and do not
    dilute the average), mirroring IHR's per-AS daily computation.
    """
    totals: dict[int, float] = {}
    weight_sum = 0.0
    contributing = 0
    for origin in origins:
        bucket = bucket_of(origin)
        if not bucket:
            continue
        if weighting == "addresses":
            weight = float(sum(
                addresses
                for addresses in {
                    record.prefix: record.addresses for record in bucket
                }.values()
            ))
            if weight <= 0.0:
                continue
        else:
            weight = 1.0
        weight_sum += weight
        contributing += 1
        for asn, value in hegemony_of(origin, bucket).items():
            totals[asn] = totals.get(asn, 0.0) + weight * value
    if contributing == 0:
        # exact-integer accounting: no origin contributed, so there is
        # nothing to average (weight_sum is untouched — never compared)
        return {}
    return {asn: value / weight_sum for asn, value in totals.items()}


def ahc_scores(
    records: Iterable[PathRecord],
    country_origins: Iterable[int],
    trim: float = 0.1,
    weighting: str = "as_count",
) -> dict[int, float]:
    """Weighted average of per-origin local hegemony.

    ``country_origins`` are the ASNs registered in the target country.

    ``weighting`` selects IHR's two published schemes (§1.2.1):
    ``"as_count"`` weights every origin AS equally (what the paper
    uses); ``"addresses"`` weights each origin by its observed address
    footprint — our stand-in for IHR's APNIC user-population weights.
    """
    _check_weighting(weighting)
    validate_trim(trim)
    origins = sorted(set(country_origins))
    by_origin: dict[int, list[PathRecord]] = {origin: [] for origin in origins}
    for record in records:
        bucket = by_origin.get(record.origin)
        if bucket is not None:
            bucket.append(record)
    return _weighted_origin_average(
        origins,
        by_origin.__getitem__,
        lambda origin, bucket: hegemony_scores(bucket, trim),
        weighting,
    )


def ahc_scores_cached(
    compute: "ViewComputation",
    country_origins: Iterable[int],
    trim: float = 0.1,
    weighting: str = "as_count",
) -> dict[int, float]:
    """:func:`ahc_scores` through the batch-engine cache.

    The per-origin record buckets and per-origin hegemony tables come
    from (and populate) the view's
    :class:`~repro.perf.cache.ViewComputation`, so a multi-country
    sweep buckets the global view's records once — instead of one full
    scan per country — and every repeated (origin, trim) hegemony is a
    ``perf.view.hit``. Values are bit-identical to the naive path: the
    averaging loop is shared and the cached buckets preserve record
    order.
    """
    _check_weighting(weighting)
    validate_trim(trim)
    origins = sorted(set(country_origins))
    buckets = compute.origin_records()
    empty: tuple[PathRecord, ...] = ()
    return _weighted_origin_average(
        origins,
        lambda origin: buckets.get(origin, empty),
        lambda origin, bucket: compute.local_hegemony(origin, trim),
        weighting,
    )


def ahc_ranking(
    paths: PathSet | View,
    country: str,
    country_origins: Iterable[int],
    trim: float = 0.1,
    weighting: str = "as_count",
    tracer: AnyTracer = NULL_TRACER,
    compute: "ViewComputation | None" = None,
    metric: str | None = None,
) -> Ranking:
    """The AHC baseline ranking for one country.

    ``paths`` is any record holder (the sanitized :class:`PathSet` or
    the equivalent global :class:`~repro.core.views.View`). ``compute``
    is an optional :class:`~repro.perf.cache.ViewComputation` for that
    view: per-origin buckets and hegemony tables come from its
    cross-metric cache (see :func:`ahc_scores_cached`). ``metric``
    overrides the ranking label (variants like ``AHC-A`` pass theirs).
    """
    validate_trim(trim)
    origins = sorted(set(country_origins))
    with tracer.span(
        "ahc", country=country, origins=len(origins),
        input=len(paths.records),
    ) as span:
        scores = (
            ahc_scores_cached(compute, origins, trim, weighting)
            if compute is not None
            else ahc_scores(paths.records, origins, trim, weighting)
        )
        span.set(output=len(scores))
        tracer.metrics.histogram("ahc.origins").observe(len(origins))
        shares: Mapping[int, float] = scores
        return Ranking.from_scores(
            metric if metric is not None else f"AHC:{country}",
            scores, shares, country,
        )
