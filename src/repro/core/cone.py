"""Customer-cone metrics: CCG (global) and the country CCI / CCN.

Implementation of Luckie et al.'s observed-path customer cone (paper
§1.1, Figure 1): for every sanitized AS path, the *transit suffix* is
the maximal run of provider→customer links ending at the origin. Every
AS on that suffix has everything downstream of it (on that observed
path) in its customer cone. Cones are **not** computed transitively
from the relationship graph — only observed paths contribute — which
avoids inflating cones through complex relationships.

At the prefix level we follow CAIDA's published semantics (§1.1: "the
prefix CC for an AS includes every prefix that an AS in its customer
cone announced into BGP"): the AS-level cone is computed from observed
paths, then an AS's prefix cone is the union of the (observed,
view-relevant) prefixes *originated by its cone members*. This closure
is what lets a wholesale provider's cone cover 80 % of a country's
address space even when only a few percent of observed paths actually
cross it (the paper's Vocus example, Table 5). The metric value of an
AS is the number of distinct addresses owned by the prefixes in its
cone, and the reported share divides by the view's total address space
(a country's space for CCI/CCN, the world's for CCG).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.ranking import Ranking
from repro.core.sanitize import PathRecord, RelationshipOracle
from repro.core.views import View
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.cache import ViewComputation

#: Resolver signature shared with :mod:`repro.perf.cache`: a memoised
#: stand-in for ``transit_suffix(path, oracle)`` bound to one oracle.
SuffixResolver = Callable[[ASPath], tuple[int, ...]]


def transit_suffix(path: ASPath, oracle: RelationshipOracle) -> tuple[int, ...]:
    """The maximal all-p2c suffix of a path (VP→origin order).

    Walks backward from the origin while links are provider→customer;
    stops at the first peer, customer-to-provider, or unknown link.
    Always contains at least the origin.
    """
    asns = path.asns
    start = len(asns) - 1
    for index in range(len(asns) - 2, -1, -1):
        if oracle.relationship(asns[index], asns[index + 1]) == "p2c":
            start = index
        else:
            break
    return asns[start:]


def cones_from_suffixes(
    suffixes: Iterable[tuple[int, ...]],
) -> dict[int, set[int]]:
    """Accumulate AS-level cones from transit suffixes.

    Walks each suffix origin-first, accumulating the downstream set
    once per suffix instead of allocating a ``suffix[position + 1:]``
    tuple per position. A repeated suffix contributes nothing new (the
    updates are idempotent), so callers holding a memoised suffix table
    may pass each *distinct* suffix once — the batch engine's
    :class:`repro.perf.cache.ViewComputation` does exactly that.
    """
    cones: dict[int, set[int]] = {}
    setdefault = cones.setdefault
    for suffix in suffixes:
        downstream: set[int] = set()
        for asn in reversed(suffix):
            cone = setdefault(asn, {asn})
            cone.update(downstream)
            downstream.add(asn)
    return cones


def customer_cones(
    records: Iterable[PathRecord],
    oracle: RelationshipOracle,
    suffix_of: SuffixResolver | None = None,
) -> dict[int, set[int]]:
    """AS-level cones: every AS maps to itself plus the ASes observed
    downstream of it on some path's transit suffix.

    ``suffix_of`` swaps in a memoised resolver (see
    :class:`repro.perf.cache.SuffixCache`).
    """
    if suffix_of is not None:
        return cones_from_suffixes(suffix_of(record.path) for record in records)
    return cones_from_suffixes(
        transit_suffix(record.path, oracle) for record in records
    )


def prefix_cones(
    records: Iterable[PathRecord],
    oracle: RelationshipOracle,
    suffix_of: SuffixResolver | None = None,
    as_cones: dict[int, set[int]] | None = None,
) -> dict[int, set[Prefix]]:
    """Prefix-level cones, closure style: every prefix (observed in the
    records) originated by an AS in the holder's AS-level cone.

    ``as_cones`` short-circuits the AS-level computation with an
    already-built result for the same records (the cross-metric cache).
    """
    materialized = list(records)
    origin_prefixes: dict[int, set[Prefix]] = {}
    for record in materialized:
        origin_prefixes.setdefault(record.origin, set()).add(record.prefix)
    if as_cones is None:
        as_cones = customer_cones(materialized, oracle, suffix_of)
    cones: dict[int, set[Prefix]] = {}
    for asn, members in as_cones.items():
        prefixes: set[Prefix] = set()
        for member in members:
            prefixes.update(origin_prefixes.get(member, ()))
        cones[asn] = prefixes
    return cones


def cone_addresses(
    records: Iterable[PathRecord],
    oracle: RelationshipOracle,
    suffix_of: SuffixResolver | None = None,
    as_cones: dict[int, set[int]] | None = None,
) -> dict[int, int]:
    """Distinct addresses in each AS's (closure) prefix cone.

    Addresses are the *owned* (block-level, non-overlapping) counts
    carried on the records, so overlapping announcements do not double
    count.
    """
    materialized = list(records)
    weights: dict[Prefix, int] = {
        record.prefix: record.addresses for record in materialized
    }
    return {
        asn: sum(weights[prefix] for prefix in prefixes)
        for asn, prefixes in prefix_cones(
            materialized, oracle, suffix_of, as_cones
        ).items()
    }


def cone_ranking(
    view: View,
    oracle: RelationshipOracle,
    metric: str | None = None,
    total_addresses: int | None = None,
    tracer: AnyTracer = NULL_TRACER,
    compute: "ViewComputation | None" = None,
) -> Ranking:
    """Rank ASes by cone address coverage within a view.

    ``total_addresses`` is the share denominator; by default the view's
    own distinct destination address total, which makes shares read as
    "fraction of this country's address space reachable through the
    AS's customers" for country views.

    ``compute`` is an optional :class:`repro.perf.cache.ViewComputation`
    for this view: cone addresses and the address total come from (and
    populate) its cross-metric cache instead of being recomputed.
    """
    if metric is None:
        metric = "CC" if view.country is None else f"CC:{view.country}"
    with tracer.span(
        "cone", metric=metric, input=len(view.records),
    ) as span:
        addresses = (
            compute.cone_addresses() if compute is not None
            else cone_addresses(view.records, oracle)
        )
        if total_addresses is not None:
            denominator = total_addresses
        elif compute is not None:
            denominator = compute.total_addresses()
        else:
            denominator = view.total_addresses()
        shares = (
            {asn: count / denominator for asn, count in addresses.items()}
            if denominator
            else None
        )
        span.set(output=len(addresses))
        tracer.metrics.histogram("cone.ases").observe(len(addresses))
        return Ranking.from_scores(
            metric, {asn: float(count) for asn, count in addresses.items()},
            shares, view.country,
        )
