"""Customer-cone metrics: CCG (global) and the country CCI / CCN.

Implementation of Luckie et al.'s observed-path customer cone (paper
§1.1, Figure 1): for every sanitized AS path, the *transit suffix* is
the maximal run of provider→customer links ending at the origin. Every
AS on that suffix has everything downstream of it (on that observed
path) in its customer cone. Cones are **not** computed transitively
from the relationship graph — only observed paths contribute — which
avoids inflating cones through complex relationships.

At the prefix level we follow CAIDA's published semantics (§1.1: "the
prefix CC for an AS includes every prefix that an AS in its customer
cone announced into BGP"): the AS-level cone is computed from observed
paths, then an AS's prefix cone is the union of the (observed,
view-relevant) prefixes *originated by its cone members*. This closure
is what lets a wholesale provider's cone cover 80 % of a country's
address space even when only a few percent of observed paths actually
cross it (the paper's Vocus example, Table 5). The metric value of an
AS is the number of distinct addresses owned by the prefixes in its
cone, and the reported share divides by the view's total address space
(a country's space for CCI/CCN, the world's for CCG).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.ranking import Ranking
from repro.core.sanitize import PathRecord, RelationshipOracle
from repro.core.views import View
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.obs.trace import NULL_TRACER


def transit_suffix(path: ASPath, oracle: RelationshipOracle) -> tuple[int, ...]:
    """The maximal all-p2c suffix of a path (VP→origin order).

    Walks backward from the origin while links are provider→customer;
    stops at the first peer, customer-to-provider, or unknown link.
    Always contains at least the origin.
    """
    asns = path.asns
    start = len(asns) - 1
    for index in range(len(asns) - 2, -1, -1):
        if oracle.relationship(asns[index], asns[index + 1]) == "p2c":
            start = index
        else:
            break
    return asns[start:]


def customer_cones(
    records: Iterable[PathRecord], oracle: RelationshipOracle
) -> dict[int, set[int]]:
    """AS-level cones: every AS maps to itself plus the ASes observed
    downstream of it on some path's transit suffix."""
    cones: dict[int, set[int]] = {}
    for record in records:
        suffix = transit_suffix(record.path, oracle)
        for position, asn in enumerate(suffix):
            cone = cones.setdefault(asn, {asn})
            cone.update(suffix[position + 1 :])
    return cones


def prefix_cones(
    records: Iterable[PathRecord], oracle: RelationshipOracle
) -> dict[int, set[Prefix]]:
    """Prefix-level cones, closure style: every prefix (observed in the
    records) originated by an AS in the holder's AS-level cone."""
    materialized = list(records)
    origin_prefixes: dict[int, set[Prefix]] = {}
    for record in materialized:
        origin_prefixes.setdefault(record.origin, set()).add(record.prefix)
    cones: dict[int, set[Prefix]] = {}
    for asn, members in customer_cones(materialized, oracle).items():
        prefixes: set[Prefix] = set()
        for member in members:
            prefixes.update(origin_prefixes.get(member, ()))
        cones[asn] = prefixes
    return cones


def cone_addresses(
    records: Iterable[PathRecord], oracle: RelationshipOracle
) -> dict[int, int]:
    """Distinct addresses in each AS's (closure) prefix cone.

    Addresses are the *owned* (block-level, non-overlapping) counts
    carried on the records, so overlapping announcements do not double
    count.
    """
    materialized = list(records)
    weights: dict[Prefix, int] = {
        record.prefix: record.addresses for record in materialized
    }
    return {
        asn: sum(weights[prefix] for prefix in prefixes)
        for asn, prefixes in prefix_cones(materialized, oracle).items()
    }


def cone_ranking(
    view: View,
    oracle: RelationshipOracle,
    metric: str | None = None,
    total_addresses: int | None = None,
    tracer=NULL_TRACER,
) -> Ranking:
    """Rank ASes by cone address coverage within a view.

    ``total_addresses`` is the share denominator; by default the view's
    own distinct destination address total, which makes shares read as
    "fraction of this country's address space reachable through the
    AS's customers" for country views.
    """
    if metric is None:
        metric = "CC" if view.country is None else f"CC:{view.country}"
    with tracer.span(
        "cone", metric=metric, input=len(view.records),
    ) as span:
        addresses = cone_addresses(view.records, oracle)
        denominator = (
            total_addresses if total_addresses is not None
            else view.total_addresses()
        )
        shares = (
            {asn: count / denominator for asn, count in addresses.items()}
            if denominator
            else None
        )
        span.set(output=len(addresses))
        tracer.metrics.histogram("cone.ases").observe(len(addresses))
        return Ranking.from_scores(
            metric, {asn: float(count) for asn, count in addresses.items()},
            shares, view.country,
        )
