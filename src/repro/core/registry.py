"""The metric registry: one source of truth for metric dispatch.

The paper's contribution is a *family* of metrics — CCI/CCN/AHI/AHN
plus the baselines CCG/AHG/AHC/CTI and the §7 outbound extensions
CCO/AHO — and the family keeps growing (weighting ablations,
per-origin variants). Every fact about a metric lives here, exactly
once, as a frozen :class:`MetricSpec`:

* which **view kind** it consumes (``global`` / ``national`` /
  ``international`` / ``outbound``) — drives
  :meth:`~repro.core.pipeline.PipelineResult.view` and
  :meth:`~repro.io.replay.ReplaySession.view`;
* whether it **needs a country** — drives CLI validation, memo keys,
  and ``rank_all`` unit enumeration;
* whether it is **replayable** from a released ``paths.jsonl`` —
  drives :meth:`~repro.io.replay.ReplaySession.ranking` and the CLI's
  ``replay`` subcommand;
* its **label template** and **checkpoint unit key** — drive ranking
  labels and :class:`~repro.resilience.checkpoint.Checkpoint` units;
* its **compute callable**, taking a uniform :class:`MetricContext`
  (view / oracle / cross-metric cache / trim / tracer).

Ablation variants are *data*, not forked code paths: the hegemony
prefix-count weighting (``AHG-P``/``AHI-P``/``AHN-P``) and the AHC
address weighting (``AHC-A``) are ordinary registered specs whose
``weighting`` field parameterises the shared compute callable.

Adding a metric is one :func:`register` call — the pipeline, the
replay session, the CLI, checkpointing, and the lint rule R008 all
pick it up from here (see README "Adding a metric").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, overload

from repro.core.ahc import ahc_ranking
from repro.core.cone import cone_ranking
from repro.core.cti import cti_ranking
from repro.core.hegemony import hegemony_ranking
from repro.core.ranking import Ranking
from repro.core.sanitize import RelationshipOracle
from repro.core.views import View
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.cache import ViewComputation

#: the view vocabulary shared by the pipeline and the replay session
VIEW_KINDS = ("global", "national", "international", "outbound")


@overload
def normalize_country(code: str) -> str: ...
@overload
def normalize_country(code: None) -> None: ...
def normalize_country(code: str | None) -> str | None:
    """The canonical form of a country-code argument (or ``None``).

    Every layer that accepts a country — the CLI, ``PipelineResult``,
    ``ReplaySession`` — funnels through this, so ``"au"``, ``" AU "``
    and ``"AU"`` name the same ranking everywhere. Membership
    validation stays contextual (a world's registry, a release's
    observed countries); this only canonicalises the spelling.
    """
    if code is None:
        return None
    return code.strip().upper()


@dataclass(frozen=True, slots=True)
class MetricContext:
    """The uniform inputs a metric's compute callable receives.

    ``oracle`` may be ``None`` only for specs with
    ``needs_oracle=False`` (the replay session skips relationship
    inference for pure-path metrics). ``compute`` is the optional
    cross-metric cache for ``view``; ``None`` selects the naive code
    paths, which are value-identical. ``origins`` is populated only
    for specs with ``needs_origins=True`` (the ASNs registered in the
    target country, AHC's destination selector).
    """

    view: View
    oracle: RelationshipOracle | None
    trim: float
    country: str | None = None
    compute: "ViewComputation | None" = None
    origins: tuple[int, ...] = ()
    tracer: AnyTracer = NULL_TRACER


#: a metric's compute entry point: ``(spec, context) -> Ranking``
MetricCompute = Callable[["MetricSpec", MetricContext], Ranking]


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """Everything the system knows about one metric, in one record."""

    #: canonical (upper-case) metric name, the CLI-facing identifier
    name: str
    #: the metric family implementing it (cone / hegemony / cti / ahc)
    family: str
    #: which view the metric consumes (one of :data:`VIEW_KINDS`)
    view_kind: str
    #: whether a country code is required (AHC is registered-country
    #: scoped yet consumes the global view, so this is independent of
    #: ``view_kind``)
    needs_country: bool
    #: whether the metric can be recomputed from a released
    #: ``paths.jsonl`` alone (AHC needs registration countries and CTI
    #: is pinned non-replayable; AH metrics replay exactly, CC metrics
    #: need an oracle — supplied or inferred from the released paths)
    replayable: bool
    #: ranking label template (``{name}`` / ``{country}`` placeholders)
    label: str
    #: one-line description (CLI help and docs are derived from it)
    description: str
    #: the compute callable (receives the spec itself plus the context)
    compute: MetricCompute
    #: whether the compute callable reads ``ctx.oracle``
    needs_oracle: bool = True
    #: whether ``ctx.origins`` must carry the country's registered ASNs
    needs_origins: bool = False
    #: variant knob: the weighting scheme the compute callable passes
    #: through (``None`` = the family's default)
    weighting: str | None = None
    #: classification tags (``paper`` / ``baseline`` / ``outbound`` /
    #: ``variant``) consumed by the analysis and export layers
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.name != canonical_name(self.name):
            raise ValueError(f"metric name must be canonical: {self.name!r}")
        if self.view_kind not in VIEW_KINDS:
            raise ValueError(f"unknown view kind {self.view_kind!r}")

    def label_for(self, country: str | None) -> str:
        """The ranking label (``"AHN:AU"``, ``"CCG"``)."""
        return self.label.format(name=self.name, country=country)

    def unit_key(self, country: str | None) -> str:
        """The checkpoint unit key for one sweep ranking (stable
        across releases: resumable files depend on it)."""
        return f"ranking:{self.name}:{country if country is not None else '<global>'}"

    def require_country(self, country: str | None) -> str | None:
        """Validate/normalise the country argument for this metric:
        global metrics ignore it, country metrics require it."""
        if not self.needs_country:
            return None
        if country is None:
            raise ValueError("this metric requires a country code")
        return country

    def build(self, ctx: MetricContext) -> Ranking:
        """Compute this metric's ranking from a uniform context."""
        return self.compute(self, ctx)


def canonical_name(name: str) -> str:
    """The canonical spelling of a metric name argument."""
    return name.strip().upper()


# -- compute callables --------------------------------------------------------
#
# One per metric family; the spec parameterises them (label, weighting),
# so a registered variant is pure data.


def _cone_compute(spec: MetricSpec, ctx: MetricContext) -> Ranking:
    if ctx.oracle is None:
        raise ValueError(f"{spec.name} needs a relationship oracle")
    return cone_ranking(
        ctx.view, ctx.oracle, spec.label_for(ctx.country),
        tracer=ctx.tracer, compute=ctx.compute,
    )


def _hegemony_compute(spec: MetricSpec, ctx: MetricContext) -> Ranking:
    return hegemony_ranking(
        ctx.view, spec.label_for(ctx.country), ctx.trim,
        weighting=spec.weighting or "addresses",
        tracer=ctx.tracer, compute=ctx.compute,
    )


def _cti_compute(spec: MetricSpec, ctx: MetricContext) -> Ranking:
    if ctx.oracle is None:
        raise ValueError(f"{spec.name} needs a relationship oracle")
    return cti_ranking(
        ctx.view, ctx.oracle, ctx.trim, tracer=ctx.tracer, compute=ctx.compute,
    )


def _ahc_compute(spec: MetricSpec, ctx: MetricContext) -> Ranking:
    country = spec.require_country(ctx.country)
    assert country is not None  # require_country raised otherwise
    return ahc_ranking(
        ctx.view, country, ctx.origins, ctx.trim,
        weighting=spec.weighting or "as_count",
        tracer=ctx.tracer, compute=ctx.compute,
        metric=spec.label_for(country),
    )


# -- the registry -------------------------------------------------------------

#: every registered metric, keyed by canonical name, in registration
#: order (the order CLI help, sweeps, and exports present them in)
METRICS: dict[str, MetricSpec] = {}


def register(spec: MetricSpec) -> MetricSpec:
    """Add a metric to the registry (the one-registration extension
    point). Raises on a duplicate name — specs are immutable facts."""
    if spec.name in METRICS:
        raise ValueError(f"metric {spec.name!r} is already registered")
    METRICS[spec.name] = spec
    return spec


def maybe_spec(name: str) -> MetricSpec | None:
    """The spec for a metric name (any case), or ``None``."""
    return METRICS.get(canonical_name(name))


def get_spec(name: str) -> MetricSpec:
    """The spec for a metric name, or ``ValueError`` for unknown."""
    spec = maybe_spec(name)
    if spec is None:
        raise ValueError(f"unknown metric {name!r}")
    return spec


def specs(
    *,
    needs_country: bool | None = None,
    replayable: bool | None = None,
    tag: str | None = None,
    view_kind: str | None = None,
) -> tuple[MetricSpec, ...]:
    """Registered specs, filtered, in registration order."""

    def keep(spec: MetricSpec) -> bool:
        return (
            (needs_country is None or spec.needs_country == needs_country)
            and (replayable is None or spec.replayable == replayable)
            and (tag is None or tag in spec.tags)
            and (view_kind is None or spec.view_kind == view_kind)
        )

    return tuple(spec for spec in METRICS.values() if keep(spec))


def metric_names(
    *,
    needs_country: bool | None = None,
    replayable: bool | None = None,
    tag: str | None = None,
    view_kind: str | None = None,
) -> tuple[str, ...]:
    """Registered metric names, filtered, in registration order."""
    return tuple(spec.name for spec in specs(
        needs_country=needs_country, replayable=replayable,
        tag=tag, view_kind=view_kind,
    ))


def paper_metrics(view_kind: str | None = None) -> tuple[str, ...]:
    """The paper's four country metrics (optionally one view side)."""
    return metric_names(tag="paper", view_kind=view_kind)


def iter_specs() -> Iterator[MetricSpec]:
    """All registered specs in registration order."""
    return iter(METRICS.values())


# -- the built-in catalog -----------------------------------------------------
#
# Registration order is the canonical presentation order: the paper's
# four country metrics, then the baselines and §7 extensions, then the
# global baselines, then the ablation variants.

register(MetricSpec(
    name="CCI", family="cone", view_kind="international",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="customer-cone addresses over the international view",
    compute=_cone_compute, tags=frozenset({"paper"}),
))
register(MetricSpec(
    name="CCN", family="cone", view_kind="national",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="customer-cone addresses over the national view",
    compute=_cone_compute, tags=frozenset({"paper"}),
))
register(MetricSpec(
    name="AHI", family="hegemony", view_kind="international",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="AS hegemony over the international view",
    compute=_hegemony_compute, needs_oracle=False,
    tags=frozenset({"paper"}),
))
register(MetricSpec(
    name="AHN", family="hegemony", view_kind="national",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="AS hegemony over the national view",
    compute=_hegemony_compute, needs_oracle=False,
    tags=frozenset({"paper"}),
))
register(MetricSpec(
    name="AHC", family="ahc", view_kind="global",
    needs_country=True, replayable=False, label="{name}:{country}",
    description="IHR's country hegemony baseline (registered-origin "
                "average; release carries no registration countries)",
    compute=_ahc_compute, needs_oracle=False, needs_origins=True,
    tags=frozenset({"baseline"}),
))
register(MetricSpec(
    name="CTI", family="cti", view_kind="international",
    needs_country=True, replayable=False, label="{name}:{country}",
    description="country-level transit influence baseline",
    compute=_cti_compute, tags=frozenset({"baseline"}),
))
register(MetricSpec(
    name="CCO", family="cone", view_kind="outbound",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="customer-cone addresses over the outbound view (§7)",
    compute=_cone_compute, tags=frozenset({"outbound"}),
))
register(MetricSpec(
    name="AHO", family="hegemony", view_kind="outbound",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="AS hegemony over the outbound view (§7)",
    compute=_hegemony_compute, needs_oracle=False,
    tags=frozenset({"outbound"}),
))
register(MetricSpec(
    name="CCG", family="cone", view_kind="global",
    needs_country=False, replayable=True, label="{name}",
    description="global customer-cone baseline",
    compute=_cone_compute, tags=frozenset({"baseline"}),
))
register(MetricSpec(
    name="AHG", family="hegemony", view_kind="global",
    needs_country=False, replayable=True, label="{name}",
    description="global AS hegemony baseline",
    compute=_hegemony_compute, needs_oracle=False,
    tags=frozenset({"baseline"}),
))

# Ablation variants: the knobs that used to hide behind function
# parameters, registered as first-class metrics (a variant is data).
register(MetricSpec(
    name="AHG-P", family="hegemony", view_kind="global",
    needs_country=False, replayable=True, label="{name}",
    description="AHG with unweighted (per-prefix) path counting",
    compute=_hegemony_compute, needs_oracle=False,
    weighting="prefixes", tags=frozenset({"variant"}),
))
register(MetricSpec(
    name="AHI-P", family="hegemony", view_kind="international",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="AHI with unweighted (per-prefix) path counting",
    compute=_hegemony_compute, needs_oracle=False,
    weighting="prefixes", tags=frozenset({"variant"}),
))
register(MetricSpec(
    name="AHN-P", family="hegemony", view_kind="national",
    needs_country=True, replayable=True, label="{name}:{country}",
    description="AHN with unweighted (per-prefix) path counting",
    compute=_hegemony_compute, needs_oracle=False,
    weighting="prefixes", tags=frozenset({"variant"}),
))
register(MetricSpec(
    name="AHC-A", family="ahc", view_kind="global",
    needs_country=True, replayable=False, label="{name}:{country}",
    description="AHC with address-footprint origin weighting (IHR's "
                "user-population scheme)",
    compute=_ahc_compute, needs_oracle=False, needs_origins=True,
    weighting="addresses", tags=frozenset({"variant"}),
))
