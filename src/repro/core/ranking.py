"""Ranking containers shared by every metric.

A :class:`Ranking` is an ordered list of (ASN, raw value, share)
entries. ``value`` is the metric's raw score (addresses in a cone,
average betweenness, …); ``share`` is the paper's percentage — of a
country's address space for CC metrics, of observed paths for AH
metrics — and is what the case-study tables print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping


@dataclass(frozen=True, slots=True)
class RankEntry:
    """One ranked AS."""

    rank: int
    asn: int
    value: float
    share: float | None = None

    def share_pct(self) -> float:
        """Share as a 0–100 percentage (0 when unknown)."""
        return 100.0 * self.share if self.share is not None else 0.0


class Ranking:
    """An immutable metric ranking with O(1) rank lookups."""

    def __init__(
        self,
        metric: str,
        entries: list[RankEntry],
        country: str | None = None,
    ) -> None:
        self.metric = metric
        self.country = country
        self.entries = entries
        self._rank_of = {entry.asn: entry.rank for entry in entries}
        self._value_of = {entry.asn: entry.value for entry in entries}
        self._share_of = {entry.asn: entry.share for entry in entries}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_scores(
        cls,
        metric: str,
        scores: Mapping[int, float],
        shares: Mapping[int, float] | None = None,
        country: str | None = None,
    ) -> "Ranking":
        """Rank by descending value; ties break on ascending ASN."""
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        entries = [
            RankEntry(
                rank=index,
                asn=asn,
                value=value,
                share=shares.get(asn) if shares is not None else None,
            )
            for index, (asn, value) in enumerate(ordered, start=1)
        ]
        return cls(metric, entries, country)

    # -- queries ----------------------------------------------------------------

    def top(self, k: int = 10) -> list[RankEntry]:
        """The k best entries (the paper's TRA uses k = 10)."""
        return self.entries[:k]

    def top_asns(self, k: int = 10) -> list[int]:
        """Just the ASNs of the top-k."""
        return [entry.asn for entry in self.entries[:k]]

    def rank_of(self, asn: int) -> int | None:
        """1-based rank, or ``None`` when the AS is unranked."""
        return self._rank_of.get(asn)

    def value_of(self, asn: int) -> float:
        """Raw metric value (0.0 when unranked)."""
        return self._value_of.get(asn, 0.0)

    def share_of(self, asn: int) -> float | None:
        """Share (0..1), or ``None`` when unknown/unranked."""
        return self._share_of.get(asn)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RankEntry]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return (
            self.metric == other.metric
            and self.country == other.country
            and self.entries == other.entries
        )

    def __hash__(self) -> int:
        return hash((self.metric, self.country, tuple(self.entries)))

    # -- presentation --------------------------------------------------------------

    def render(
        self,
        k: int = 10,
        name_of: Callable[[int], str] | None = None,
    ) -> str:
        """A printable top-k table."""
        title = self.metric
        if self.country is not None and self.country not in self.metric:
            title = f"{self.metric} ({self.country})"
        lines = [f"== {title} ==", f"{'rank':>4}  {'ASN':>8}  {'share':>7}  name"]
        for entry in self.top(k):
            name = name_of(entry.asn) if name_of is not None else ""
            lines.append(
                f"{entry.rank:>4}  {entry.asn:>8}  {entry.share_pct():>6.1f}%  {name}"
            )
        return "\n".join(lines)

    def rank_changes(self, other: "Ranking", k: int = 10) -> list[tuple[int, int, int | None]]:
        """(asn, rank_here, rank_in_other) for this ranking's top-k.

        Used by the temporal tables (10 and 11): ``other`` is the later
        snapshot; ``None`` means the AS dropped out of the other ranking.
        """
        return [
            (entry.asn, entry.rank, other.rank_of(entry.asn))
            for entry in self.top(k)
        ]
