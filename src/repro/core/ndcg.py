"""Normalized Discounted Cumulative Gain over rankings (paper §4.1).

The paper evaluates downsampled rankings against the full-VP ranking
with NDCG over the top-10 ASes (the TRA), using the metric value as the
relevance:

    DCG_p   = Σ_{p=1..10} rel_p / log2(p + 1)
    NDCG_p  = DCG_p / FDCG_p

We score the *sample's ordering* with the *full ranking's* relevance
values, normalized by the full ranking's own DCG (the FDCG). A sample
that promotes ASes the full ranking considers unimportant scores low; a
sample with the same top-10 in the same order scores exactly 1.
"""

from __future__ import annotations

from typing import Sequence

import math

from repro.core.ranking import Ranking


def dcg(relevances: Sequence[float]) -> float:
    """Discounted cumulative gain of an ordered relevance list."""
    return sum(
        rel / math.log2(position + 2)
        for position, rel in enumerate(relevances)
    )


def ndcg(full: Ranking, sample: Ranking, k: int = 10) -> float:
    """NDCG@k of a sample ranking against the full (all-VP) ranking.

    Returns 0.0 when the full ranking is empty or has zero relevance
    mass in its top-k (nothing to agree with).
    """
    ideal = dcg([entry.value for entry in full.top(k)])
    if ideal <= 0.0:
        return 0.0
    achieved = dcg([full.value_of(asn) for asn in sample.top_asns(k)])
    return achieved / ideal
