"""Gamero-Garrido's Country-level Transit Influence baseline (paper §1.3).

CTI estimates the fraction of a country's address space that depends on
an AS for *international transit*. Per external VP, an AS scores, for
each path from that VP to an in-country prefix where it appears on the
transit (provider→customer) portion, the prefix's addresses scaled by
``1/k`` where ``k`` is the AS's distance from the origin in hops
(origin itself scores 0, its direct provider 1/1, the next 1/2, …).
Scores are normalized by the country's total address space, and the
top/bottom ``trim`` share of per-VP values is dropped before averaging,
as in AH.

The paper's discussion (§1.3) predicts CTI falls between CC and AH for
a given AS: transit-only like CC, path-fraction-flavoured like AH, but
discounting the origin's own large prefixes (AOLP behaviour).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.cone import SuffixResolver, transit_suffix
from repro.core.hegemony import trimmed_mean, validate_trim
from repro.core.ranking import Ranking
from repro.core.sanitize import PathRecord, RelationshipOracle
from repro.core.views import View
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.cache import ViewComputation


def per_vp_transit(
    records: Iterable[PathRecord],
    oracle: RelationshipOracle,
    suffix_of: SuffixResolver | None = None,
    suffixes: Iterable[tuple[int, ...]] | None = None,
) -> tuple[dict[str, dict[int, float]], set[int]]:
    """Step 1 of CTI: per-VP distance-discounted transit weight.

    ``suffix_of`` swaps in a memoised transit-suffix resolver shared
    with the cone metrics (see :class:`repro.perf.cache.SuffixCache`);
    ``suffixes`` goes one step further and supplies each record's
    transit suffix pre-resolved, aligned with ``records`` (the batch
    engine resolves a view's suffixes once and feeds every consumer).
    """
    per_vp: dict[str, dict[int, float]] = {}
    universe: set[int] = set()
    if suffixes is not None:
        pairs = zip(records, suffixes)
    elif suffix_of is not None:
        pairs = ((record, suffix_of(record.path)) for record in records)
    else:
        pairs = (
            (record, transit_suffix(record.path, oracle)) for record in records
        )
    for record, suffix in pairs:
        vp_scores = per_vp.setdefault(record.vp.ip, {})
        weight = float(record.addresses)
        length = len(suffix)
        # suffix runs top-provider → … → origin; distance from origin
        # is k = (length - 1 - index); the origin (k = 0) scores 0.
        for index, asn in enumerate(suffix):
            k = length - 1 - index
            if k == 0:
                continue
            vp_scores[asn] = vp_scores.get(asn, 0.0) + weight / k
            universe.add(asn)
    return per_vp, universe


def cti_scores(
    records: Iterable[PathRecord],
    oracle: RelationshipOracle,
    total_addresses: int,
    trim: float = 0.1,
    suffix_of: SuffixResolver | None = None,
) -> dict[int, float]:
    """CTI per AS over international-view records."""
    validate_trim(trim)
    if total_addresses <= 0:
        return {}
    per_vp, universe = per_vp_transit(records, oracle, suffix_of)
    vp_ips = sorted(per_vp)
    scores: dict[int, float] = {}
    for asn in universe:
        values = [
            per_vp[vp_ip].get(asn, 0.0) / total_addresses for vp_ip in vp_ips
        ]
        scores[asn] = trimmed_mean(values, trim)
    return scores


def cti_ranking(
    view: View,
    oracle: RelationshipOracle,
    trim: float = 0.1,
    tracer: AnyTracer = NULL_TRACER,
    compute: "ViewComputation | None" = None,
) -> Ranking:
    """CTI ranking over a country's international view.

    ``compute`` is an optional :class:`repro.perf.cache.ViewComputation`
    for this view: transit suffixes and the address total are shared
    with the cone metrics instead of being recomputed.
    """
    validate_trim(trim)
    country = view.country
    metric = "CTI" if country is None else f"CTI:{country}"
    with tracer.span(
        "cti", metric=metric, trim=trim, input=len(view.records),
    ) as span:
        if compute is not None:
            scores = compute.cti(trim)
        else:
            total = view.total_addresses()
            scores = cti_scores(view.records, oracle, total, trim)
        span.set(output=len(scores))
        tracer.metrics.histogram("cti.universe").observe(len(scores))
        shares: Mapping[int, float] = scores
        return Ranking.from_scores(metric, scores, shares, country)
