"""The paper's contribution: sanitization, views, and the four
country-level ranking metrics (CCI, CCN, AHI, AHN) plus the global and
baseline metrics they are compared against (CCG, AHG, AHC, CTI)."""

from repro.core.ahc import ahc_ranking, ahc_scores
from repro.core.cone import (
    cone_addresses,
    cone_ranking,
    customer_cones,
    prefix_cones,
    transit_suffix,
)
from repro.core.cti import cti_ranking, cti_scores
from repro.core.hegemony import hegemony_ranking, hegemony_scores, local_hegemony
from repro.core.ndcg import dcg, ndcg
from repro.core.pipeline import Pipeline, PipelineConfig, PipelineResult, run_pipeline
from repro.core.ranking import RankEntry, Ranking
from repro.core.sanitize import (
    FilterReport,
    PathRecord,
    PathSet,
    RelationshipOracle,
    sanitize,
)
from repro.core.views import (
    View,
    global_view,
    international_view,
    national_view,
    outbound_view,
)

__all__ = [
    "FilterReport",
    "PathRecord",
    "PathSet",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "RankEntry",
    "Ranking",
    "RelationshipOracle",
    "View",
    "ahc_ranking",
    "ahc_scores",
    "cone_addresses",
    "cone_ranking",
    "cti_ranking",
    "cti_scores",
    "customer_cones",
    "dcg",
    "global_view",
    "hegemony_ranking",
    "hegemony_scores",
    "international_view",
    "local_hegemony",
    "national_view",
    "outbound_view",
    "ndcg",
    "prefix_cones",
    "run_pipeline",
    "sanitize",
    "transit_suffix",
]
