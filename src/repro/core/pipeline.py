"""The end-to-end pipeline of Figure 6.

``world → propagate → daily RIBs → sanitize & geolocate → views →
rankings``, with every intermediate product exposed and every ranking
memoised. This module is the primary public entry point:

    >>> from repro import generate_world, run_pipeline
    >>> result = run_pipeline(generate_world(seed=7))
    >>> result.ranking("AHN", "AU").top(2)      # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.bgp.propagation import PropagationBasis, RoutingOutcome, propagate_all
from repro.bgp.rib import RibGenerationConfig, RibSeries, generate_rib_days
from repro.core.ranking import Ranking
from repro.core.registry import (
    VIEW_KINDS,
    MetricContext,
    MetricSpec,
    get_spec,
    metric_names,
    normalize_country,
    paper_metrics,
)
from repro.core.sanitize import PathSet, RelationshipOracle, sanitize
from repro.core.views import View
from repro.geo.database import GeoDatabase
from repro.geo.prefix_geo import PrefixGeolocation, geolocate_prefixes
from repro.geo.vp_geo import VPGeolocator
from repro.obs.trace import NULL_TRACER, AnyTracer, Tracer
from repro.relationships.inference import InferredRelationships, infer_relationships
from repro.topology.world import World

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.cache import SuffixCache, ViewComputation
    from repro.perf.index import PathIndex
    from repro.perf.pool import WorkerPool
    from repro.resilience.checkpoint import Checkpoint
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

#: Metrics the pipeline can compute, derived from the registry
#: (:mod:`repro.core.registry` is the single source of truth — adding a
#: metric there extends these automatically). Country metrics need
#: ``country``; CCO/AHO are the outbound (paths leaving a country)
#: extensions the paper's §7 proposes as future work.
COUNTRY_METRICS = metric_names(needs_country=True)
GLOBAL_METRICS = metric_names(needs_country=False)
ALL_METRICS = metric_names()


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """All pipeline knobs in one place (every default is the paper's)."""

    rib: RibGenerationConfig = field(default_factory=RibGenerationConfig)
    #: address-database degradation (see GeoDatabase.from_world)
    geo_noise_rate: float = 0.02
    geo_miss_rate: float = 0.005
    #: prefix-geolocation majority threshold (§3.2.1 uses 50 %)
    geo_threshold: float = 0.5
    #: hegemony / CTI per-VP trim fraction (§1.2 uses 10 %)
    trim: float = 0.1
    #: label cones with inferred relationships instead of ground truth
    use_inferred_relationships: bool = False
    #: route tie-break policy: "hash" diversifies equally-good egresses
    #: across ASes (hot-potato realism); "asn" is the simplest policy
    tiebreak: str = "hash"
    #: number of routing planes (salted tie-break variants); VP ASes are
    #: spread across planes, adding the path diversity real collector
    #: ecosystems exhibit. 1 = single plane (only meaningful with "hash")
    path_diversity: int = 1
    #: address family the pipeline ranks (4 or 6); mirrors how the paper
    #: (and IHR) treat IPv4 and IPv6 as separate ranking universes
    family: int = 4
    seed: int = 0
    #: process fan-out for the heavy loops (propagation origins, NDCG
    #: stability trials). 1 = fully serial, byte-identical to the
    #: pre-fan-out pipeline; N > 1 chunks work across a process pool
    #: with a deterministic merge, so results never depend on N.
    workers: int = 1
    #: collect per-stage telemetry (spans + metrics) into
    #: ``PipelineResult.trace``; ``"memory"`` additionally captures
    #: tracemalloc peaks per stage. ``False`` keeps the no-op tracer on
    #: every hook (near-zero overhead).
    trace: bool | str = False
    #: retry/timeout bounds for the process fan-out (None = the
    #: resilience layer's defaults: 3 attempts, no timeout, serial
    #: fallback on) — shapes failure behavior, never output values
    retry: "RetryPolicy | None" = None
    #: deterministic fault-injection plan (tests and ``make faults``
    #: exercise failure paths with it; None injects nothing)
    faults: "FaultPlan | None" = None
    #: sanitized-record store backend: ``"memory"`` keeps the record
    #: list in RAM (the default; numpy SoA mirror with a stdlib-array
    #: fallback), ``"mmap"`` streams accepted records into an on-disk
    #: spill and maps it read-only (bounded RSS — the ``large`` tier's
    #: mode). Output bytes are identical across backends, so neither
    #: knob is semantic (see ``SEMANTIC_KNOBS``).
    store_backend: str = "memory"
    #: spill directory for the mmap backend; ``None`` uses a run-scoped
    #: temp dir removed by :meth:`PipelineResult.close`. Pass a real
    #: path to keep the spill (and to resume a torn ingestion).
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.path_diversity < 1:
            raise ValueError("path_diversity must be >= 1")
        if self.family not in (4, 6):
            raise ValueError("family must be 4 or 6")
        if self.trace not in (False, True, "memory"):
            raise ValueError("trace must be False, True, or 'memory'")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        # the dense and sparse trimmed-mean paths must reject the same
        # inputs (dense used to clamp trim >= 0.5 while sparse raised)
        if not 0.0 <= self.trim < 0.5:
            raise ValueError(f"trim out of range: {self.trim}")
        if self.store_backend not in ("memory", "mmap"):
            raise ValueError(
                f"store_backend must be 'memory' or 'mmap', "
                f"got {self.store_backend!r}"
            )


class PipelineResult:
    """Everything one pipeline run produced, with memoised rankings."""

    def __init__(
        self,
        world: World,
        config: PipelineConfig,
        outcome: RoutingOutcome,
        ribs: RibSeries,
        geodb: GeoDatabase,
        prefix_geo: PrefixGeolocation,
        vp_geo: VPGeolocator,
        paths: PathSet,
        oracle: RelationshipOracle,
        inferred: InferredRelationships | None,
        tracer: AnyTracer = NULL_TRACER,
        outcomes: "list[RoutingOutcome] | None" = None,
        pool: "WorkerPool | None" = None,
        spill_tmp: str | None = None,
    ) -> None:
        self.world = world
        self.config = config
        self.outcome = outcome
        #: all routing planes (``outcome`` is ``outcomes[0]``)
        self.outcomes = outcomes if outcomes is not None else [outcome]
        #: the persistent worker pool the run's fan-outs shared (None
        #: when the run was serial); stability sweeps reuse it
        self._pool = pool
        #: run-owned temp spill directory (mmap backend with no
        #: explicit ``spill_dir``); removed by :meth:`close`
        self._spill_tmp = spill_tmp
        self.ribs = ribs
        self.geodb = geodb
        self.prefix_geo = prefix_geo
        self.vp_geo = vp_geo
        self.paths = paths
        self.oracle = oracle
        self.inferred = inferred
        #: the tracer every lazily-computed view/ranking records into
        #: (the shared no-op tracer when telemetry is off)
        self._tracer = tracer
        self._views: dict[tuple[str, str | None], View] = {}
        self._rankings: dict[tuple[str, str | None], Ranking] = {}
        #: batch-engine state (repro.perf), all built lazily: the shared
        #: path index, the per-(path, oracle) suffix cache, and one
        #: ViewComputation per view key (the cross-metric cache)
        self._index: "PathIndex | None" = None
        self._suffixes: "SuffixCache | None" = None
        self._computations: dict[tuple[str, str | None], "ViewComputation"] = {}

    @property
    def trace(self) -> AnyTracer | None:
        """The collected telemetry (:class:`repro.obs.Tracer`), or
        ``None`` when the run was not traced."""
        return self._tracer if self._tracer.enabled else None

    def propagation_bases(self) -> "list[PropagationBasis | None]":
        """Per-plane :class:`repro.bgp.propagation.PropagationBasis`
        captured by the run (``None`` entries when the run was not
        asked to capture them) — feed these to the next snapshot's
        ``run_pipeline(..., propagation_bases=...)`` for incremental
        re-propagation."""
        return [outcome.basis for outcome in self.outcomes]

    def close(self) -> None:
        """Release the run's worker pool and any run-owned spill temp
        directory (idempotent; the result's cached views and rankings
        stay usable — on POSIX even the already-mapped spill columns
        stay readable until the process exits, but nothing new can be
        opened from the removed directory)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._spill_tmp is not None:
            import shutil

            shutil.rmtree(self._spill_tmp, ignore_errors=True)
            self._spill_tmp = None

    # -- views & batch-engine state -----------------------------------------

    def path_index(self) -> "PathIndex":
        """The shared :class:`repro.perf.PathIndex` over the sanitized
        records (built on first use, one O(n) pass)."""
        if self._index is None:
            from repro.perf.index import PathIndex

            with self._tracer.span("index", input=len(self.paths.records)):
                self._index = PathIndex.from_paths(self.paths)
        return self._index

    def suffix_cache(self) -> "SuffixCache":
        """The shared per-(path, oracle) transit-suffix cache.

        The cache is handed the SoA path store: on its first miss it
        computes every distinct path's suffix start in one vectorized
        pass, after which each resolution is an O(1) slice — only the
        paths actually touched ever materialise a suffix tuple. A
        store-sliced entry is value-identical to one computed by the
        per-path backward scan, so consumers cannot tell the difference.
        """
        if self._suffixes is None:
            from repro.perf.cache import SuffixCache

            self._suffixes = SuffixCache(
                self.oracle, self._tracer, store=self.paths.store()
            )
        return self._suffixes

    def computation(
        self, kind: str, country: str | None = None
    ) -> "ViewComputation":
        """The memoised :class:`repro.perf.ViewComputation` for one of
        this result's views — the cross-metric intermediate cache the
        CC*/AH*/CTI rankings share."""
        key = (kind, country)
        cached = self._computations.get(key)
        if cached is None:
            from repro.perf.cache import ViewComputation

            cached = ViewComputation(
                self.view(kind, country), self.oracle,
                self.suffix_cache(), self._tracer,
            )
            self._computations[key] = cached
        return cached

    def view(self, kind: str, country: str | None = None) -> View:
        """A memoised view: ``"national"``/``"international"``/
        ``"outbound"`` (need a country) or ``"global"``.

        Views come from :meth:`path_index` bucket lookups — O(selected
        records) after the index's one-time O(all records) build — and
        are record-for-record identical to the naive filters in
        :mod:`repro.core.views`.
        """
        country = normalize_country(country)
        key = (kind, country)
        if key in self._views:
            return self._views[key]
        if kind not in VIEW_KINDS:
            raise ValueError(f"unknown view kind {kind!r}")
        if kind != "global":
            self._need_country(country)
        built = self.path_index().view(
            kind, None if kind == "global" else country, tracer=self._tracer,
        )
        self._views[key] = built
        return built

    # -- rankings ---------------------------------------------------------------

    def ranking(self, metric: str, country: str | None = None) -> Ranking:
        """A memoised ranking for one metric (and country, if needed).

        ``metric`` is any registered name (see
        :mod:`repro.core.registry`); the spec decides whether
        ``country`` is required, which view the metric consumes, and
        how it is computed.
        """
        spec = get_spec(metric)
        country = normalize_country(country) if spec.needs_country else None
        key = (spec.name, country)
        if key in self._rankings:
            return self._rankings[key]
        tracer = self._tracer
        with tracer.span("ranking", metric=spec.name, country=country) as span:
            built = self._compute_ranking(spec, country)
            span.set(output=len(built.entries))
            tracer.metrics.histogram("ranking.size").observe(len(built.entries))
            tracer.metrics.counter("ranking.computed").inc()
        self._rankings[key] = built
        return built

    def _compute_ranking(self, spec: MetricSpec, country: str | None) -> Ranking:
        """Assemble the spec's :class:`MetricContext` and delegate —
        the spec (not this method) knows how the metric is computed."""
        code = self._need_country(country) if spec.needs_country else None
        view_country = None if spec.view_kind == "global" else code
        origins: tuple[int, ...] = ()
        if spec.needs_origins and code is not None:
            origins = tuple(self.world.graph.by_registry_country(code))
        return spec.build(MetricContext(
            view=self.view(spec.view_kind, view_country),
            oracle=self.oracle,
            trim=self.config.trim,
            country=code,
            compute=self.computation(spec.view_kind, view_country),
            origins=origins,
            tracer=self._tracer,
        ))

    def rank_all(
        self,
        metrics: Iterable[str] | None = None,
        countries: Iterable[str] | None = None,
        checkpoint: "Checkpoint | None" = None,
    ) -> dict[tuple[str, str | None], Ranking]:
        """Batch API: every requested metric for every requested country.

        ``metrics`` defaults to the paper's four country metrics (CCI,
        CCN, AHI, AHN); global metrics in the list are computed once
        under a ``None`` country key. ``countries`` defaults to the
        countries with a qualifying national view
        (:meth:`countries_with_national_view`).

        This is the multi-country sweep entry point: the shared path
        index makes every view a bucket lookup, and the per-view
        :class:`~repro.perf.cache.ViewComputation` cache means e.g.
        CCI/AHI/CTI on one country walk its international view's
        suffixes and address totals once between them. Keys come back
        in (metric, country) iteration order; values are the same
        memoised rankings :meth:`ranking` returns.

        ``checkpoint`` (a :class:`repro.resilience.Checkpoint`) makes
        the sweep resumable: every completed unit is persisted as it
        finishes, units already on disk are loaded instead of
        recomputed, and a resumed sweep's output is value-identical to
        an uninterrupted one (the serialization is value-exact). The
        config's fault plan may inject a mid-sweep crash
        (``crash_after_units``) to exercise exactly that recovery.

        Duplicate ``(metric, country)`` units are computed (and
        checkpointed) once: repeats in ``metrics``/``countries`` do not
        inflate the ``computed`` counter — which would skew
        ``FaultPlan.crashes_after`` — or double-write checkpoint units.
        """
        spec_list = [get_spec(m) for m in (
            metrics if metrics is not None else paper_metrics()
        )]
        country_list = [normalize_country(c) for c in (
            countries if countries is not None
            else self.countries_with_national_view()
        )]
        units: list[tuple[MetricSpec, str | None]] = []
        seen: set[tuple[str, str | None]] = set()
        for spec in spec_list:
            for country in (country_list if spec.needs_country else [None]):
                unit = (spec.name, country)
                if unit in seen:
                    continue
                seen.add(unit)
                units.append((spec, country))
        rankings: dict[tuple[str, str | None], Ranking] = {}
        faults = self.config.faults
        computed = 0
        with self._tracer.span(
            "sweep", metrics=len(spec_list), countries=len(country_list),
            resumed=checkpoint.loaded if checkpoint is not None else 0,
        ):
            for spec, country in units:
                if checkpoint is not None:
                    ranking = self._resume_unit(checkpoint, spec, country)
                    if ranking is not None:
                        rankings[(spec.name, country)] = ranking
                        continue
                ranking = self.ranking(spec.name, country)
                rankings[(spec.name, country)] = ranking
                computed += 1
                if checkpoint is not None:
                    from repro.resilience.checkpoint import ranking_to_payload

                    checkpoint.put(
                        spec.unit_key(country), ranking_to_payload(ranking)
                    )
                if faults is not None and faults.crashes_after(computed):
                    from repro.resilience.faults import InjectedCrash

                    raise InjectedCrash(
                        f"injected sweep crash after {computed} units"
                    )
        return rankings

    def _resume_unit(
        self, checkpoint: "Checkpoint", spec: MetricSpec, country: str | None
    ) -> Ranking | None:
        """A previously-checkpointed ranking, also seeded into the
        memo table so later :meth:`ranking` calls agree with it."""
        payload = checkpoint.get(spec.unit_key(country))
        if payload is None:
            return None
        from repro.resilience.checkpoint import ranking_from_payload

        ranking = ranking_from_payload(payload)  # type: ignore[arg-type]
        self._tracer.metrics.counter("resilience.checkpoint_hit").inc()
        self._rankings.setdefault((spec.name, country), ranking)
        return self._rankings[(spec.name, country)]

    # -- conveniences ---------------------------------------------------------------

    def country_addresses(self) -> dict[str, int]:
        """Geolocated destination addresses per country."""
        return self.paths.country_addresses()

    def countries_with_national_view(self, min_vps: int = 7) -> list[str]:
        """Countries with at least ``min_vps`` located in-country VPs
        (the paper requires ≥ 7 for stable national rankings)."""
        census = self.vp_geo.census()
        return sorted(code for code, count in census.items() if count >= min_vps)

    def as_name(self, asn: int) -> str:
        """Display name for an AS (empty for unknown)."""
        node = self.world.graph.maybe_node(asn)
        return node.name if node is not None else ""

    @staticmethod
    def _need_country(country: str | None) -> str:
        if country is None:
            raise ValueError("this metric requires a country code")
        return country


@dataclass
class Pipeline:
    """Reusable pipeline bound to a config (call :meth:`run` per world)."""

    config: PipelineConfig = field(default_factory=PipelineConfig)

    def run(
        self,
        world: World,
        tracer: "Tracer | None" = None,
        propagation_bases: "list[PropagationBasis | None] | None" = None,
        capture_bases: bool = False,
    ) -> PipelineResult:
        """Execute every stage of Figure 6 on one world.

        ``tracer`` overrides the tracer built from ``config.trace``
        (pass a preconfigured :class:`repro.obs.Tracer` to share one
        registry across runs or to tune memory capture).

        ``propagation_bases`` (one per salt plane, from a previous
        snapshot's :meth:`PipelineResult.propagation_bases`) makes the
        propagate stage incremental: only origins whose reachable
        region changed re-run, with byte-identical output.
        ``capture_bases`` records fresh bases on this run's outcomes
        for the *next* snapshot.

        When ``config.workers > 1`` the run creates one persistent
        :class:`repro.perf.pool.WorkerPool` that every fan-out shares —
        all propagation planes and, later, the result's stability
        sweeps. Call :meth:`PipelineResult.close` to release it.
        """
        config = self.config
        if tracer is None:
            tracer = (
                Tracer(capture_memory=config.trace == "memory")
                if config.trace else NULL_TRACER
            )
        pool: "WorkerPool | None" = None
        if config.workers > 1:
            from repro.perf.pool import WorkerPool

            pool = WorkerPool(config.workers)
        with tracer.span(
            "pipeline", world=world.name, seed=config.seed, family=config.family,
        ):
            with tracer.span("propagate", planes=config.path_diversity):
                outcomes = [
                    propagate_all(
                        world.graph, keep=world.vp_asns(),
                        tiebreak=config.tiebreak, salt=salt, tracer=tracer,
                        workers=config.workers, policy=config.retry,
                        faults=config.faults,
                        basis=(
                            propagation_bases[salt]
                            if propagation_bases is not None
                            and salt < len(propagation_bases) else None
                        ),
                        capture_basis=capture_bases,
                        pool=pool,
                    )
                    for salt in range(config.path_diversity)
                ]
            outcome = outcomes[0]
            ribs = generate_rib_days(
                world, outcomes, config.rib, config.seed, tracer=tracer
            )
            with tracer.span("geodb"):
                geodb = GeoDatabase.from_world(
                    world, config.geo_noise_rate, config.geo_miss_rate,
                    config.seed + 1, config.family,
                )
            prefix_geo = geolocate_prefixes(
                world.announced_prefixes(), geodb, config.geo_threshold,
                version=config.family, tracer=tracer,
            )
            vp_geo = VPGeolocator(world.collectors)
            graph = world.graph
            family_records = (
                record for record in ribs.records()
                if record.prefix.version == config.family
            )
            spill_tmp: str | None = None
            if config.store_backend == "mmap":
                import tempfile

                from repro.perf.spill import sanitize_to_store

                spill_dir = config.spill_dir
                if spill_dir is None:
                    spill_dir = spill_tmp = tempfile.mkdtemp(
                        prefix="repro-spill-"
                    )
                paths = sanitize_to_store(
                    family_records,
                    clique=graph.clique(),
                    is_allocated=graph.asn_registry.is_allocated,
                    route_servers=graph.route_servers(),
                    vp_geo=vp_geo,
                    prefix_geo=prefix_geo,
                    directory=spill_dir,
                    tracer=tracer,
                )
            else:
                paths = sanitize(
                    family_records,
                    clique=graph.clique(),
                    is_allocated=graph.asn_registry.is_allocated,
                    route_servers=graph.route_servers(),
                    vp_geo=vp_geo,
                    prefix_geo=prefix_geo,
                    tracer=tracer,
                )
            inferred: InferredRelationships | None = None
            oracle: RelationshipOracle = graph
            if config.use_inferred_relationships:
                with tracer.span("relationships", input=len(paths.records)):
                    inferred = infer_relationships(
                        record.path for record in paths.records
                    )
                oracle = inferred
        return PipelineResult(
            world, config, outcome, ribs, geodb, prefix_geo, vp_geo, paths,
            oracle, inferred, tracer, outcomes=outcomes, pool=pool,
            spill_tmp=spill_tmp,
        )


def run_pipeline(
    world: World,
    config: PipelineConfig | None = None,
    tracer: "Tracer | None" = None,
    propagation_bases: "list[PropagationBasis | None] | None" = None,
    capture_bases: bool = False,
) -> PipelineResult:
    """One-shot convenience wrapper around :class:`Pipeline`."""
    return Pipeline(config or PipelineConfig()).run(
        world, tracer,
        propagation_bases=propagation_bases, capture_bases=capture_bases,
    )
