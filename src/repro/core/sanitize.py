"""The Table-1 sanitization pipeline.

Converts raw RIB records into a clean :class:`PathSet`, rejecting (in
this order, so categories stay disjoint as in the paper's Table 1):

1. **unstable** — the prefix was not present in all daily RIBs;
2. **unallocated** — the path mentions an ASN the (simulated) IANA has
   not assigned;
3. **loop** — an ASN repeats non-adjacently (``A C A``);
4. **poisoned** — a non-top-tier AS sits between two top-tier ASes;
5. **vp_no_location** — the VP peers with a multi-hop collector, so its
   country is untrusted;
6. **covered** — the prefix is entirely covered by more specifics (the
   paper removes these while preparing geolocation);
7. **prefix_no_location** — geolocation reached no majority country.

Surviving paths are *cleaned*: prepending is collapsed and IXP
route-server ASNs are removed (neither rejects the path).

All counts are reported in announcement units (one VP × prefix × day),
matching the paper's accounting of 248M announcements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Protocol, Sequence

from repro.bgp.announcement import RibRecord
from repro.bgp.collectors import VantagePoint
from repro.geo.prefix_geo import PrefixGeolocation
from repro.geo.vp_geo import VPGeolocator
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix, parse_address
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.pathstore import PathStore


class RelationshipOracle(Protocol):
    """Anything that can label the relationship of an adjacent AS pair.

    Returns ``"p2c"`` (left provides transit to right), ``"c2p"``,
    ``"p2p"``, or ``None`` when unknown — the signature of
    :meth:`repro.topology.model.ASGraph.relationship` and of the
    inferred-relationship table.
    """

    def relationship(self, left: int, right: int) -> str | None:
        """Label for the (left, right) adjacency, or ``None``."""
        ...


@dataclass(frozen=True, slots=True)
class PathRecord:
    """One sanitized observation: a located VP's clean path to a
    geolocated prefix."""

    vp: VantagePoint
    vp_country: str
    prefix: Prefix
    prefix_country: str
    path: ASPath
    addresses: int

    @property
    def origin(self) -> int:
        """Origin AS of the prefix."""
        return self.path.origin


#: Rejection categories in evaluation order (Table 1 rows).
REJECT_CATEGORIES: tuple[str, ...] = (
    "unstable",
    "unallocated",
    "loop",
    "poisoned",
    "vp_no_location",
    "covered",
    "prefix_no_location",
)


@dataclass
class FilterReport:
    """Announcement-unit accounting of the sanitization pass."""

    total: int = 0
    accepted: int = 0
    rejected: dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in REJECT_CATEGORIES}
    )
    #: first few rejected records per category, for provenance/debugging
    samples: dict[str, list[RibRecord]] = field(default_factory=dict)
    #: how many sample records to retain per category
    sample_limit: int = 5

    def note_rejection(self, category: str, record: RibRecord, weight: int) -> None:
        """Account one rejected record (and keep it as a sample)."""
        self.rejected[category] += weight
        bucket = self.samples.setdefault(category, [])
        if len(bucket) < self.sample_limit:
            bucket.append(record)

    def rejected_total(self) -> int:
        """All rejected announcements."""
        return sum(self.rejected.values())

    def pct(self, count: int) -> float:
        """Percentage of the total input."""
        return 100.0 * count / self.total if self.total else 0.0

    def as_rows(self) -> list[tuple[str, int, float]]:
        """(label, count, percent) rows in the paper's Table 1 layout."""
        rows: list[tuple[str, int, float]] = [
            ("rejected", self.rejected_total(), self.pct(self.rejected_total()))
        ]
        for category in REJECT_CATEGORIES:
            count = self.rejected[category]
            rows.append((category, count, self.pct(count)))
        rows.append(("accepted", self.accepted, self.pct(self.accepted)))
        rows.append(("total", self.total, 100.0 if self.total else 0.0))
        return rows

    def render(self) -> str:
        """A printable Table-1 style summary."""
        lines = [f"{'category':<20}{'announcements':>15}{'share':>10}"]
        for label, count, pct in self.as_rows():
            indent = "  " if label in REJECT_CATEGORIES else ""
            lines.append(f"{indent}{label:<20}{count:>13}{pct:>9.2f}%")
        return "\n".join(lines)


@dataclass
class PathSet:
    """The sanitized, deduplicated input to every ranking metric.

    ``records`` is a plain list for the in-memory backend; the
    out-of-core path (:func:`repro.perf.spill.sanitize_to_store`) hands
    in a read-only lazy sequence over mapped columns instead — every
    consumer treats it as an immutable ``Sequence`` either way.
    """

    records: Sequence[PathRecord]
    report: FilterReport
    #: lazily-built SoA mirror of the records (see :meth:`store`);
    #: derived state, excluded from equality
    _store: object = field(default=None, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PathRecord]:
        return iter(self.records)

    def store(self) -> "PathStore":
        """The records flattened into a :class:`repro.perf.PathStore`
        (built on first use, then shared by every array-walking
        consumer — the suffix bulk-prime and the index's origin
        buckets). The records list must not be mutated after this."""
        if self._store is None:
            from repro.perf.pathstore import PathStore

            self._store = PathStore(self.records)
        return self._store

    def vps(self) -> list[VantagePoint]:
        """Distinct VPs present, ordered by IP (numeric, not lexical)."""
        seen: dict[str, VantagePoint] = {}
        for record in self.records:
            seen.setdefault(record.vp.ip, record.vp)
        return [seen[ip] for ip in sorted(seen, key=parse_address)]

    def countries(self) -> list[str]:
        """Destination countries present, sorted."""
        return sorted({record.prefix_country for record in self.records})

    def country_addresses(self) -> dict[str, int]:
        """Distinct geolocated addresses per destination country."""
        per_country: dict[str, dict[Prefix, int]] = {}
        for record in self.records:
            per_country.setdefault(record.prefix_country, {})[record.prefix] = (
                record.addresses
            )
        return {
            country: sum(addresses.values())
            for country, addresses in sorted(per_country.items())
        }


def is_poisoned(path: ASPath, clique: frozenset[int]) -> bool:
    """Whether a non-clique AS sits between two clique ASes (paper §3.1)."""
    asns = path.collapse_prepending().asns
    for index in range(1, len(asns) - 1):
        if (
            asns[index] not in clique
            and asns[index - 1] in clique
            and asns[index + 1] in clique
        ):
            return True
    return False


def sanitize(
    records: Iterable[RibRecord],
    clique: frozenset[int],
    is_allocated: Callable[[int], bool],
    route_servers: frozenset[int],
    vp_geo: VPGeolocator,
    prefix_geo: PrefixGeolocation,
    tracer: AnyTracer = NULL_TRACER,
) -> PathSet:
    """Run the full Table-1 pipeline over deduplicated RIB records.

    ``tracer`` wraps the pass in a ``sanitize`` span and mirrors the
    :class:`FilterReport` into ``sanitize.input`` / ``sanitize.accepted``
    / ``sanitize.dropped.<category>`` counters — the aggregation happens
    in the report either way, so tracing adds nothing to the per-record
    loop.
    """
    with tracer.span("sanitize") as span:
        path_set = _sanitize(
            records, clique, is_allocated, route_servers, vp_geo, prefix_geo
        )
        report = path_set.report
        span.set(
            input=report.total, output=report.accepted,
            records=len(path_set.records),
        )
        metrics = tracer.metrics
        metrics.counter("sanitize.input").inc(report.total)
        metrics.counter("sanitize.accepted").inc(report.accepted)
        for category in REJECT_CATEGORIES:
            metrics.counter(f"sanitize.dropped.{category}").inc(
                report.rejected[category]
            )
    return path_set


def _check_path(
    path: ASPath,
    clique: frozenset[int],
    allocated: dict[int, bool],
    is_allocated: Callable[[int], bool],
    route_servers: frozenset[int],
) -> tuple[str | None, ASPath | None]:
    """The path-only half of the Table-1 pipeline for one path:
    ``(reject_category, None)`` or ``(None, cleaned_path)``.

    Exactly the unallocated → loop → poisoned → clean sequence of the
    per-record loop, with one prepending collapse shared by all three
    steps (``has_loop``/``is_poisoned``/clean each used to collapse on
    their own) and per-ASN allocation verdicts memoised in
    ``allocated`` — the registry answer for an ASN never changes within
    one pass.
    """
    for asn in path.asns:
        verdict = allocated.get(asn)
        if verdict is None:
            verdict = allocated[asn] = bool(is_allocated(asn))
        if not verdict:
            return ("unallocated", None)
    collapsed = path.collapse_prepending()
    asns = collapsed.asns
    if len(set(asns)) != len(asns):
        return ("loop", None)
    if not clique.isdisjoint(asns):
        for index in range(1, len(asns) - 1):
            if (
                asns[index] not in clique
                and asns[index - 1] in clique
                and asns[index + 1] in clique
            ):
                return ("poisoned", None)
    if route_servers and not route_servers.isdisjoint(asns):
        collapsed = collapsed.without(route_servers)
    return (None, collapsed)


def _sanitize(
    records: Iterable[RibRecord],
    clique: frozenset[int],
    is_allocated: Callable[[int], bool],
    route_servers: frozenset[int],
    vp_geo: VPGeolocator,
    prefix_geo: PrefixGeolocation,
) -> PathSet:
    report = FilterReport()
    out = list(sanitize_stream(
        records, clique, is_allocated, route_servers, vp_geo, prefix_geo,
        report,
    ))
    return PathSet(records=out, report=report)


def sanitize_stream(
    records: Iterable[RibRecord],
    clique: frozenset[int],
    is_allocated: Callable[[int], bool],
    route_servers: frozenset[int],
    vp_geo: VPGeolocator,
    prefix_geo: PrefixGeolocation,
    report: FilterReport,
) -> Iterator[PathRecord]:
    """The Table-1 pass as a generator of accepted records.

    Yields each surviving :class:`PathRecord` as soon as its input
    record has been judged, mutating ``report`` as a side effect — the
    streaming protocol the out-of-core spill ingestion
    (:mod:`repro.perf.spill`) consumes without ever holding the record
    list. :func:`sanitize` is this generator collected into a
    :class:`PathSet`; both paths are value-identical record for record.

    A consumer that checkpoints mid-stream may rely on this invariant:
    whenever a record is yielded, ``report`` accounts for exactly the
    input records consumed so far (the per-entity memos are pure, so a
    resumed pass re-derives identical verdicts).
    """
    # Per-entity memos: path verdicts repeat across records sharing a
    # path object/value, VP location depends only on the collector,
    # and each prefix resolves its (covered, country, addresses) fate
    # once. All three underliers are pure within one pass.
    path_verdicts: dict[ASPath, tuple[str | None, ASPath | None]] = {}
    allocated: dict[int, bool] = {}
    collector_country: dict[str, str | None] = {}
    prefix_fate: dict[Prefix, tuple[str | None, str | None, int]] = {}
    covered = prefix_geo.covered
    owned = prefix_geo.owned_addresses
    for record in records:
        weight = record.days_present
        report.total += weight
        if not record.stable:
            report.note_rejection("unstable", record, weight)
            continue
        path = record.path
        verdict = path_verdicts.get(path)
        if verdict is None:
            verdict = path_verdicts[path] = _check_path(
                path, clique, allocated, is_allocated, route_servers
            )
        category, cleaned = verdict
        if category is not None:
            report.note_rejection(category, record, weight)
            continue
        vp_country = collector_country.get(record.vp.collector, "")
        if vp_country == "":
            vp_country = vp_geo.country(record.vp)
            collector_country[record.vp.collector] = vp_country
        if vp_country is None:
            report.note_rejection("vp_no_location", record, weight)
            continue
        prefix = record.prefix
        fate = prefix_fate.get(prefix)
        if fate is None:
            if prefix in covered:
                fate = ("covered", None, 0)
            else:
                country = prefix_geo.country(prefix)
                fate = (
                    ("prefix_no_location", None, 0) if country is None
                    else (None, country, owned.get(prefix, 0))
                )
            prefix_fate[prefix] = fate
        prefix_category, prefix_country, addresses = fate
        if prefix_category is not None:
            report.note_rejection(prefix_category, record, weight)
            continue
        assert cleaned is not None and prefix_country is not None
        report.accepted += weight
        yield PathRecord(
            vp=record.vp,
            vp_country=vp_country,
            prefix=prefix,
            prefix_country=prefix_country,
            path=cleaned,
            addresses=addresses,
        )
