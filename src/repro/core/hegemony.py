"""AS hegemony metrics: AHG (global) and the country AHI / AHN.

Implementation of Fontugne et al.'s two-step estimator (paper §1.2,
Figure 2):

1. per vantage point, compute every AS's betweenness over that VP's
   paths, weighting each path by the number of addresses of its
   destination prefix — the score is the fraction of address-weighted
   paths containing the AS (origin and VP-side AS included);
2. per AS, discard the highest and lowest ``trim`` fraction of the
   per-VP scores and average the rest, which suppresses VPs that are
   topologically very close to or far from the AS.

A VP that saw the view's prefixes but none of the paths through an AS
contributes a 0 for that AS — those zeros matter, they are exactly what
pulls down ASes visible from only a few VPs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.ranking import Ranking
from repro.core.sanitize import PathRecord
from repro.core.views import View
from repro.obs.trace import NULL_TRACER, AnyTracer

if TYPE_CHECKING:  # perf imports core at runtime; the cycle is type-only
    from repro.perf.cache import ViewComputation


def per_vp_scores(
    records: Iterable[PathRecord],
    weighting: str = "addresses",
) -> tuple[dict[str, dict[int, float]], set[int]]:
    """Per-VP weighted betweenness, plus the AS universe.

    ``weighting="addresses"`` is the paper's Figure-2 estimator (paths
    weighted by destination address counts); ``"prefixes"`` counts every
    path once, the unweighted variant used as an ablation.
    """
    if weighting not in ("addresses", "prefixes"):
        raise ValueError(f"unknown hegemony weighting {weighting!r}")
    weight_on: dict[str, dict[int, float]] = {}
    weight_total: dict[str, float] = {}
    universe: set[int] = set()
    for record in records:
        weight = float(record.addresses) if weighting == "addresses" else 1.0
        if weight <= 0.0:
            continue
        vp_scores = weight_on.setdefault(record.vp.ip, {})
        weight_total[record.vp.ip] = weight_total.get(record.vp.ip, 0.0) + weight
        for asn in record.path.unique_asns():
            vp_scores[asn] = vp_scores.get(asn, 0.0) + weight
            universe.add(asn)
    scores = {
        vp_ip: {
            asn: value / weight_total[vp_ip] for asn, value in vp_scores.items()
        }
        for vp_ip, vp_scores in weight_on.items()
    }
    return scores, universe


def validate_trim(trim: float) -> float:
    """Reject trims outside ``[0.0, 0.5)`` with a uniform message.

    Every ranking entry point — dense or sparse, cached or not — funnels
    through this check, so an invalid trim fails the same way on every
    code path instead of being silently capped by the dense
    :func:`trimmed_mean` while the sparse step raises.
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim out of range: {trim}")
    return trim


def trimmed_mean(values: list[float], trim: float) -> float:
    """Mean after dropping ``ceil(trim·n)`` values from each end.

    The trim never eats the whole sample: it is capped at
    ``(n - 1) // 2`` per side, so three values keep their median (the
    paper's Figure 2 example) and a single value is returned as-is.
    """
    n = len(values)
    if n == 0:
        return 0.0
    k = min(math.ceil(trim * n), (n - 1) // 2)
    kept = sorted(values)[k : n - k]
    return sum(kept) / len(kept)


def trimmed_scores(
    per_vp: dict[str, dict[int, float]],
    universe: set[int],
    trim: float,
) -> dict[int, float]:
    """Step 2 of the estimator: per-AS trimmed mean over the per-VP
    betweenness table (a 0 for every VP that missed the AS)."""
    validate_trim(trim)
    vp_ips = sorted(per_vp)
    scores: dict[int, float] = {}
    for asn in universe:
        values = [per_vp[vp_ip].get(asn, 0.0) for vp_ip in vp_ips]
        scores[asn] = trimmed_mean(values, trim)
    return scores


def trimmed_scores_sparse(
    per_vp: dict[str, dict[int, float]],
    universe: set[int],
    trim: float,
) -> dict[int, float]:
    """Exactly :func:`trimmed_scores`, computed zero-skipping.

    The per-VP table is sparse — a VP stores an entry only for ASes on
    its paths — while the dense formulation materialises, per AS, a
    value for *every* VP (mostly zeros) and sorts it. Here the table is
    inverted once into per-AS nonzero value lists; the trimmed window
    over the implicit sorted array ``[0.0] * zeros + sorted(nonzero)``
    is then a slice of the nonzero list. Identical output (the kept
    values are summed in the same ascending order, and leading zeros
    do not perturb a float sum of non-negative terms); used on the
    batch-engine path (:class:`repro.perf.cache.ViewComputation`).
    """
    validate_trim(trim)
    n = len(per_vp)
    if n == 0:
        return {asn: 0.0 for asn in universe}
    nonzero: dict[int, list[float]] = {}
    for vp_scores in per_vp.values():
        for asn, value in vp_scores.items():
            bucket = nonzero.get(asn)
            if bucket is None:
                nonzero[asn] = [value]
            else:
                bucket.append(value)
    k = min(math.ceil(trim * n), (n - 1) // 2)
    keep = n - 2 * k
    scores: dict[int, float] = {}
    empty: list[float] = []
    for asn in universe:
        values = nonzero.get(asn, empty)
        values.sort()
        zeros = n - len(values)
        low = k - zeros
        if low < 0:
            low = 0
        high = n - k - zeros
        if high < 0:
            high = 0
        scores[asn] = sum(values[low:high], 0.0) / keep
    return scores


def hegemony_scores(
    records: Iterable[PathRecord],
    trim: float = 0.1,
    weighting: str = "addresses",
    precomputed: tuple[dict[str, dict[int, float]], set[int]] | None = None,
) -> dict[int, float]:
    """AS hegemony for every AS observed in the records.

    ``precomputed`` injects an already-built ``(per_vp, universe)`` pair
    for the same records/weighting (the cross-metric cache path).
    """
    validate_trim(trim)
    per_vp, universe = (
        precomputed if precomputed is not None
        else per_vp_scores(records, weighting)
    )
    return trimmed_scores(per_vp, universe, trim)


def local_hegemony(
    records: Iterable[PathRecord],
    origin: int,
    trim: float = 0.1,
) -> dict[int, float]:
    """Hegemony restricted to paths toward one origin AS's prefixes.

    This is IHR's per-origin "network dependency", the ingredient of
    the AHC baseline (§1.2.1).
    """
    return hegemony_scores(
        (record for record in records if record.origin == origin), trim
    )


def hegemony_ranking(
    view: View,
    metric: str | None = None,
    trim: float = 0.1,
    weighting: str = "addresses",
    tracer: AnyTracer = NULL_TRACER,
    compute: "ViewComputation | None" = None,
) -> Ranking:
    """Rank ASes by hegemony within a view.

    The share column *is* the hegemony value (fraction of observed
    address-weighted paths crossing the AS), matching how the paper's
    case-study tables report AH percentages.

    ``compute`` is an optional :class:`repro.perf.cache.ViewComputation`
    for this view: the per-VP betweenness table comes from (and
    populates) its cross-metric cache.
    """
    validate_trim(trim)
    if metric is None:
        metric = "AH" if view.country is None else f"AH:{view.country}"
    with tracer.span(
        "hegemony", metric=metric, trim=trim, input=len(view.records),
    ) as span:
        scores = (
            compute.hegemony(trim, weighting) if compute is not None
            else hegemony_scores(view.records, trim, weighting)
        )
        span.set(output=len(scores))
        tracer.metrics.histogram("hegemony.universe").observe(len(scores))
        shares: Mapping[int, float] = scores
        return Ranking.from_scores(metric, scores, shares, view.country)
