"""National / international / global views over a sanitized path set.

Paper §3.2 (and Table 2): for a target country,

* the **national** view keeps paths from in-country VPs to in-country
  prefixes — how the country reaches itself;
* the **international** view keeps paths from out-of-country VPs to
  in-country prefixes — how the rest of the world reaches it;
* the **global** view keeps everything (the CCG/AHG baselines).

Views are cheap filters; metrics consume ``view.records``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.bgp.collectors import VantagePoint
from repro.core.sanitize import PathRecord, PathSet
from repro.net.prefix import parse_address
from repro.obs.trace import NULL_TRACER, AnyTracer


def ip_sort_key(ip: str) -> tuple[int, int]:
    """Numeric ordering for VP IPs: by family, then by address value.

    Lexicographic string order puts "10.0.0.1" before "9.0.0.1"; every
    "ordered by IP" contract in this package means *this* ordering.
    """
    return parse_address(ip)


@dataclass(frozen=True)
class View:
    """A named subset of sanitized path records."""

    name: str
    country: str | None
    records: tuple[PathRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PathRecord]:
        return iter(self.records)

    def vps(self) -> list[VantagePoint]:
        """Distinct VPs contributing records, ordered by IP."""
        seen: dict[str, VantagePoint] = {}
        for record in self.records:
            seen.setdefault(record.vp.ip, record.vp)
        return [seen[ip] for ip in sorted(seen, key=ip_sort_key)]

    def total_addresses(self) -> int:
        """Distinct destination addresses covered by this view."""
        per_prefix = {record.prefix: record.addresses for record in self.records}
        return sum(per_prefix.values())

    def restrict_vps(self, vp_ips: Iterable[str]) -> "View":
        """The same view downsampled to a subset of VPs (stability §4)."""
        keep = set(vp_ips)
        return View(
            name=f"{self.name}|{len(keep)}vps",
            country=self.country,
            records=tuple(r for r in self.records if r.vp.ip in keep),
        )


def _build_view(
    paths: PathSet,
    kind: str,
    country: str | None,
    keep: Callable[[PathRecord], bool] | None,
    tracer: AnyTracer,
) -> View:
    """Construct a view under a ``views`` span; record its size/VP
    distributions (VP counting only runs when tracing is on — it is
    pure telemetry, never on the disabled path)."""
    name = kind if country is None else f"{kind}:{country}"
    with tracer.span(
        "views", kind=kind, country=country, input=len(paths.records),
    ) as span:
        records = (
            tuple(paths.records) if keep is None
            else tuple(record for record in paths.records if keep(record))
        )
        view = View(name=name, country=country, records=records)
        span.set(output=len(view.records))
        if tracer.enabled:
            tracer.metrics.histogram("views.size").observe(len(view.records))
            tracer.metrics.histogram("views.vps").observe(len(view.vps()))
    return view


def national_view(
    paths: PathSet, country: str, tracer: AnyTracer = NULL_TRACER
) -> View:
    """Paths from in-country VPs to in-country prefixes (CCN/AHN input)."""
    return _build_view(
        paths, "national", country,
        lambda r: r.vp_country == country and r.prefix_country == country,
        tracer,
    )


def international_view(
    paths: PathSet, country: str, tracer: AnyTracer = NULL_TRACER
) -> View:
    """Paths from out-of-country VPs to in-country prefixes (CCI/AHI)."""
    return _build_view(
        paths, "international", country,
        lambda r: r.vp_country != country and r.prefix_country == country,
        tracer,
    )


def global_view(paths: PathSet, tracer: AnyTracer = NULL_TRACER) -> View:
    """Every sanitized path (CCG/AHG baselines)."""
    return _build_view(paths, "global", None, None, tracer)


def outbound_view(
    paths: PathSet, country: str, tracer: AnyTracer = NULL_TRACER
) -> View:
    """Paths from in-country VPs to out-of-country prefixes.

    The paper's §7 names "a metric that characterizes paths *out of* a
    country" as future work; this view is its input — how the country
    reaches the rest of the world. Feeding it to the cone/hegemony
    metrics yields CCO/AHO, the outbound analogues of CCI/AHI.
    """
    return _build_view(
        paths, "outbound", country,
        lambda r: r.vp_country == country and r.prefix_country != country,
        tracer,
    )


def destination_view(paths: PathSet, origins: Iterable[int]) -> View:
    """Paths toward prefixes originated by the given ASes, from all VPs.

    This is the AHC selector: IHR keys on the *origin AS's registration
    country*, not on where the prefix geolocates (§1.2.1).
    """
    wanted = frozenset(origins)
    return View(
        name=f"destination:{len(wanted)}ases",
        country=None,
        records=tuple(r for r in paths.records if r.origin in wanted),
    )
