"""The named-world catalog.

One place maps the user-facing world names (``small`` / ``default`` /
``paper2021`` / ``paper2023``) to their builders, so every consumer —
the CLI, the watch engine's snapshot resolver, and the benchmark
harness — materializes exactly the same world for the same name and
seed. The paper worlds are seedless (hand-curated); the generated
worlds take the seed through :func:`repro.topology.generator.generate_world`.
"""

from __future__ import annotations

from repro.topology.generator import GeneratorConfig, generate_world
from repro.topology.paper_world import (
    SNAPSHOT_2021,
    SNAPSHOT_2023,
    build_paper_world,
)
from repro.topology.profiles import small_profiles
from repro.topology.world import World

WORLD_CHOICES = ("small", "default", "paper2021", "paper2023")


def build_world(kind: str, seed: int) -> World:
    """Materialize one of the named worlds."""
    if kind == "small":
        config = GeneratorConfig(
            profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
        )
        return generate_world(config, seed=seed, name="small")
    if kind == "default":
        return generate_world(seed=seed, name="default")
    if kind == "paper2021":
        return build_paper_world(SNAPSHOT_2021)
    if kind == "paper2023":
        return build_paper_world(SNAPSHOT_2023)
    raise ValueError(f"unknown world {kind!r}")
