"""The named-world catalog.

One place maps the user-facing world names (``small`` / ``default`` /
``paper2021`` / ``paper2023`` / ``large``) to their builders, so every
consumer — the CLI, the watch engine's snapshot resolver, and the
benchmark harness — materializes exactly the same world for the same
name and seed. The paper worlds are seedless (hand-curated); the
generated worlds take the seed through
:func:`repro.topology.generator.generate_world`.

The ``large`` tier is the out-of-core world: its topology is cheap
(default-world AS counts), but its record stream — five-million-plus
RIB records at the default scale factors — is only meant to be
consumed through :func:`stream_world_records`, never materialized.
Pair it with the pipeline's ``store_backend="mmap"`` spill path to
keep peak RSS bounded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.topology.generator import (
    GeneratorConfig,
    generate_world,
    iter_world_records,
)
from repro.topology.paper_world import (
    SNAPSHOT_2021,
    SNAPSHOT_2023,
    build_paper_world,
)
from repro.topology.profiles import large_profiles, small_profiles
from repro.topology.world import World

if TYPE_CHECKING:
    from repro.bgp.announcement import RibRecord

WORLD_CHOICES = ("small", "default", "paper2021", "paper2023", "large")


def world_config(kind: str) -> GeneratorConfig | None:
    """The generator config for a named *generated* world (``None``
    for the hand-curated paper snapshots)."""
    if kind == "small":
        return GeneratorConfig(
            profiles=small_profiles(), clique_homes=("US", "US", "SE", "JP")
        )
    if kind == "default":
        return GeneratorConfig()
    if kind == "large":
        return GeneratorConfig(profiles=large_profiles())
    if kind in ("paper2021", "paper2023"):
        return None
    raise ValueError(f"unknown world {kind!r}")


def build_world(kind: str, seed: int) -> World:
    """Materialize one of the named worlds.

    For ``large`` this builds only the *topology* (graph, collectors,
    prefix originations) — still laptop-sized; the record volume
    appears downstream, which is why the large tier should be consumed
    via :func:`stream_world_records` plus the spill-backed store.
    """
    if kind == "paper2021":
        return build_paper_world(SNAPSHOT_2021)
    if kind == "paper2023":
        return build_paper_world(SNAPSHOT_2023)
    return generate_world(world_config(kind), seed=seed, name=kind)


def stream_world_records(
    kind: str, seed: int, *, world: World | None = None, **kwargs: object
) -> "Iterator[RibRecord]":
    """Stream a named generated world's RIB records lazily.

    Thin catalog front-end to
    :func:`repro.topology.generator.iter_world_records`: same record
    stream, byte-for-byte, as materializing the world and running
    propagation + RIB generation by hand, but no stage ever holds the
    record list. This is the only supported way to consume the
    ``large`` tier. Extra keyword arguments (``rib``, ``tiebreak``,
    ``path_diversity``, ``workers``, ``tracer``) pass through.
    """
    config = world_config(kind)
    if config is None:
        raise ValueError(f"world {kind!r} is hand-curated, not streamable")
    if world is None:
        world = generate_world(config, seed=seed, name=kind)
    return iter_world_records(world=world, seed=seed, **kwargs)  # type: ignore[arg-type]
