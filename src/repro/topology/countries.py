"""Country and continent registry.

The paper's regional analysis (Table 12) groups countries by continent,
and its Figure 7 singles out former-Soviet-bloc countries that still
rely on Russian transit. We keep a small ISO-3166-like registry with
exactly the attributes those analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Continent identifiers used by Table 12, in the paper's column order.
CONTINENTS: tuple[str, ...] = (
    "North America",
    "South America",
    "Europe",
    "Africa",
    "Asia",
    "Oceania",
)


@dataclass(frozen=True, slots=True)
class Country:
    """A country (or territory) that address space can geolocate to."""

    code: str
    name: str
    continent: str
    former_soviet: bool = False

    def __post_init__(self) -> None:
        if len(self.code) != 2 or not self.code.isupper():
            raise ValueError(f"country code must be two uppercase letters: {self.code!r}")
        if self.continent not in CONTINENTS:
            raise ValueError(f"unknown continent {self.continent!r} for {self.code}")

    def __str__(self) -> str:
        return self.code


class CountryRegistry:
    """Lookup table of countries keyed by two-letter code."""

    def __init__(self, countries: Iterable[Country] = ()) -> None:
        self._by_code: dict[str, Country] = {}
        for country in countries:
            self.add(country)

    def add(self, country: Country) -> Country:
        """Register a country; rejects duplicate codes."""
        if country.code in self._by_code:
            raise ValueError(f"duplicate country code {country.code}")
        self._by_code[country.code] = country
        return country

    def get(self, code: str) -> Country:
        """The country for ``code``; raises ``KeyError`` when unknown."""
        return self._by_code[code]

    def maybe(self, code: str) -> Country | None:
        """The country for ``code`` or ``None``."""
        return self._by_code.get(code)

    def codes(self) -> list[str]:
        """All registered codes, sorted."""
        return sorted(self._by_code)

    def by_continent(self, continent: str) -> list[Country]:
        """Countries on one continent, sorted by code."""
        if continent not in CONTINENTS:
            raise ValueError(f"unknown continent {continent!r}")
        return sorted(
            (c for c in self._by_code.values() if c.continent == continent),
            key=lambda c: c.code,
        )

    def former_soviet(self) -> list[Country]:
        """Countries tagged as former Soviet bloc (Figure 7)."""
        return sorted(
            (c for c in self._by_code.values() if c.former_soviet),
            key=lambda c: c.code,
        )

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    def __len__(self) -> int:
        return len(self._by_code)

    def __iter__(self) -> Iterator[Country]:
        return iter(sorted(self._by_code.values(), key=lambda c: c.code))


_DEFAULT_COUNTRIES: tuple[tuple[str, str, str, bool], ...] = (
    # North America
    ("US", "United States", "North America", False),
    ("CA", "Canada", "North America", False),
    ("MX", "Mexico", "North America", False),
    ("PA", "Panama", "North America", False),
    ("CR", "Costa Rica", "North America", False),
    ("GT", "Guatemala", "North America", False),
    # South America
    ("BR", "Brazil", "South America", False),
    ("AR", "Argentina", "South America", False),
    ("CL", "Chile", "South America", False),
    ("CO", "Colombia", "South America", False),
    ("PE", "Peru", "South America", False),
    ("EC", "Ecuador", "South America", False),
    # Europe
    ("NL", "Netherlands", "Europe", False),
    ("GB", "United Kingdom", "Europe", False),
    ("DE", "Germany", "Europe", False),
    ("FR", "France", "Europe", False),
    ("IT", "Italy", "Europe", False),
    ("ES", "Spain", "Europe", False),
    ("SE", "Sweden", "Europe", False),
    ("CH", "Switzerland", "Europe", False),
    ("AT", "Austria", "Europe", False),
    ("PL", "Poland", "Europe", False),
    ("PT", "Portugal", "Europe", False),
    ("GR", "Greece", "Europe", False),
    ("NO", "Norway", "Europe", False),
    ("FI", "Finland", "Europe", False),
    ("RU", "Russia", "Europe", True),
    ("UA", "Ukraine", "Europe", True),
    ("BY", "Belarus", "Europe", True),
    ("EE", "Estonia", "Europe", True),
    ("LV", "Latvia", "Europe", True),
    ("LT", "Lithuania", "Europe", True),
    ("MD", "Moldova", "Europe", True),
    ("HR", "Croatia", "Europe", False),
    ("GG", "Guernsey", "Europe", False),
    # Africa
    ("ZA", "South Africa", "Africa", False),
    ("KE", "Kenya", "Africa", False),
    ("UG", "Uganda", "Africa", False),
    ("NG", "Nigeria", "Africa", False),
    ("MA", "Morocco", "Africa", False),
    ("CI", "Ivory Coast", "Africa", False),
    ("TN", "Tunisia", "Africa", False),
    ("EG", "Egypt", "Africa", False),
    ("MU", "Mauritius", "Africa", False),
    ("NA", "Namibia", "Africa", False),
    ("GH", "Ghana", "Africa", False),
    ("TZ", "Tanzania", "Africa", False),
    # Asia
    ("JP", "Japan", "Asia", False),
    ("CN", "China", "Asia", False),
    ("TW", "Taiwan", "Asia", False),
    ("KR", "South Korea", "Asia", False),
    ("SG", "Singapore", "Asia", False),
    ("IN", "India", "Asia", False),
    ("ID", "Indonesia", "Asia", False),
    ("TH", "Thailand", "Asia", False),
    ("MY", "Malaysia", "Asia", False),
    ("PH", "Philippines", "Asia", False),
    ("VN", "Vietnam", "Asia", False),
    ("HK", "Hong Kong", "Asia", False),
    ("AF", "Afghanistan", "Asia", False),
    ("KZ", "Kazakhstan", "Asia", True),
    ("KG", "Kyrgyzstan", "Asia", True),
    ("TJ", "Tajikistan", "Asia", True),
    ("TM", "Turkmenistan", "Asia", True),
    ("UZ", "Uzbekistan", "Asia", True),
    ("AM", "Armenia", "Asia", True),
    ("GE", "Georgia", "Asia", True),
    ("AZ", "Azerbaijan", "Asia", True),
    # Oceania
    ("AU", "Australia", "Oceania", False),
    ("NZ", "New Zealand", "Oceania", False),
    ("FJ", "Fiji", "Oceania", False),
    ("PG", "Papua New Guinea", "Oceania", False),
    ("NC", "New Caledonia", "Oceania", False),
    ("WS", "Samoa", "Oceania", False),
)


def default_registry() -> CountryRegistry:
    """The registry used by the generated and curated worlds."""
    return CountryRegistry(
        Country(code, name, continent, former_soviet)
        for code, name, continent, former_soviet in _DEFAULT_COUNTRIES
    )
